#!/usr/bin/env python
"""Validate profile-export documents against the bundled JSON Schema.

With file arguments, each file is parsed as one export document and
validated. With no arguments, the worked example embedded in
``docs/profile-format.md`` is extracted and validated — the CI docs job
runs this mode so the documented example can never drift from the
schema contract.

A fenced ```json block counts as an example document when it parses to
an object carrying a ``schema_version`` key; other JSON fences
(snippets, fragments) are ignored.

Usage::

    python tools/validate_profile_doc.py                # docs examples
    python tools/validate_profile_doc.py profile.json   # saved documents
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.export import SchemaError, validate  # noqa: E402

DOC_PAGES = [REPO_ROOT / "docs" / "profile-format.md"]


def iter_embedded_documents(page: Path):
    """Yield ``(lineno, doc)`` for each example document in *page*."""
    lines = page.read_text(encoding="utf-8").splitlines()
    fence_start, buf = None, []
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if fence_start is None:
            if stripped == "```json":
                fence_start, buf = lineno, []
        elif stripped == "```":
            try:
                value = json.loads("\n".join(buf))
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{page}:{fence_start}: unparseable json fence: {exc}"
                )
            if isinstance(value, dict) and "schema_version" in value:
                yield fence_start, value
            fence_start = None
        else:
            buf.append(line)


def main(argv) -> int:
    checked, failures = 0, 0
    if argv:
        targets = [
            (Path(a), 1, json.loads(Path(a).read_text(encoding="utf-8")))
            for a in argv
        ]
    else:
        targets = [
            (page, lineno, doc)
            for page in DOC_PAGES
            for lineno, doc in iter_embedded_documents(page)
        ]
        if not targets:
            print("no embedded example documents found", file=sys.stderr)
            return 1
    for source, lineno, doc in targets:
        checked += 1
        try:
            validate(doc)
        except SchemaError as exc:
            failures += 1
            print(f"{source}:{lineno}: INVALID: {exc}")
        else:
            print(
                f"{source}:{lineno}: ok "
                f"(schema_version {doc.get('schema_version')})"
            )
    print(f"validated {checked} document(s), {failures} invalid")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
