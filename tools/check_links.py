#!/usr/bin/env python
"""Check that intra-repo markdown links (and their anchors) resolve.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline links and images (``[text](target)``), skips external
schemes, resolves the rest against the linking file's directory (or the
repo root for absolute ``/`` paths), and fails with a listing if any
target file is missing. Anchored links — both in-page (``#knobs``) and
cross-file (``architecture.md#knobs``) — are additionally checked
against the target file's headings, using GitHub's slug rules
(lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
suffixes for duplicates).

Usage::

    python tools/check_links.py            # all *.md under the repo
    python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown link/image: [text](target) / ![alt](target); the
#: target group stops before an optional "title" and the closing paren.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: characters GitHub keeps in a heading slug (besides spaces/hyphens)
SLUG_KEEP = re.compile(r"[^0-9a-zÀ-￿ _-]")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: directories never scanned for source files
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading (before dedup suffixes)."""
    # inline code/emphasis markers and link syntax don't survive slugs
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", "_")
    text = SLUG_KEEP.sub("", text.lower())
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    """Every anchor GitHub would generate for *path*'s headings."""
    anchors: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path, anchor_cache: dict) -> list:
    failures = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target, _, anchor = target.partition("#")
            if target:
                if target.startswith("/"):
                    resolved = REPO_ROOT / target.lstrip("/")
                else:
                    resolved = path.parent / target
                if not resolved.exists():
                    failures.append((path, lineno, match.group(1)))
                    continue
            else:
                resolved = path  # pure in-page anchor
            if anchor and resolved.suffix == ".md":
                resolved = resolved.resolve()
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = heading_anchors(resolved)
                if anchor.lower() not in anchor_cache[resolved]:
                    failures.append((path, lineno, match.group(1)))
    return failures


def main(argv) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = list(iter_markdown_files(REPO_ROOT))
    failures = []
    anchor_cache: dict = {}
    for path in files:
        failures.extend(check_file(path, anchor_cache))
    for path, lineno, target in failures:
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            rel = path
        print(f"{rel}:{lineno}: broken link -> {target}")
    print(
        f"checked {len(files)} markdown file(s): "
        + (f"{len(failures)} broken link(s)" if failures else "all links ok")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
