#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline links and images (``[text](target)``), skips external
schemes and pure in-page anchors, resolves the rest against the linking
file's directory (or the repo root for absolute ``/`` paths), and fails
with a listing if any target file is missing. Anchors on existing files
(``architecture.md#knobs``) are checked for file existence only.

Usage::

    python tools/check_links.py            # all *.md under the repo
    python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown link/image: [text](target) / ![alt](target); the
#: target group stops before an optional "title" and the closing paren.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: directories never scanned for source files
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_file(path: Path) -> list:
    failures = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            if target.startswith("/"):
                resolved = REPO_ROOT / target.lstrip("/")
            else:
                resolved = path.parent / target
            if not resolved.exists():
                failures.append((path, lineno, match.group(1)))
    return failures


def main(argv) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = list(iter_markdown_files(REPO_ROOT))
    failures = []
    for path in files:
        failures.extend(check_file(path))
    for path, lineno, target in failures:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{lineno}: broken link -> {target}")
    print(
        f"checked {len(files)} markdown file(s): "
        + (f"{len(failures)} broken link(s)" if failures else "all links ok")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
