"""Figure 4: reuse-distance histograms per application.

The paper plots seven apps (bfs and nn excluded for >99% no-reuse,
syr2k for resembling syrk) with buckets 0, 1-2, 3-8, 9-32, 33-128,
129-512, >512 and ∞, per-CTA, write-restart, on Kepler. This harness
regenerates the series for all ten apps, asserts the paper's headline
observations, and times the analyzer itself.
"""

import pytest

from benchmarks.common import profiled_report, write_result
from repro.analysis.report import render_reuse_histogram
from repro.analysis.reuse_distance import (
    ReuseDistanceModel,
    reuse_distance_analysis,
)
from repro.apps import APP_NAMES

FIG4_APPS = ("backprop", "hotspot", "lavaMD", "nw", "srad_v2", "bicg", "syrk")


@pytest.mark.parametrize("app", APP_NAMES)
def test_fig04_reuse_distance(benchmark, app):
    report = profiled_report(app, modes=("memory",))
    profile = report.session.profiles[0]

    hist = benchmark.pedantic(
        reuse_distance_analysis,
        args=(profile, ReuseDistanceModel.ELEMENT, 128),
        rounds=1,
        iterations=1,
    )
    merged = report.reuse_element  # across all kernel instances

    lines = [render_reuse_histogram(app, merged)]
    if app in ("bfs", "nn"):
        lines.append(
            "(excluded from the paper's Figure 4: >99% no-reuse -- "
            f"measured {100 * merged.no_reuse_fraction:.1f}%)"
        )
    if app == "syr2k":
        lines.append("(excluded from the paper's Figure 4: resembles syrk)")
    write_result(f"fig04_{app}.txt", "\n".join(lines))

    benchmark.extra_info["no_reuse_fraction"] = round(
        merged.no_reuse_fraction, 4
    )
    benchmark.extra_info["avg_finite_distance"] = round(
        merged.average_distance, 2
    )

    # Paper observations (Section 4.2-A results paragraph):
    if app in ("bfs", "nn"):
        # (1) bfs/nn exhibit very low reuse.
        assert merged.no_reuse_fraction > 0.85
    if app == "hotspot":
        # (2) hotspot: very high no-reuse -> insensitive to L1 tuning.
        assert merged.no_reuse_fraction > 0.9
    if app in ("syrk", "syr2k"):
        # (3) syrk/syr2k: low no-reuse, distance-0 frequency near 40%.
        assert merged.no_reuse_fraction < 0.2
        freq0 = merged.frequencies["0"]
        assert 0.25 < freq0 < 0.6


def test_fig04_summary_table(benchmark):
    """The cross-app summary: which apps are streaming vs reusing."""

    def build_rows():
        rows = []
        for app in APP_NAMES:
            merged = profiled_report(app, modes=("memory",)).reuse_element
            rows.append((app, merged.no_reuse_fraction,
                         merged.frequencies["0"], merged.average_distance))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = ["Figure 4 summary (element model, per-CTA, write-restart)",
            f"{'app':<10} {'no-reuse':>9} {'dist-0':>7} {'avg finite':>11}"]
    for app, noreuse, f0, avg in rows:
        text.append(f"{app:<10} {100 * noreuse:>8.1f}% {100 * f0:>6.1f}% "
                    f"{avg:>11.1f}")
    write_result("fig04_summary.txt", "\n".join(text))

    by_app = {r[0]: r for r in rows}
    # Eight of ten apps suffer from high no-reuse (all but syrk/syr2k).
    high_no_reuse = [a for a in APP_NAMES if by_app[a][1] > 0.4]
    assert set(("syrk", "syr2k")).isdisjoint(high_no_reuse)
    assert len(high_no_reuse) >= 6
