"""Figure 5: memory-divergence distribution (unique cache lines touched
per warp instruction) on Kepler (128 B lines) and Pascal (32 B lines).

One trace per app serves both architecture views (divergence is a pure
function of addresses and line size). The paper reports BICG, Syrk and
Syr2k as text because they are bimodal (mostly 1 and 32 lines touched);
the same bimodality must show here, with the exact 75/25 split for bicg
on Kepler.
"""

import pytest

from benchmarks.common import profiled_report, write_result
from repro.analysis.divergence_memory import memory_divergence_analysis
from repro.analysis.report import render_divergence_distribution
from repro.apps import APP_NAMES

LINE_SIZES = {"Kepler": 128, "Pascal": 32}


def _merged_distribution(app, line_size):
    report = profiled_report(app, modes=("memory",))
    from repro.analysis.divergence_memory import MemoryDivergenceProfile

    merged = MemoryDivergenceProfile(line_size=line_size)
    for profile in report.session.profiles:
        merged.merge(memory_divergence_analysis(profile, line_size))
    return merged


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("arch_name", ["Kepler", "Pascal"])
def test_fig05_distribution(benchmark, app, arch_name):
    line_size = LINE_SIZES[arch_name]
    report = profiled_report(app, modes=("memory",))
    profile = report.session.profiles[0]

    benchmark.pedantic(
        memory_divergence_analysis, args=(profile, line_size),
        rounds=1, iterations=1,
    )
    merged = _merged_distribution(app, line_size)
    write_result(
        f"fig05_{arch_name.lower()}_{app}.txt",
        render_divergence_distribution(f"{app} ({arch_name})", merged),
    )
    benchmark.extra_info["divergence_degree"] = round(
        merged.divergence_degree, 3
    )

    dist = merged.distribution
    assert merged.instructions > 0
    assert sum(dist.values()) == pytest.approx(1.0)
    assert all(1 <= k <= 32 for k in dist)

    if arch_name == "Kepler":
        if app == "bicg":
            # Paper: BICG on Kepler = (1 -> 75%, 32 -> 25%).
            assert dist.get(1, 0) == pytest.approx(0.75, abs=0.02)
            assert dist.get(32, 0) == pytest.approx(0.25, abs=0.02)
        if app in ("syrk", "syr2k"):
            # Paper: ~50/50 between coalesced and fully divergent.
            assert dist.get(1, 0) == pytest.approx(0.5, abs=0.05)
            assert dist.get(32, 0) == pytest.approx(0.5, abs=0.05)
        if app in ("backprop", "hotspot", "srad_v2"):
            # Paper: "better code optimization for avoiding memory
            # divergence than the others in the group".
            assert merged.divergence_degree < 4


def test_fig05_pascal_exceeds_kepler(benchmark):
    """Paper: "the largest number of unique cache lines touched in
    Pascal is generally larger than that on Kepler primarily due to
    cache line size"."""

    def collect():
        rows = []
        for app in APP_NAMES:
            kepler = _merged_distribution(app, 128)
            pascal = _merged_distribution(app, 32)
            rows.append((app, kepler.divergence_degree,
                         pascal.divergence_degree,
                         max(kepler.distribution),
                         max(pascal.distribution)))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = ["Figure 5 degree summary",
            f"{'app':<10} {'deg K':>7} {'deg P':>7} {'max K':>6} {'max P':>6}"]
    wider = 0
    for app, dk, dp, mk, mp in rows:
        text.append(f"{app:<10} {dk:>7.2f} {dp:>7.2f} {mk:>6} {mp:>6}")
        if mp >= mk:
            wider += 1
    write_result("fig05_summary.txt", "\n".join(text))
    assert wider >= 7  # "generally larger"
