"""Figure 7: horizontal cache bypassing on Pascal's 24 KB unified cache.

Same protocol as Figure 6 on the Pascal descriptor (32-byte sectors,
unified L1/Texture cache, scaled to 6 KB per the input scaling). The
paper reports the same qualitative picture as Kepler with the
prediction within ~5% of the oracle on the favorable apps.
"""

import pytest

from benchmarks.common import (
    BYPASS_APPS,
    PASCAL_24_SCALED,
    bypass_experiment,
    write_result,
)
from repro.analysis.report import render_bypass_table


@pytest.mark.parametrize("app", BYPASS_APPS)
def test_fig07_app(benchmark, app):
    search, prediction = benchmark.pedantic(
        bypass_experiment, args=(app, PASCAL_24_SCALED),
        rounds=1, iterations=1,
    )
    oracle_norm = search.oracle_normalized
    pred_norm = search.normalized(prediction.optimal_warps)
    benchmark.extra_info.update({
        "oracle_warps": search.best_warps,
        "oracle_norm": round(oracle_norm, 3),
        "pred_warps": prediction.optimal_warps,
        "pred_norm": round(pred_norm, 3),
    })
    assert oracle_norm <= 1.0 + 1e-9
    assert pred_norm >= oracle_norm - 1e-9
    if app in ("bfs", "hotspot"):
        assert oracle_norm > 0.85  # insensitive on Pascal too


def test_fig07_table(benchmark):
    def build():
        rows = []
        for app in BYPASS_APPS:
            search, prediction = bypass_experiment(app, PASCAL_24_SCALED)
            rows.append((
                app,
                search.oracle_normalized,
                search.normalized(prediction.optimal_warps),
                search.best_warps,
                prediction.optimal_warps,
            ))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_bypass_table("Pascal 24KB (scaled-6KB)", rows)
    gaps = [pred - oracle for _, oracle, pred, _, _ in rows]
    text += (f"\nmean prediction gap vs oracle: "
             f"{100 * sum(gaps) / len(gaps):.1f}% "
             f"(paper: ~5% on Pascal)")
    write_result("fig07_bypass_pascal.txt", text)

    # Favorable apps must show benefit somewhere on Pascal as well.
    favorable = [r for r in rows if r[0] in ("syrk", "syr2k", "srad_v2")]
    assert min(r[1] for r in favorable) < 0.95
