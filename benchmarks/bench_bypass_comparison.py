"""Extension experiment: horizontal vs vertical cache bypassing.

Section 4.2-D of the paper contrasts the two software bypassing
families: *vertical* [55] (per-instruction: bypass selected loads for
every warp; finer-grained but cannot manage concurrency) and
*horizontal* [31] (per-warp; simpler, manages concurrency, "cannot
distinguish loads with little reuse"). CUDAAdvisor's per-site reuse
analysis can drive both; this harness compares them on the scaled
Kepler configuration of Figure 6 and also evaluates their combination.
"""

import pytest

from benchmarks.common import (
    BYPASS_TIMING,
    KEPLER_16_SCALED,
    bypass_experiment,
    write_result,
)
from repro.analysis.reuse_distance import (
    ReuseDistanceModel,
    site_reuse_analysis,
)
from repro.apps import build_app
from repro.frontend.dsl import compile_kernels
from repro.gpu.device import Device
from repro.host.runtime import CudaRuntime
from repro.optim.advisor import CUDAAdvisor
from repro.passes import (
    PassManager,
    VerticalBypassPass,
    optimization_pipeline,
    plan_vertical_bypass,
)

APPS = ("srad_v2", "syrk", "hotspot")


def _run_cycles(app, module):
    dev = Device(KEPLER_16_SCALED, timing_params=BYPASS_TIMING)
    rt = CudaRuntime(dev)
    image = dev.load_module(module)
    state = app.prepare(rt)
    results = app.run(rt, image, state)
    assert app.check(rt, state)
    return sum(r.cycles for r in results)


def _vertical_cycles(app_name):
    """Plan per-site bypassing from the profile, apply, measure."""
    advisor = CUDAAdvisor(arch=KEPLER_16_SCALED, modes=("memory",),
                          measure_overhead=False)
    app = build_app(app_name)
    report = advisor.profile(app)

    plan = set()
    capacity_lines = KEPLER_16_SCALED.l1_num_lines
    for profile in report.session.profiles:
        sites = site_reuse_analysis(
            profile, model=ReuseDistanceModel.CACHE_LINE,
            line_size=KEPLER_16_SCALED.l1_line_size,
        )
        plan |= plan_vertical_bypass(
            sites, no_reuse_threshold=0.7, capacity_lines=capacity_lines
        )

    module = compile_kernels(list(app.kernels), f"{app_name}-vert")
    optimization_pipeline().run(module)
    PassManager([VerticalBypassPass(plan)]).run(module)
    baseline_module = compile_kernels(list(app.kernels), f"{app_name}-base")
    optimization_pipeline().run(baseline_module)

    base = _run_cycles(build_app(app_name), baseline_module)
    vertical = _run_cycles(build_app(app_name), module)
    return vertical / base, len(plan)


@pytest.mark.parametrize("app", APPS)
def test_bypass_families(benchmark, app):
    def run():
        search, prediction = bypass_experiment(app, KEPLER_16_SCALED)
        horizontal = search.normalized(prediction.optimal_warps)
        vertical, planned_sites = _vertical_cycles(app)
        return horizontal, vertical, planned_sites, search

    horizontal, vertical, planned, search = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update({
        "horizontal_norm": round(horizontal, 3),
        "vertical_norm": round(vertical, 3),
        "vertical_sites": planned,
    })
    write_result(
        f"bypass_comparison_{app}.txt",
        (f"{app}: baseline 1.000 | horizontal (Eq.1) {horizontal:.3f} | "
         f"vertical ({planned} sites) {vertical:.3f} | "
         f"oracle {search.oracle_normalized:.3f}"),
    )
    # Sanity: neither scheme should be catastrophically worse than
    # baseline on bypass-favorable or insensitive apps.
    assert horizontal < 1.35
    assert vertical < 1.35
