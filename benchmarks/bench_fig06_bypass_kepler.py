"""Figure 6: horizontal cache bypassing on Kepler, 16 KB and 48 KB L1.

Per cache-bypassing-favorable app (Section 4.2-D picks bfs, hotspot,
srad_v2, syrk, syr2k): normalized execution time of the oracle
(exhaustive search over warps-per-CTA thresholds, Li et al. [31]) and
of the Eq.(1) prediction, against the no-bypass baseline (1.0).

Scaling note: the experiment runs on the scaled GPU described in
benchmarks/common.py (2 SMs; L1 = paper size / 4, matching the input
scaling, so 4 KB and 12 KB stand in for the 16/48 KB Kepler split).
"""

import pytest

from benchmarks.common import (
    BYPASS_APPS,
    KEPLER_16_SCALED,
    KEPLER_48_SCALED,
    bypass_experiment,
    write_result,
)
from repro.analysis.report import render_bypass_table

CONFIGS = {
    "16KB(scaled-4KB)": KEPLER_16_SCALED,
    "48KB(scaled-12KB)": KEPLER_48_SCALED,
}


@pytest.mark.parametrize("app", BYPASS_APPS)
@pytest.mark.parametrize("config", list(CONFIGS))
def test_fig06_app(benchmark, app, config):
    arch = CONFIGS[config]
    search, prediction = benchmark.pedantic(
        bypass_experiment, args=(app, arch), rounds=1, iterations=1
    )
    oracle_norm = search.oracle_normalized
    pred_norm = search.normalized(prediction.optimal_warps)
    benchmark.extra_info.update({
        "oracle_warps": search.best_warps,
        "oracle_norm": round(oracle_norm, 3),
        "pred_warps": prediction.optimal_warps,
        "pred_norm": round(pred_norm, 3),
    })

    assert oracle_norm <= 1.0 + 1e-9  # oracle never loses to baseline
    assert pred_norm >= oracle_norm - 1e-9

    if config.startswith("16KB"):
        if app in ("syrk", "syr2k"):
            # Bypassing-favorable: the paper reports clear wins at 16 KB.
            assert oracle_norm < 0.85
            # Eq.(1) lands on (or next to) the oracle threshold.
            assert abs(prediction.optimal_warps - search.best_warps) <= 1
            assert pred_norm <= oracle_norm + 0.10
        if app in ("bfs", "hotspot"):
            # "BFS and Hotspot are quite insensitive applications."
            assert oracle_norm > 0.90


def test_fig06_table(benchmark):
    def build():
        tables = {}
        for config, arch in CONFIGS.items():
            rows = []
            for app in BYPASS_APPS:
                search, prediction = bypass_experiment(app, arch)
                rows.append((
                    app,
                    search.oracle_normalized,
                    search.normalized(prediction.optimal_warps),
                    search.best_warps,
                    prediction.optimal_warps,
                ))
            tables[config] = rows
        return tables

    tables = benchmark.pedantic(build, rounds=1, iterations=1)
    parts = []
    for config, rows in tables.items():
        parts.append(render_bypass_table(f"Kepler {config}", rows))
        benefit = 1 - sum(r[1] for r in rows) / len(rows)
        parts.append(f"mean oracle benefit: {100 * benefit:.1f}%\n")
    write_result("fig06_bypass_kepler.txt", "\n".join(parts))

    # The 16 KB -> 48 KB trend: more capacity, less bypassing benefit
    # ("increasing cache size from 16KB to 48KB dramatically reduces
    # bypassing benefits").
    def mean_benefit(config):
        rows = tables[config]
        return 1 - sum(r[1] for r in rows) / len(rows)

    assert mean_benefit("16KB(scaled-4KB)") > mean_benefit(
        "48KB(scaled-12KB)"
    )
    # Headline claim: speedup as high as ~1.5-2x somewhere in the suite.
    best = min(r[1] for rows in tables.values() for r in rows)
    assert best < 0.75
