"""Simulator speed benchmark: the perf trajectory tracker.

Times an uninstrumented and a fully-instrumented (memory + blocks +
arith) run of every Table 2 app through the execute->trace pipeline and
writes ``benchmarks/results/BENCH_simulator.json`` with wall seconds,
dynamic instructions/second and trace records/second, per app and in
aggregate. Successive PRs re-run this harness so simulator-speed
regressions (or wins) are visible in one file.

Usage::

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py [options]

    --quick             3-app subset with scaled-down inputs (CI smoke)
    --update-baseline   store this run as the comparison baseline
    --workers N         exercise the parallel launch path with N workers
    --backend NAME      execution backend ("interpreter" or "batched")
    --sample-rate N     trace sampling stride for the instrumented runs
    --repeat N          run each measurement N times, keep the minimum
                        wall time (the usual robust estimator on noisy,
                        shared machines; event counts are deterministic
                        and identical across repeats)
    --floor R           with a non-interpreter backend: exit nonzero if
                        any app's instrumented vs_interpreter speedup
                        falls below R (the CI regression guard; e.g.
                        --floor 0.95 means "no app may run more than 5%
                        slower than the interpreter")

The JSON keeps two sections per configuration key: ``baseline``
(written once per era with --update-baseline, e.g. before a perf PR
lands) and ``current`` (every run); ``speedup`` is aggregate baseline
wall time / current wall time. Non-default backends/sample rates get
their own key (``quick-batched``, ``full-sampled8``, ...); a batched
run additionally records per-app ``vs_interpreter`` speedups against
the matching interpreter key's ``current`` section.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.apps import APP_NAMES, build_app
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C
from repro.gpu.device import Device
from repro.host.runtime import CudaRuntime
from repro.passes.pipeline import instrumentation_pipeline, optimization_pipeline
from repro.profiler.session import ProfilingSession

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_simulator.json")

#: Reduced inputs for --quick (CI smoke): still end-to-end, just small.
QUICK_APPS: Dict[str, dict] = {
    "bfs": {"num_nodes": 256},
    "hotspot": {"n": 32, "steps": 2},
    "syrk": {"n": 32},
}

INSTRUMENT_MODES = ["memory", "blocks", "arith"]


def _run_app(
    app_name: str,
    app_kwargs: dict,
    instrumented: bool,
    workers: Optional[int] = None,
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    """One end-to-end execution; returns wall seconds + event counts."""
    app = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    session = None
    if instrumented:
        instrumentation_pipeline(INSTRUMENT_MODES).run(module)
        session = ProfilingSession(sample_rate=sample_rate)
    device = Device(KEPLER_K40C)
    device.backend = backend
    if workers:
        device.parallel_workers = workers
    rt = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = app.prepare(rt)

    start = time.perf_counter()
    results = app.run(rt, image, state)
    wall = time.perf_counter() - start

    instructions = sum(r.instructions for r in results)
    records = 0
    if session is not None:
        for profile in session.profiles:
            records += (
                len(profile.memory_records)
                + len(profile.block_records)
                + len(profile.arith_records)
            )
    return {
        "wall_s": wall,
        "instructions": instructions,
        "records": records,
    }


def _best_of(
    repeat: int,
    app_name: str,
    app_kwargs: dict,
    instrumented: bool,
    workers: Optional[int],
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    """Min wall time over ``repeat`` runs (counts are deterministic)."""
    best = None
    for _ in range(max(1, repeat)):
        result = _run_app(app_name, app_kwargs, instrumented, workers,
                          backend, sample_rate)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def run_suite(
    apps: Dict[str, dict],
    workers: Optional[int] = None,
    repeat: int = 1,
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    per_app: Dict[str, dict] = {}
    for name, kwargs in apps.items():
        plain = _best_of(repeat, name, kwargs, False, workers, backend)
        instr = _best_of(repeat, name, kwargs, True, workers, backend,
                         sample_rate)
        per_app[name] = {
            "uninstrumented_s": round(plain["wall_s"], 4),
            "instrumented_s": round(instr["wall_s"], 4),
            "instructions": instr["instructions"],
            "instructions_per_s": round(
                instr["instructions"] / instr["wall_s"]
            ) if instr["wall_s"] else 0,
            "records": instr["records"],
            "records_per_s": round(
                instr["records"] / instr["wall_s"]
            ) if instr["wall_s"] else 0,
        }
        print(
            f"{name:>10}: plain {plain['wall_s']:7.3f}s   "
            f"instrumented {instr['wall_s']:7.3f}s   "
            f"{per_app[name]['instructions_per_s']:>9,} instr/s   "
            f"{per_app[name]['records_per_s']:>9,} rec/s"
        )
    total_plain = sum(a["uninstrumented_s"] for a in per_app.values())
    total_instr = sum(a["instrumented_s"] for a in per_app.values())
    total_insn = sum(a["instructions"] for a in per_app.values())
    total_rec = sum(a["records"] for a in per_app.values())
    aggregate = {
        "uninstrumented_s": round(total_plain, 4),
        "instrumented_s": round(total_instr, 4),
        "instructions": total_insn,
        "instructions_per_s": round(total_insn / total_instr)
        if total_instr else 0,
        "records": total_rec,
        "records_per_s": round(total_rec / total_instr) if total_instr else 0,
    }
    print(
        f"{'TOTAL':>10}: plain {total_plain:7.3f}s   "
        f"instrumented {total_instr:7.3f}s"
    )
    return {"apps": per_app, "aggregate": aggregate}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3-app scaled-down smoke run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="store this run as the comparison baseline")
    parser.add_argument("--workers", type=int, default=None,
                        help="use the parallel launch path with N workers")
    parser.add_argument("--backend", choices=["interpreter", "batched"],
                        default="interpreter",
                        help="execution backend behind Device.launch")
    parser.add_argument("--sample-rate", type=int, default=1,
                        help="trace-sampling stride for instrumented runs")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repeat each measurement N times, keep the min")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail (exit 1) if any app's instrumented "
                        "vs_interpreter speedup drops below this ratio "
                        "(needs a non-interpreter --backend and a prior "
                        "interpreter run of the same suite)")
    args = parser.parse_args(argv)
    if args.floor is not None and args.backend == "interpreter":
        parser.error("--floor needs a non-interpreter --backend")

    apps = (
        QUICK_APPS if args.quick else {name: {} for name in APP_NAMES}
    )
    suite = run_suite(apps, workers=args.workers, repeat=args.repeat,
                      backend=args.backend, sample_rate=args.sample_rate)
    suite["config"] = {
        "quick": args.quick,
        "workers": args.workers,
        "backend": args.backend,
        "sample_rate": args.sample_rate,
        "repeat": args.repeat,
        "python": sys.version.split()[0],
    }

    existing: dict = {}
    if os.path.exists(RESULT_FILE):
        with open(RESULT_FILE) as f:
            existing = json.load(f)

    base_key = "quick" if args.quick else "full"
    key = base_key
    if args.backend != "interpreter":
        key += f"-{args.backend}"
    if args.sample_rate != 1:
        key += f"-sampled{args.sample_rate}"
    section = existing.setdefault(key, {})
    if args.update_baseline or "baseline" not in section:
        section["baseline"] = suite
    section["current"] = suite

    base = section["baseline"]["aggregate"]
    cur = suite["aggregate"]
    section["speedup"] = {
        "uninstrumented": round(
            base["uninstrumented_s"] / cur["uninstrumented_s"], 3
        ) if cur["uninstrumented_s"] else None,
        "instrumented": round(
            base["instrumented_s"] / cur["instrumented_s"], 3
        ) if cur["instrumented_s"] else None,
    }
    print(f"speedup vs baseline: {section['speedup']}")

    # A non-interpreter backend also reports per-app speedups against
    # the matching interpreter run, so backend wins are visible per app.
    reference = existing.get(base_key, {}).get("current")
    if args.backend != "interpreter" and reference is not None:
        vs: dict = {"apps": {}}
        for name, app in suite["apps"].items():
            ref = reference["apps"].get(name)
            if not ref:
                continue
            vs["apps"][name] = {
                "uninstrumented": round(
                    ref["uninstrumented_s"] / app["uninstrumented_s"], 3
                ) if app["uninstrumented_s"] else None,
                "instrumented": round(
                    ref["instrumented_s"] / app["instrumented_s"], 3
                ) if app["instrumented_s"] else None,
            }
        vs["aggregate"] = {
            "uninstrumented": round(
                reference["aggregate"]["uninstrumented_s"]
                / suite["aggregate"]["uninstrumented_s"], 3
            ) if suite["aggregate"]["uninstrumented_s"] else None,
            "instrumented": round(
                reference["aggregate"]["instrumented_s"]
                / suite["aggregate"]["instrumented_s"], 3
            ) if suite["aggregate"]["instrumented_s"] else None,
        }
        section["vs_interpreter"] = vs
        print(f"vs interpreter ({base_key}): {vs['aggregate']}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as f:
        json.dump(existing, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {RESULT_FILE}")

    if args.floor is not None:
        vs = section.get("vs_interpreter")
        if vs is None:
            print(f"--floor {args.floor}: no interpreter reference for "
                  f"{base_key!r}; run the interpreter suite first",
                  file=sys.stderr)
            return 1
        slow = {
            name: ratios["instrumented"]
            for name, ratios in vs["apps"].items()
            if ratios["instrumented"] is not None
            and ratios["instrumented"] < args.floor
        }
        if slow:
            print(f"--floor {args.floor}: apps below the per-app "
                  f"instrumented floor: " + ", ".join(
                      f"{name} ({ratio:.3f}x)"
                      for name, ratio in sorted(slow.items())
                  ), file=sys.stderr)
            return 1
        print(f"--floor {args.floor}: all apps at or above the floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
