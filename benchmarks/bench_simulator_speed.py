"""Simulator speed benchmark: the perf trajectory tracker.

Times an uninstrumented and a fully-instrumented (memory + blocks +
arith) run of every Table 2 app through the execute->trace pipeline and
writes ``benchmarks/results/BENCH_simulator.json`` with wall seconds,
dynamic instructions/second and trace records/second, per app and in
aggregate. Successive PRs re-run this harness so simulator-speed
regressions (or wins) are visible in one file.

Usage::

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py [options]

    --quick             small-app subset with scaled-down inputs (CI)
    --update-baseline   store this run as the comparison baseline
    --workers N         exercise the parallel launch path with N workers
    --backend NAME      execution backend ("interpreter" or "batched")
    --sample-rate N     trace sampling stride for the instrumented runs
    --repeat N          run each measurement N times and keep the
                        trimmed mean of the wall times (min and max
                        dropped when N >= 3, plain minimum otherwise):
                        robust against both one slow outlier and one
                        lucky cache-warm run on noisy shared machines;
                        event counts are deterministic and identical
                        across repeats
    --floor R           with a non-interpreter backend: exit nonzero if
                        any app's instrumented vs_interpreter speedup
                        falls below R (the CI regression guard; e.g.
                        --floor 0.95 means "no app may run more than 5%
                        slower than the interpreter")
    --fused             measure analysis wall time instead of raw
                        simulator speed: for each FUSED_APPS entry,
                        time execute+analyze end-to-end under the
                        in-RAM batch path, the streaming drain and the
                        fused in-flight path, and record per-app
                        ``vs_inram`` / ``vs_stream`` speedups in a
                        ``fused`` section of the results file. With
                        --floor R, exit nonzero if any app's fused
                        ``vs_inram`` speedup falls below R (the fused
                        CI perf gate)
    --rss               measure drain peak RSS instead of speed: each
                        configuration runs in a forked child and reports
                        its instrumentation-attributable ru_maxrss
                        delta (instrumented minus an uninstrumented run
                        at the same input). Exercises the paper-scale
                        RSS_APPS inputs (>=4x the registry defaults) and
                        exits nonzero if the streaming drain exceeds its
                        per-app ceiling or fails to stay below the
                        in-RAM drain at the *current* (unscaled) input
                        sizes (the O(segment) CI gate)

The JSON keeps two sections per configuration key: ``baseline``
(written once per era with --update-baseline, e.g. before a perf PR
lands) and ``current`` (every run); ``speedup`` is aggregate baseline
wall time / current wall time. Non-default backends/sample rates get
their own key (``quick-batched``, ``full-sampled8``, ...); a batched
run additionally records per-app ``vs_interpreter`` speedups against
the matching interpreter key's ``current`` section.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

# All pipeline imports happen here, in the parent, so --rss fork
# children inherit them copy-on-write and a child's ru_maxrss delta
# measures the run, not the import of numpy.
from repro.analysis import (
    ReuseDistanceModel,
    arithmetic_analysis,
    branch_divergence_analysis,
    memory_divergence_analysis,
    reuse_distance_analysis,
)
from repro.analysis.aggregates import advisor_plan
from repro.apps import APP_NAMES, build_app
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C
from repro.gpu.device import Device
from repro.host.runtime import CudaRuntime
from repro.passes.pipeline import instrumentation_pipeline, optimization_pipeline
from repro.profiler.session import ProfilingSession

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
RESULT_FILE = os.path.join(RESULTS_DIR, "BENCH_simulator.json")

#: Reduced inputs for --quick (CI smoke): still end-to-end, just small.
#: syrk runs at 4x its previous quick trace (n 32 -> 64 quadruples the
#: C elements and so the event count) and syr2k joins the suite -- the
#: ROADMAP input-scaling rung the fused path makes affordable.
QUICK_APPS: Dict[str, dict] = {
    "bfs": {"num_nodes": 256},
    "hotspot": {"n": 32, "steps": 2},
    "syrk": {"n": 64},
    "syr2k": {"n": 48},
}

INSTRUMENT_MODES = ["memory", "blocks", "arith"]

#: Paper-scale RSS measurements (--rss). ``small`` is the registry
#: default input, ``scaled`` grows the *trace* by >= 4x (via steps /
#: iterations where the app supports it, so analyzer cursor state --
#: which is O(distinct footprint), not O(trace) -- stays comparable),
#: and ``ceiling_kb`` is the absolute backstop for the streaming
#: drain's attributable RSS at the scaled input.
RSS_APPS: Dict[str, dict] = {
    "bfs": {
        "small": {"num_nodes": 2048},
        "scaled": {"num_nodes": 8192},
        "ceiling_kb": 16384,
    },
    "hotspot": {
        "small": {"n": 64, "steps": 4},
        "scaled": {"n": 64, "steps": 16},
        "ceiling_kb": 8192,
    },
    "srad_v2": {
        "small": {"n": 64, "iterations": 2},
        "scaled": {"n": 64, "iterations": 8},
        "ceiling_kb": 10240,
    },
    "backprop": {
        "small": {"input_units": 1024},
        "scaled": {"input_units": 4096},
        "ceiling_kb": 16384,
    },
    "nw": {
        "small": {"n": 128},
        "scaled": {"n": 256},  # 4x cells: work scales with n^2
        "ceiling_kb": 8192,
    },
    "syrk": {
        "small": {"n": 64},
        "scaled": {"n": 128},  # 4x trace: events scale with n^2 * m
        "ceiling_kb": 16384,
    },
    "syr2k": {
        "small": {"n": 64},
        "scaled": {"n": 128},  # 4x trace: events scale with n^2 * m
        "ceiling_kb": 16384,
    },
}

#: --fused comparison inputs: large enough that analysis dominates the
#: run (the regime the fused path exists for), small enough for CI.
#: Every app here must clear the CI --floor (1.5x vs the in-RAM batch
#: path). Simulation-dominated apps gain less and are deliberately not
#: gated: hotspot measures ~1.4x at any input scale because its wall
#: time is the interpreter, not the analyzers.
FUSED_APPS: Dict[str, dict] = {
    "syrk": {"n": 40, "m": 40},
    "syr2k": {"n": 32, "m": 32},
    "bfs": {"num_nodes": 8192},
}

#: Cache-line size handed to the drain-time analyzers in --rss runs.
RSS_LINE_SIZE = 128

#: Spill segment size for --rss runs: big enough that segment framing
#: is not the bottleneck, small enough that O(segment) is visibly
#: smaller than the full trace.
RSS_SPILL_ROWS = 2048


def _run_app(
    app_name: str,
    app_kwargs: dict,
    instrumented: bool,
    workers: Optional[int] = None,
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    """One end-to-end execution; returns wall seconds + event counts."""
    app = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    session = None
    if instrumented:
        instrumentation_pipeline(INSTRUMENT_MODES).run(module)
        session = ProfilingSession(sample_rate=sample_rate)
    device = Device(KEPLER_K40C)
    device.backend = backend
    if workers:
        device.parallel_workers = workers
    rt = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = app.prepare(rt)

    start = time.perf_counter()
    results = app.run(rt, image, state)
    wall = time.perf_counter() - start

    instructions = sum(r.instructions for r in results)
    records = 0
    if session is not None:
        for profile in session.profiles:
            records += (
                len(profile.memory_records)
                + len(profile.block_records)
                + len(profile.arith_records)
            )
    return {
        "wall_s": wall,
        "instructions": instructions,
        "records": records,
    }


def _trimmed(samples: List[float]) -> float:
    """Trimmed mean: drop the min and max when N >= 3, else the min.

    The trimmed mean discards both the one-off scheduler hiccup (the
    max) and the suspiciously lucky fully-warm run (the min), which a
    plain minimum would happily report as "the" time.
    """
    if len(samples) >= 3:
        kept = sorted(samples)[1:-1]
        return sum(kept) / len(kept)
    return min(samples)


def _best_of(
    repeat: int,
    app_name: str,
    app_kwargs: dict,
    instrumented: bool,
    workers: Optional[int],
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    """Trimmed-mean wall time over ``repeat`` runs (counts are
    deterministic and identical across repeats)."""
    runs = [
        _run_app(app_name, app_kwargs, instrumented, workers,
                 backend, sample_rate)
        for _ in range(max(1, repeat))
    ]
    result = dict(runs[0])
    result["wall_s"] = _trimmed([r["wall_s"] for r in runs])
    return result


def run_suite(
    apps: Dict[str, dict],
    workers: Optional[int] = None,
    repeat: int = 1,
    backend: str = "interpreter",
    sample_rate: int = 1,
) -> dict:
    per_app: Dict[str, dict] = {}
    for name, kwargs in apps.items():
        plain = _best_of(repeat, name, kwargs, False, workers, backend)
        instr = _best_of(repeat, name, kwargs, True, workers, backend,
                         sample_rate)
        per_app[name] = {
            "uninstrumented_s": round(plain["wall_s"], 4),
            "instrumented_s": round(instr["wall_s"], 4),
            "instructions": instr["instructions"],
            "instructions_per_s": round(
                instr["instructions"] / instr["wall_s"]
            ) if instr["wall_s"] else 0,
            "records": instr["records"],
            "records_per_s": round(
                instr["records"] / instr["wall_s"]
            ) if instr["wall_s"] else 0,
        }
        print(
            f"{name:>10}: plain {plain['wall_s']:7.3f}s   "
            f"instrumented {instr['wall_s']:7.3f}s   "
            f"{per_app[name]['instructions_per_s']:>9,} instr/s   "
            f"{per_app[name]['records_per_s']:>9,} rec/s"
        )
    total_plain = sum(a["uninstrumented_s"] for a in per_app.values())
    total_instr = sum(a["instrumented_s"] for a in per_app.values())
    total_insn = sum(a["instructions"] for a in per_app.values())
    total_rec = sum(a["records"] for a in per_app.values())
    aggregate = {
        "uninstrumented_s": round(total_plain, 4),
        "instrumented_s": round(total_instr, 4),
        "instructions": total_insn,
        "instructions_per_s": round(total_insn / total_instr)
        if total_instr else 0,
        "records": total_rec,
        "records_per_s": round(total_rec / total_instr) if total_instr else 0,
    }
    print(
        f"{'TOTAL':>10}: plain {total_plain:7.3f}s   "
        f"instrumented {total_instr:7.3f}s"
    )
    return {"apps": per_app, "aggregate": aggregate}


def _rss_child(app_name: str, app_kwargs: dict, mode: str) -> int:
    """Peak-RSS delta (KB) of one configuration, run in a forked child.

    ``mode`` is ``plain`` (uninstrumented), ``inram`` (instrumented,
    default drain, batch analyses over the materialized trace) or
    ``stream`` (instrumented, streaming drain through an
    :func:`advisor_plan` analyzer bank). The child records its
    ``ru_maxrss`` before and after the run; since maxrss is a
    high-water mark, the delta is exactly the memory the run grew the
    child by on top of the (copy-on-write, parent-resident) imports.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        status = 1
        try:
            os.close(read_fd)
            start = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            with tempfile.TemporaryDirectory() as spill_dir:
                app = build_app(app_name, **app_kwargs)
                module = compile_kernels(list(app.kernels), app_name)
                optimization_pipeline().run(module)
                session = None
                if mode != "plain":
                    instrumentation_pipeline(INSTRUMENT_MODES).run(module)
                    plan = None
                    if mode == "stream":
                        plan = advisor_plan(RSS_LINE_SIZE, INSTRUMENT_MODES)
                    session = ProfilingSession(
                        spill_dir=spill_dir,
                        spill_rows=RSS_SPILL_ROWS,
                        streaming=plan,
                    )
                device = Device(KEPLER_K40C)
                rt = CudaRuntime(device, profiler=session)
                image = device.load_module(module)
                state = app.prepare(rt)
                app.run(rt, image, state)
                # Force the same analyses on both drain paths so the
                # comparison is analyzers-vs-analyzers, not
                # analyzers-vs-nothing.
                if mode == "stream":
                    for profile in session.profiles:
                        profile.aggregates.results()
                elif mode == "inram":
                    for profile in session.profiles:
                        reuse_distance_analysis(
                            profile, ReuseDistanceModel.ELEMENT, RSS_LINE_SIZE
                        )
                        reuse_distance_analysis(
                            profile, ReuseDistanceModel.CACHE_LINE,
                            RSS_LINE_SIZE,
                        )
                        memory_divergence_analysis(profile, RSS_LINE_SIZE)
                        branch_divergence_analysis(profile)
                        arithmetic_analysis(profile)
            end = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            with os.fdopen(write_fd, "w") as out:
                json.dump({"delta_kb": end - start}, out)
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd) as pipe:
        payload = pipe.read()
    _, wait_status = os.waitpid(pid, 0)
    if wait_status != 0 or not payload:
        raise RuntimeError(
            f"--rss child failed: {app_name} {app_kwargs} mode={mode}"
        )
    return json.loads(payload)["delta_kb"]


def run_rss_suite(repeat: int = 1) -> dict:
    """Attributable drain RSS per app; the O(segment) acceptance gate.

    For each :data:`RSS_APPS` entry this measures, best-of-``repeat``:

    - ``attr_inram_small_kb``: in-RAM drain + batch analyses at the
      *current* (registry-default) input, minus an uninstrumented run
      at the same input,
    - ``attr_stream_scaled_kb``: streaming drain at the >=4x input,
      minus uninstrumented at the >=4x input,
    - ``attr_inram_scaled_kb``: in-RAM drain at the >=4x input (the
      same-scale comparison, recorded for context).

    An app passes iff the streaming drain at the scaled input stays
    under its absolute ceiling AND under the in-RAM drain at the small
    input -- i.e. growing the trace 4x must not cost what the old
    full-trace drain paid at 1x.
    """
    per_app: Dict[str, dict] = {}
    passed = True
    for name, spec in RSS_APPS.items():
        raw: Dict[str, int] = {}
        for label, kwargs, mode in (
            ("plain_small", spec["small"], "plain"),
            ("inram_small", spec["small"], "inram"),
            ("plain_scaled", spec["scaled"], "plain"),
            ("stream_scaled", spec["scaled"], "stream"),
            ("inram_scaled", spec["scaled"], "inram"),
        ):
            best = None
            for _ in range(max(1, repeat)):
                delta = _rss_child(name, kwargs, mode)
                if best is None or delta < best:
                    best = delta
            raw[label] = best
        attr_inram_small = raw["inram_small"] - raw["plain_small"]
        attr_stream_scaled = raw["stream_scaled"] - raw["plain_scaled"]
        attr_inram_scaled = raw["inram_scaled"] - raw["plain_scaled"]
        entry = {
            "small_kwargs": spec["small"],
            "scaled_kwargs": spec["scaled"],
            "attr_inram_small_kb": attr_inram_small,
            "attr_stream_scaled_kb": attr_stream_scaled,
            "attr_inram_scaled_kb": attr_inram_scaled,
            "ceiling_kb": spec["ceiling_kb"],
            "under_ceiling": attr_stream_scaled <= spec["ceiling_kb"],
            "beats_inram_at_small": attr_stream_scaled < attr_inram_small,
        }
        per_app[name] = entry
        ok = entry["under_ceiling"] and entry["beats_inram_at_small"]
        passed = passed and ok
        print(
            f"{name:>10}: in-RAM@1x {attr_inram_small:>7,} KB   "
            f"stream@4x {attr_stream_scaled:>7,} KB   "
            f"in-RAM@4x {attr_inram_scaled:>7,} KB   "
            f"ceiling {spec['ceiling_kb']:>6,} KB   "
            f"{'ok' if ok else 'FAIL'}"
        )
    return {"apps": per_app, "passed": passed}


def _analysis_run(app_name: str, app_kwargs: dict, mode: str,
                  spill_dir: str) -> float:
    """Wall seconds for one execute+analyze run under ``mode``.

    ``inram`` materializes the trace in RAM and runs the batch
    analyses over it afterwards (the classic pipeline); ``stream``
    spills ``RSS_SPILL_ROWS``-row segments and drains them through an
    :func:`advisor_plan` bank at kernel end; ``fused`` feeds the same
    bank in flight, so no trace is ever materialized or spilled (the
    spill config only sets the flush granularity). All three produce
    byte-identical analyzer results; only where the work happens --
    and therefore the wall time -- differs, which is exactly what this
    measures: the timed region covers the app run *and* the analyses.
    """
    app = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(INSTRUMENT_MODES).run(module)
    if mode == "inram":
        session = ProfilingSession()
    else:
        plan = advisor_plan(RSS_LINE_SIZE, INSTRUMENT_MODES)
        session = ProfilingSession(
            spill_dir=spill_dir,
            spill_rows=RSS_SPILL_ROWS,
            streaming=plan if mode == "stream" else None,
            fused=plan if mode == "fused" else None,
        )
    device = Device(KEPLER_K40C)
    rt = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = app.prepare(rt)

    start = time.perf_counter()
    app.run(rt, image, state)
    if mode == "inram":
        for profile in session.profiles:
            reuse_distance_analysis(
                profile, ReuseDistanceModel.ELEMENT, RSS_LINE_SIZE
            )
            reuse_distance_analysis(
                profile, ReuseDistanceModel.CACHE_LINE, RSS_LINE_SIZE
            )
            memory_divergence_analysis(profile, RSS_LINE_SIZE)
            branch_divergence_analysis(profile)
            arithmetic_analysis(profile)
    else:
        for profile in session.profiles:
            profile.aggregates.results()
    return time.perf_counter() - start


def run_fused_suite(repeat: int = 1) -> dict:
    """Execute+analyze wall time: in-RAM vs streaming vs fused.

    Per :data:`FUSED_APPS` entry, the trimmed-mean-of-``repeat`` wall
    time of each pipeline shape plus the ``vs_inram`` / ``vs_stream``
    speedup ratios of the fused path. The results are comparable
    because the three paths compute byte-identical analyzer output.
    """
    per_app: Dict[str, dict] = {}
    for name, kwargs in FUSED_APPS.items():
        times: Dict[str, float] = {}
        for mode in ("inram", "stream", "fused"):
            samples = []
            for _ in range(max(1, repeat)):
                with tempfile.TemporaryDirectory() as spill_dir:
                    samples.append(
                        _analysis_run(name, kwargs, mode, spill_dir)
                    )
            times[mode] = _trimmed(samples)
        per_app[name] = {
            "kwargs": kwargs,
            "inram_s": round(times["inram"], 4),
            "stream_s": round(times["stream"], 4),
            "fused_s": round(times["fused"], 4),
            "vs_inram": round(times["inram"] / times["fused"], 3)
            if times["fused"] else None,
            "vs_stream": round(times["stream"] / times["fused"], 3)
            if times["fused"] else None,
        }
        print(
            f"{name:>10}: in-RAM {times['inram']:7.3f}s   "
            f"stream {times['stream']:7.3f}s   "
            f"fused {times['fused']:7.3f}s   "
            f"{per_app[name]['vs_inram']:.2f}x vs in-RAM   "
            f"{per_app[name]['vs_stream']:.2f}x vs stream"
        )
    total = {
        mode: sum(app[f"{mode}_s"] for app in per_app.values())
        for mode in ("inram", "stream", "fused")
    }
    aggregate = {
        "inram_s": round(total["inram"], 4),
        "stream_s": round(total["stream"], 4),
        "fused_s": round(total["fused"], 4),
        "vs_inram": round(total["inram"] / total["fused"], 3)
        if total["fused"] else None,
        "vs_stream": round(total["stream"] / total["fused"], 3)
        if total["fused"] else None,
    }
    print(
        f"{'TOTAL':>10}: in-RAM {total['inram']:7.3f}s   "
        f"stream {total['stream']:7.3f}s   "
        f"fused {total['fused']:7.3f}s   "
        f"{aggregate['vs_inram']:.2f}x vs in-RAM"
    )
    return {"apps": per_app, "aggregate": aggregate}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small-app subset smoke run (CI)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="store this run as the comparison baseline")
    parser.add_argument("--workers", type=int, default=None,
                        help="use the parallel launch path with N workers")
    parser.add_argument("--backend", choices=["interpreter", "batched"],
                        default="interpreter",
                        help="execution backend behind Device.launch")
    parser.add_argument("--sample-rate", type=int, default=1,
                        help="trace-sampling stride for instrumented runs")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repeat each measurement N times, keep the "
                        "trimmed mean (min+max dropped when N >= 3)")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail (exit 1) if any app's instrumented "
                        "vs_interpreter speedup drops below this ratio "
                        "(needs a non-interpreter --backend and a prior "
                        "interpreter run of the same suite); with "
                        "--fused, gates each app's fused vs_inram "
                        "speedup instead")
    parser.add_argument("--fused", action="store_true",
                        help="measure execute+analyze wall time on the "
                        "FUSED_APPS inputs: in-RAM batch vs streaming "
                        "drain vs fused in-flight analysis; records a "
                        "'fused' section in the results file")
    parser.add_argument("--rss", action="store_true",
                        help="measure attributable drain peak RSS on the "
                        "paper-scale RSS_APPS inputs instead of speed; "
                        "exit 1 if the streaming drain breaches its "
                        "ceiling or the in-RAM drain's small-input RSS")
    args = parser.parse_args(argv)
    if (args.floor is not None and args.backend == "interpreter"
            and not args.fused):
        parser.error("--floor needs a non-interpreter --backend or --fused")
    if args.rss and (args.floor is not None or args.update_baseline
                     or args.fused):
        parser.error("--rss is standalone; drop "
                     "--floor/--update-baseline/--fused")
    if args.fused and args.update_baseline:
        parser.error("--fused is standalone; drop --update-baseline")

    if args.fused:
        fused = run_fused_suite(repeat=args.repeat)
        fused["config"] = {
            "spill_rows": RSS_SPILL_ROWS,
            "line_size": RSS_LINE_SIZE,
            "modes": INSTRUMENT_MODES,
            "repeat": args.repeat,
            "python": sys.version.split()[0],
        }
        existing_fused: dict = {}
        if os.path.exists(RESULT_FILE):
            with open(RESULT_FILE) as f:
                existing_fused = json.load(f)
        existing_fused["fused"] = fused
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(RESULT_FILE, "w") as f:
            json.dump(existing_fused, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {RESULT_FILE}")
        if args.floor is not None:
            slow = {
                name: app["vs_inram"]
                for name, app in fused["apps"].items()
                if app["vs_inram"] is not None
                and app["vs_inram"] < args.floor
            }
            if slow:
                print(f"--floor {args.floor}: fused apps below the "
                      f"per-app vs_inram floor: " + ", ".join(
                          f"{name} ({ratio:.3f}x)"
                          for name, ratio in sorted(slow.items())
                      ), file=sys.stderr)
                return 1
            print(f"--floor {args.floor}: every app's fused path at or "
                  f"above the floor vs the in-RAM batch path")
        return 0

    if args.rss:
        rss = run_rss_suite(repeat=args.repeat)
        rss["config"] = {
            "spill_rows": RSS_SPILL_ROWS,
            "line_size": RSS_LINE_SIZE,
            "modes": INSTRUMENT_MODES,
            "repeat": args.repeat,
            "python": sys.version.split()[0],
        }
        existing_rss: dict = {}
        if os.path.exists(RESULT_FILE):
            with open(RESULT_FILE) as f:
                existing_rss = json.load(f)
        existing_rss["rss"] = rss
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(RESULT_FILE, "w") as f:
            json.dump(existing_rss, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {RESULT_FILE}")
        if not rss["passed"]:
            failing = [
                name for name, app in rss["apps"].items()
                if not (app["under_ceiling"] and app["beats_inram_at_small"])
            ]
            print("--rss: streaming drain RSS gate failed for: "
                  + ", ".join(sorted(failing)), file=sys.stderr)
            return 1
        print("--rss: streaming drain under every ceiling and below the "
              "in-RAM drain at current input sizes")
        return 0

    apps = (
        QUICK_APPS if args.quick else {name: {} for name in APP_NAMES}
    )
    suite = run_suite(apps, workers=args.workers, repeat=args.repeat,
                      backend=args.backend, sample_rate=args.sample_rate)
    suite["config"] = {
        "quick": args.quick,
        "workers": args.workers,
        "backend": args.backend,
        "sample_rate": args.sample_rate,
        "repeat": args.repeat,
        "python": sys.version.split()[0],
    }

    existing: dict = {}
    if os.path.exists(RESULT_FILE):
        with open(RESULT_FILE) as f:
            existing = json.load(f)

    base_key = "quick" if args.quick else "full"
    key = base_key
    if args.backend != "interpreter":
        key += f"-{args.backend}"
    if args.sample_rate != 1:
        key += f"-sampled{args.sample_rate}"
    section = existing.setdefault(key, {})
    if args.update_baseline or "baseline" not in section:
        section["baseline"] = suite
    section["current"] = suite

    base = section["baseline"]["aggregate"]
    cur = suite["aggregate"]
    section["speedup"] = {
        "uninstrumented": round(
            base["uninstrumented_s"] / cur["uninstrumented_s"], 3
        ) if cur["uninstrumented_s"] else None,
        "instrumented": round(
            base["instrumented_s"] / cur["instrumented_s"], 3
        ) if cur["instrumented_s"] else None,
    }
    print(f"speedup vs baseline: {section['speedup']}")

    # A non-interpreter backend also reports per-app speedups against
    # the matching interpreter run, so backend wins are visible per app.
    reference = existing.get(base_key, {}).get("current")
    if args.backend != "interpreter" and reference is not None:
        vs: dict = {"apps": {}}
        for name, app in suite["apps"].items():
            ref = reference["apps"].get(name)
            if not ref:
                continue
            vs["apps"][name] = {
                "uninstrumented": round(
                    ref["uninstrumented_s"] / app["uninstrumented_s"], 3
                ) if app["uninstrumented_s"] else None,
                "instrumented": round(
                    ref["instrumented_s"] / app["instrumented_s"], 3
                ) if app["instrumented_s"] else None,
            }
        vs["aggregate"] = {
            "uninstrumented": round(
                reference["aggregate"]["uninstrumented_s"]
                / suite["aggregate"]["uninstrumented_s"], 3
            ) if suite["aggregate"]["uninstrumented_s"] else None,
            "instrumented": round(
                reference["aggregate"]["instrumented_s"]
                / suite["aggregate"]["instrumented_s"], 3
            ) if suite["aggregate"]["instrumented_s"] else None,
        }
        section["vs_interpreter"] = vs
        print(f"vs interpreter ({base_key}): {vs['aggregate']}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULT_FILE, "w") as f:
        json.dump(existing, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {RESULT_FILE}")

    if args.floor is not None:
        vs = section.get("vs_interpreter")
        if vs is None:
            print(f"--floor {args.floor}: no interpreter reference for "
                  f"{base_key!r}; run the interpreter suite first",
                  file=sys.stderr)
            return 1
        slow = {
            name: ratios["instrumented"]
            for name, ratios in vs["apps"].items()
            if ratios["instrumented"] is not None
            and ratios["instrumented"] < args.floor
        }
        if slow:
            print(f"--floor {args.floor}: apps below the per-app "
                  f"instrumented floor: " + ", ".join(
                      f"{name} ({ratio:.3f}x)"
                      for name, ratio in sorted(slow.items())
                  ), file=sys.stderr)
            return 1
        print(f"--floor {args.floor}: all apps at or above the floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
