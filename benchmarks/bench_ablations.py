"""Ablations of the design choices DESIGN.md calls out.

1. Reuse-distance model: memory-element vs cache-line granularity (the
   two models CUDAAdvisor offers).
2. Write-restart vs classic reuse distance (the paper's write-evict L1
   modelling tweak).
3. Warp-scheduler interleaving (per-instruction round-robin vs
   greedy-then-oldest) and its effect on per-CTA trace order.
4. Eq.(1) with plain means vs outlier-trimmed means (the paper
   explicitly chose plain means "to rather conservatively estimate").
5. Reuse-theory cache-size prediction (the architects' use case the
   paper motivates reuse-distance analysis with).
"""

import pytest

from benchmarks.common import profiled_report, write_result
from repro.analysis.reuse_distance import (
    INFINITE,
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    reuse_distance_analysis,
    reuse_distances_of_trace,
)
from repro.analysis.reuse_distance import _trace_events  # ablation-only
from repro.apps import build_app
from repro.frontend.dsl import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession


def test_ablation_element_vs_cache_line(benchmark):
    """Cache-line granularity absorbs spatial locality: the no-reuse
    fraction must drop (or stay) for every app when moving from element
    to line granularity."""

    def run():
        rows = []
        for app in ("hotspot", "srad_v2", "syrk", "bicg"):
            report = profiled_report(app, modes=("memory",))
            rows.append((
                app,
                report.reuse_element.no_reuse_fraction,
                report.reuse_cache_line.no_reuse_fraction,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: element vs cache-line reuse model (no-reuse %)",
             f"{'app':<10} {'element':>9} {'line':>7}"]
    for app, elem, line in rows:
        lines.append(f"{app:<10} {100 * elem:>8.1f}% {100 * line:>6.1f}%")
        assert line <= elem + 1e-9, app
    write_result("ablation_reuse_model.txt", "\n".join(lines))
    # hotspot is the showcase: element-streaming but line-level reuse.
    hotspot = dict((r[0], r) for r in rows)["hotspot"]
    assert hotspot[1] > 0.9 and hotspot[2] < 0.7


def test_ablation_write_restart(benchmark):
    """Write-restart only *adds* ∞ samples (kills read-after-write
    reuse). lavaMD is the showcase: its force accumulation reads and
    rewrites fv[] every neighbor-box iteration, so the classic model
    sees rich reuse that the write-evict L1 can never serve -- exactly
    the distortion the paper's restart rule removes."""
    report = profiled_report("lavaMD", modes=("memory",))
    profile = report.session.profiles[0]

    def run():
        restart = reuse_distance_analysis(profile, write_restart=True)
        classic = reuse_distance_analysis(profile, write_restart=False)
        return restart, classic

    restart, classic = benchmark.pedantic(run, rounds=1, iterations=1)
    assert restart.infinite >= classic.infinite
    assert restart.samples == classic.samples
    # The rule must change the verdict materially for this app.
    assert (restart.no_reuse_fraction - classic.no_reuse_fraction) > 0.1
    write_result(
        "ablation_write_restart.txt",
        (f"lavaMD trace: no-reuse with write-restart = "
         f"{100 * restart.no_reuse_fraction:.1f}%, classic = "
         f"{100 * classic.no_reuse_fraction:.1f}% (the paper's rule "
         f"removes read-after-write 'reuse' a write-evict L1 cannot serve)"),
    )


@pytest.mark.parametrize("policy", ["rr", "gto"])
def test_ablation_scheduler_trace_order(benchmark, policy):
    """Scheduling policy changes per-CTA trace interleaving and hence
    measured reuse distances -- but not the computed results, and the
    no-reuse fraction (a program property) only wiggles."""
    app = build_app("srad_v2", n=32, iterations=1)
    module = compile_kernels(list(app.kernels), f"srad-{policy}")
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory"]).run(module)

    def run():
        session = ProfilingSession()
        dev = Device(KEPLER_K40C)
        dev.scheduler = policy
        rt = CudaRuntime(dev, profiler=session)
        image = dev.load_module(module)
        state = app.prepare(rt)
        app.run(rt, image, state)
        assert app.check(rt, state)
        merged = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        for profile in session.profiles:
            merged.merge(reuse_distance_analysis(profile))
        return merged

    merged = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["no_reuse"] = round(merged.no_reuse_fraction, 4)
    assert 0.0 < merged.no_reuse_fraction < 1.0


def test_ablation_trimmed_mean_eq1(benchmark):
    """Eq.(1) with plain means (the paper's choice) vs 10%-trimmed
    means. Trimming drops the long-distance tail, shrinking R.D. and
    therefore never *reducing* the predicted warp count."""
    report = profiled_report("syrk", modes=("memory",))
    profile = report.session.profiles[0]

    def distances():
        events_by_cta = [
            _trace_events(records, ReuseDistanceModel.CACHE_LINE, 128)
            for records in profile.memory_records_by_cta().values()
        ]
        out = []
        for events in events_by_cta:
            out.extend(
                d for d in reuse_distances_of_trace(events)
                if d != INFINITE
            )
        return out

    values = benchmark.pedantic(distances, rounds=1, iterations=1)
    values.sort()
    plain = sum(values) / len(values)
    k = len(values) // 10
    trimmed_values = values[k: len(values) - k] or values
    trimmed = sum(trimmed_values) / len(trimmed_values)
    assert trimmed <= plain + 1e-9
    write_result(
        "ablation_trimmed_mean.txt",
        (f"syrk cache-line R.D.: plain mean = {plain:.2f}, "
         f"10%-trimmed mean = {trimmed:.2f} (paper uses the plain mean "
         f"as the conservative choice)"),
    )


def test_cache_size_prediction_curves(benchmark):
    """The architects' use case the paper motivates reuse distance with:
    predict the optimal cache size from one trace (Nugteren et al.'s
    reuse-theory model). One pass yields the full hit-rate-vs-capacity
    curve; hotspot's curve saturates immediately (L1-size-insensitive,
    matching its Figure 4 character) while syrk's keeps climbing
    (capacity-sensitive, matching "cache capacity likely affects the
    effectiveness of L1 level optimization schemes")."""
    from repro.analysis.cache_model import (
        hit_rate_curve,
        profile_stack_distances,
    )

    def build():
        curves = {}
        for app in ("hotspot", "syrk", "bicg"):
            report = profiled_report(app, modes=("memory",))
            distances = []
            for profile in report.session.profiles:
                distances.extend(profile_stack_distances(profile, 128))
            curves[app] = hit_rate_curve(
                distances, [2 ** k for k in range(3, 12)], 128
            )
        return curves

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    text = [curves[a].render(f"({a})") for a in curves]
    write_result("ablation_cache_size_curves.txt", "\n\n".join(text))

    hotspot, syrk = curves["hotspot"], curves["syrk"]
    # hotspot: tiny capacity already reaches (close to) its best rate.
    assert hotspot.hit_rates[2] >= hotspot.max_rate - 0.05
    # syrk: meaningful gains from growing the cache.
    assert syrk.max_rate - syrk.hit_rates[0] > 0.2


def test_ablation_inlining(benchmark):
    """Inlining nw's maximum3 device function (called from both inner
    wavefront loops) removes the per-call frame machinery -- the
    paper's Section 5 'heavyweight function calls' overhead source, at
    application level."""
    from repro.passes import PassManager
    from repro.passes.inline import InlineFunctionsPass

    app = build_app("nw", n=64)

    def run(inline):
        module = compile_kernels(list(app.kernels), f"nw-inline-{inline}")
        optimization_pipeline().run(module)
        if inline:
            PassManager([InlineFunctionsPass()]).run(module)
        dev = Device(KEPLER_K40C)
        rt = CudaRuntime(dev)
        image = dev.load_module(module)
        state = app.prepare(rt)
        results = app.run(rt, image, state)
        assert app.check(rt, state)
        return sum(r.instructions for r in results)

    def both():
        return run(False), run(True)

    plain, inlined = benchmark.pedantic(both, rounds=1, iterations=1)
    write_result(
        "ablation_inlining.txt",
        (f"nw executed warp-instructions: {plain} without inlining, "
         f"{inlined} with maximum3 inlined "
         f"({100 * (1 - inlined / plain):.1f}% fewer)"),
    )
    assert inlined <= plain
