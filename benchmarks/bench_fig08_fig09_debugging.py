"""Figures 8 and 9: code-centric and data-centric debugging views.

Case study (E) of the paper, on bfs: find the memory accesses that
suffer divergence, print the concatenated CPU+GPU calling context
(Figure 8), and resolve the data object they touch back through
cudaMemcpy to its host counterpart -- the paper's
``d_graph_visited`` <- ``h_graph_visited`` chain (Figure 9).
"""

import pytest

from benchmarks.common import profiled_report, write_result
from repro.analysis.divergence_memory import divergent_sites
from repro.profiler.codecentric import format_code_centric_view


def _bfs_views():
    report = profiled_report("bfs", modes=("memory", "blocks"))
    session = report.session

    # Pick the most-divergent access site across all kernel instances.
    best = None
    for profile in session.profiles:
        for (line, col), count in divergent_sites(profile, 128).items():
            if best is None or count > best[0]:
                record = next(
                    r for r in profile.memory_records
                    if r.line == line and r.col == col
                )
                best = (count, profile, record)
    count, profile, record = best

    code_view = format_code_centric_view(
        profile.host_call_path,
        profile.call_paths.path(record.call_path_id),
        profile.functions_by_id,
        f"bfs.py: {record.line} (memory divergence, {count} warp events)",
    )
    data_view = session.data_centric_map().resolve(
        int(record.active_addresses()[0])
    )
    return report, code_view, data_view


def test_fig08_code_centric_view(benchmark):
    report, code_view, _ = benchmark.pedantic(
        _bfs_views, rounds=1, iterations=1
    )
    write_result("fig08_code_centric.txt", code_view)
    # Figure 8's structure: CPU rows from main, then GPU rows, then leaf.
    assert code_view.startswith("CPU 0: main()")
    assert "GPU" in code_view
    assert "bfs_kernel" in code_view
    assert "bfs.py" in code_view


def test_fig09_data_centric_view(benchmark):
    _, _, data_view = benchmark.pedantic(_bfs_views, rounds=1, iterations=1)
    rendered = data_view.render()
    write_result("fig09_data_centric.txt", rendered)
    # Figure 9's structure: device object <- cudaMemcpy <- host object,
    # each with its allocation call path.
    assert data_view.device is not None
    assert data_view.transfer is not None
    assert data_view.host is not None
    assert data_view.device.name.startswith("d_")
    assert data_view.host.name.startswith("h_")
    assert "cudaMemcpy" in rendered
    assert "prepare" in rendered  # the allocating host function
