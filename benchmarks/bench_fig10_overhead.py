"""Figure 10: runtime overhead of memory + control-flow instrumentation.

Per app and architecture: instrumented-vs-baseline cost ratio. The
paper measures wall clock on hardware and reports "mostly 10x to 120x",
far below simulators' 10^6-10^7x; here the primary metric is simulated
cycles (whose model charges the paper's three overhead sources: hook
call, per-lane trace formatting, atomic buffer bump), with dynamic
instruction counts reported alongside.
"""

import pytest

from benchmarks.common import write_result
from repro.analysis.overhead import overhead_report
from repro.apps import APP_NAMES, build_app
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100
from repro.optim.advisor import CUDAAdvisor

_CACHE = {}


def _overhead(app_name, arch):
    key = (app_name, arch.name)
    if key not in _CACHE:
        advisor = CUDAAdvisor(
            arch=arch, modes=("memory", "blocks"), measure_overhead=True
        )
        report = advisor.profile(build_app(app_name))
        _CACHE[key] = report.overhead
    return _CACHE[key]


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("arch", [KEPLER_K40C, PASCAL_P100],
                         ids=lambda a: a.name)
def test_fig10_overhead(benchmark, app, arch):
    overhead = benchmark.pedantic(
        _overhead, args=(app, arch), rounds=1, iterations=1
    )
    benchmark.extra_info["cycle_overhead_x"] = round(
        overhead.cycle_overhead, 1
    )
    benchmark.extra_info["instruction_overhead_x"] = round(
        overhead.instruction_overhead, 1
    )
    # Instrumentation costs something but stays far below simulator
    # slowdowns (the paper's 10^6-10^7x comparison point).
    assert overhead.cycle_overhead > 1.2
    assert overhead.cycle_overhead < 1000
    assert overhead.instruction_overhead > 1.0


def test_fig10_table(benchmark):
    def build():
        lines = ["Figure 10: instrumentation overhead (memory + blocks)",
                 f"{'app':<10} {'Kepler':>10} {'Pascal':>10} "
                 f"{'instr-x':>9}"]
        ratios = []
        for app in APP_NAMES:
            kepler = _overhead(app, KEPLER_K40C)
            pascal = _overhead(app, PASCAL_P100)
            ratios.append(kepler.cycle_overhead)
            ratios.append(pascal.cycle_overhead)
            lines.append(
                f"{app:<10} {kepler.cycle_overhead:>9.1f}x "
                f"{pascal.cycle_overhead:>9.1f}x "
                f"{kepler.instruction_overhead:>8.1f}x"
            )
        return lines, ratios

    lines, ratios = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result("fig10_overhead.txt", "\n".join(lines))
    # The bulk of the suite lands in a 2x-200x band (paper: 10x-120x;
    # our cost model is calibrated for shape, not absolute parity).
    in_band = sum(1 for r in ratios if 2 <= r <= 200)
    assert in_band >= len(ratios) * 0.7
