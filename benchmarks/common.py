"""Shared infrastructure for the per-figure/table benchmark harnesses.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the relevant experiment through the public API, prints (and
writes to ``benchmarks/results/``) the same rows/series the paper
reports, asserts the qualitative shape, and feeds pytest-benchmark a
representative timed section.

Profiled runs are cached per (app, arch, modes) for the session, so
figures that share a trace (Figure 4, Figure 5, Table 3) pay for each
instrumented execution once.

Scaling note (see DESIGN.md section 6): inputs are scaled down from the
paper's datasets, so the bypass experiments (Figures 6-7) use a
correspondingly scaled GPU -- 2 SMs (keeping CTAs/SM at hardware-typical
occupancy) and L1 capacities scaled by the same 1/4 factor as the data
(4 KB / 12 KB standing in for Kepler's 16/48 KB split, 6 KB for
Pascal's 24 KB unified cache), which preserves the paper's data:L1
capacity ratios.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional, Sequence, Tuple

from repro.apps import APP_NAMES, build_app
from repro.gpu.arch import GPUArchitecture, KEPLER_K40C, PASCAL_P100
from repro.gpu.timing import TimingParams
from repro.optim.advisor import AdvisorReport, CUDAAdvisor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Figure 6/7's "cache-bypassing favorable applications" (Section 4.2-D).
BYPASS_APPS = ("bfs", "hotspot", "srad_v2", "syrk", "syr2k")

#: Scaled-GPU parameters for the bypass experiments.
BYPASS_SMS = 2
BYPASS_MSHRS = 16
BYPASS_TIMING = TimingParams(mshr_fail_stall=60)
L1_SCALE = 4  # paper L1 sizes divided by this (matches input scaling)


def scaled_bypass_arch(base: GPUArchitecture, l1_bytes: int) -> GPUArchitecture:
    return dataclasses.replace(
        base, num_sms=BYPASS_SMS, l1_size=l1_bytes, mshr_entries=BYPASS_MSHRS
    )


KEPLER_16_SCALED = scaled_bypass_arch(KEPLER_K40C, 16 * 1024 // L1_SCALE)
KEPLER_48_SCALED = scaled_bypass_arch(KEPLER_K40C, 48 * 1024 // L1_SCALE)
PASCAL_24_SCALED = scaled_bypass_arch(PASCAL_P100, 24 * 1024 // L1_SCALE)

_REPORT_CACHE: Dict[Tuple, AdvisorReport] = {}
_BYPASS_CACHE: Dict[Tuple, Tuple] = {}


def profiled_report(
    app_name: str,
    arch: GPUArchitecture = KEPLER_K40C,
    modes: Sequence[str] = ("memory", "blocks"),
    measure_overhead: bool = False,
) -> AdvisorReport:
    """Profile one Table 2 app (cached per configuration)."""
    key = (app_name, arch.name, arch.l1_size, tuple(modes), measure_overhead)
    if key not in _REPORT_CACHE:
        advisor = CUDAAdvisor(
            arch=arch, modes=modes, measure_overhead=measure_overhead
        )
        _REPORT_CACHE[key] = advisor.profile(build_app(app_name))
    return _REPORT_CACHE[key]


def bypass_experiment(app_name: str, arch: GPUArchitecture):
    """Oracle search + Eq.(1) prediction for one app on one scaled arch.

    Returns (search, prediction); cached per configuration.
    """
    key = (app_name, arch.name, arch.l1_size)
    if key not in _BYPASS_CACHE:
        advisor = CUDAAdvisor(
            arch=arch, modes=("memory",), measure_overhead=False
        )
        advisor_timing = BYPASS_TIMING

        def fresh(profiler=None):
            from repro.gpu.device import Device
            from repro.host.runtime import CudaRuntime

            device = Device(arch, timing_params=advisor_timing)
            return CudaRuntime(device, profiler=profiler)

        advisor._fresh_runtime = fresh
        app = build_app(app_name)
        report = advisor.profile(app)
        search, prediction = advisor.evaluate_bypass(
            app, report.bypass_prediction
        )
        _BYPASS_CACHE[key] = (search, prediction)
    return _BYPASS_CACHE[key]


def write_result(filename: str, text: str) -> str:
    """Persist a rendered table/figure under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as f:
        f.write(text + "\n")
    print(text)
    return path
