"""Table 3: branch divergence per application.

Columns: # divergent (dynamic) blocks, # total blocks, % divergence.
The paper measures on Pascal but notes the result "applies to other
NVIDIA GPUs since branch divergence under CUDA is independent of
architectures" -- which also holds here (the reconvergence stack does
not depend on the memory system), and is asserted below.
"""

import pytest

from benchmarks.common import profiled_report, write_result
from repro.analysis.divergence_branch import branch_divergence_analysis
from repro.analysis.report import render_branch_table
from repro.apps import APP_NAMES
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100

#: Paper Table 3 percentages, for qualitative (ordering/band) checks.
PAPER_TABLE3 = {
    "backprop": 27.64, "bfs": 31.59, "hotspot": 32.69, "lavaMD": 13.84,
    "nn": 4.05, "nw": 69.43, "srad_v2": 34.30, "bicg": 0.0, "syrk": 0.0,
    "syr2k": 3.82,
}


def _rows(arch):
    rows = {}
    for app in APP_NAMES:
        rows[app] = profiled_report(
            app, arch=arch, modes=("memory", "blocks")
        ).branch_divergence
    return rows


def test_table3(benchmark):
    rows = benchmark.pedantic(_rows, args=(PASCAL_P100,), rounds=1,
                              iterations=1)
    text = render_branch_table(rows)
    write_result("table3_branch_divergence.txt", text)

    measured = {app: bd.divergence_percent for app, bd in rows.items()}
    for app, pct in measured.items():
        benchmark.extra_info[app] = round(pct, 2)

    # Paper: "NN, BICG, Syrk and Syr2k have very low frequency of branch
    # divergence while the others (especially NW) suffer".
    for app in ("nn", "bicg", "syrk", "syr2k"):
        assert measured[app] < 10.0, app
    assert measured["bicg"] == 0.0
    assert measured["syrk"] == 0.0
    # nw is the worst of the suite, with one scaled-input artifact: our
    # 2048-node bfs graph keeps frontiers sparse, inflating bfs's
    # divergence above the paper's 31.6% (see EXPERIMENTS.md), so bfs is
    # exempted from the ordering check.
    others = {a: p for a, p in measured.items() if a != "bfs"}
    assert measured["nw"] == max(others.values())
    assert measured["nw"] > 40.0
    # The divergent apps really diverge.
    for app in ("backprop", "bfs", "hotspot", "srad_v2"):
        assert measured[app] > 10.0, app
    # lavaMD sits between the clean and the heavy groups.
    assert measured["nn"] < measured["lavaMD"] < measured["nw"]


def test_table3_architecture_independent(benchmark):
    """Same percentages on Kepler and Pascal (paper's independence claim)."""

    def both():
        kepler = {
            app: profiled_report(app, arch=KEPLER_K40C,
                                 modes=("memory", "blocks"))
            .branch_divergence.divergence_percent
            for app in APP_NAMES
        }
        pascal = {
            app: profiled_report(app, arch=PASCAL_P100,
                                 modes=("memory", "blocks"))
            .branch_divergence.divergence_percent
            for app in APP_NAMES
        }
        return kepler, pascal

    kepler, pascal = benchmark.pedantic(both, rounds=1, iterations=1)
    for app in APP_NAMES:
        assert kepler[app] == pytest.approx(pascal[app], abs=1e-9), app
