"""The host (CPU) shadow stack.

CUDAAdvisor mandatorily instruments CPU function calls and returns so it
can concatenate the CPU call path leading to a kernel launch with the
GPU-side call path (Section 3.2.1, Figure 8). The stand-in for that
instrumentation in a Python host program is the :func:`host_function`
decorator: wrapped functions push a frame (function name, source file,
definition line, call-site line) on entry and pop it on return.

The stack is per-thread (``threading.local``), like the per-thread CPU
shadow stacks in the paper.
"""

from __future__ import annotations

import functools
import inspect
import sys
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class HostFrame:
    """One entry of the host shadow stack."""

    function: str
    filename: str
    line: int  # call-site line in the caller (0 for the root)

    def __str__(self) -> str:
        return f"{self.function}():: {self.filename}: {self.line}"


class HostShadowStack:
    """Per-thread stack of :class:`HostFrame`."""

    def __init__(self):
        self._local = threading.local()

    def _frames(self) -> List[HostFrame]:
        if not hasattr(self._local, "frames"):
            self._local.frames = [HostFrame("main", "<program>", 0)]
        return self._local.frames

    def push(self, frame: HostFrame) -> None:
        self._frames().append(frame)

    def pop(self) -> HostFrame:
        frames = self._frames()
        if len(frames) <= 1:
            raise RuntimeError("host shadow stack underflow")
        return frames.pop()

    def snapshot(self) -> Tuple[HostFrame, ...]:
        """The current call path, outermost first."""
        return tuple(self._frames())

    def depth(self) -> int:
        return len(self._frames())

    def reset(self) -> None:
        self._local.frames = [HostFrame("main", "<program>", 0)]


#: The process-wide host shadow stack (one per thread inside).
GLOBAL_HOST_STACK = HostShadowStack()


def host_function(fn: Callable) -> Callable:
    """Instrument a host function's calls and returns.

    Equivalent to the engine's mandatory CPU instrumentation: each call
    pushes the callee (with the *call site's* file/line, which is what
    the code-centric view prints) and each return pops it.
    """
    filename = (inspect.getsourcefile(fn) or "<unknown>").rsplit("/", 1)[-1]

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        caller = sys._getframe(1)
        call_site_file = caller.f_code.co_filename.rsplit("/", 1)[-1]
        frame = HostFrame(fn.__name__, call_site_file, caller.f_lineno)
        GLOBAL_HOST_STACK.push(frame)
        try:
            return fn(*args, **kwargs)
        finally:
            GLOBAL_HOST_STACK.pop()

    wrapper.__wrapped_host_function__ = True
    return wrapper
