"""Host-side ``malloc`` interposition.

The profiler's data-centric map needs, for every host data object, its
allocation call path and memory range (Section 3.2.2). Host buffers are
numpy arrays wrapped in :class:`HostBuffer`; :class:`HostAllocator`
hands them out with synthetic host addresses and records the shadow
stack at allocation time -- the equivalent of interposing the
``malloc`` family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryError_
from repro.host.shadow_stack import GLOBAL_HOST_STACK, HostFrame

#: Synthetic host addresses live far from device addresses for clarity.
HOST_BASE = 0x7F00_0000_0000


@dataclass
class HostBuffer:
    """A tracked host allocation."""

    name: str
    addr: int
    array: np.ndarray
    call_path: Tuple[HostFrame, ...]
    site: str  # "file: line" of the allocation call site

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HostBuffer {self.name} {self.addr:#x} ({self.nbytes}B)>"


class HostAllocator:
    """Tracks host allocations the way interposed malloc does."""

    def __init__(self):
        self._next = HOST_BASE
        self.buffers: List[HostBuffer] = []

    def malloc(
        self, shape, dtype, name: str = "", site: str = ""
    ) -> HostBuffer:
        """Allocate a host array, recording the allocation call path."""
        array = np.zeros(shape, dtype=dtype)
        addr = self._next
        self._next += (array.nbytes + 255) // 256 * 256
        buf = HostBuffer(
            name=name or f"host_{len(self.buffers)}",
            addr=addr,
            array=array,
            call_path=GLOBAL_HOST_STACK.snapshot(),
            site=site,
        )
        self.buffers.append(buf)
        return buf

    def wrap(self, array: np.ndarray, name: str = "", site: str = "") -> HostBuffer:
        """Adopt an existing array (the malloc happened elsewhere)."""
        addr = self._next
        self._next += (array.nbytes + 255) // 256 * 256
        buf = HostBuffer(
            name=name or f"host_{len(self.buffers)}",
            addr=addr,
            array=array,
            call_path=GLOBAL_HOST_STACK.snapshot(),
            site=site,
        )
        self.buffers.append(buf)
        return buf

    def find(self, addr: int) -> Optional[HostBuffer]:
        for buf in self.buffers:
            if buf.addr <= addr < buf.end:
                return buf
        return None
