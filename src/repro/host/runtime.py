"""The CUDA-runtime stand-in: allocation, transfer, launch.

Every API call records what the engine's mandatory instrumentation
records in the paper: the host shadow-stack snapshot and call site of
each ``cudaMalloc``, each ``cudaMemcpy`` (both memory ranges + byte
count) and each kernel launch. An attached profiler
(:class:`repro.profiler.session.ProfilingSession`) receives these events
and builds the data-centric maps of Figure 3.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device, DeviceModuleImage, DevicePointer, LaunchResult
from repro.host.allocator import HostAllocator, HostBuffer
from repro.host.shadow_stack import GLOBAL_HOST_STACK, HostFrame


class MemcpyKind(enum.Enum):
    HOST_TO_DEVICE = "HtoD"
    DEVICE_TO_HOST = "DtoH"
    DEVICE_TO_DEVICE = "DtoD"


@dataclass
class DeviceAllocationRecord:
    """cudaMalloc interposition record."""

    pointer: DevicePointer
    name: str
    call_path: Tuple[HostFrame, ...]
    site: str

    @property
    def base(self) -> int:
        return self.pointer.addr

    @property
    def end(self) -> int:
        return self.pointer.addr + self.pointer.nbytes


@dataclass
class MemcpyRecord:
    """cudaMemcpy interposition record (both ranges + size)."""

    kind: MemcpyKind
    host_addr: int
    device_addr: int
    nbytes: int
    call_path: Tuple[HostFrame, ...]
    site: str


def _call_site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}: {frame.f_lineno}"


class CudaRuntime:
    """Host-side runtime bound to one simulated device."""

    def __init__(self, device: Device, profiler=None):
        self.device = device
        self.profiler = profiler
        self.allocator = HostAllocator()
        self.device_allocations: List[DeviceAllocationRecord] = []
        self.memcpys: List[MemcpyRecord] = []
        if profiler is not None:
            profiler.attach_runtime(self)

    # -- host allocations -------------------------------------------------------
    def host_malloc(self, shape, dtype, name: str = "") -> HostBuffer:
        buf = self.allocator.malloc(shape, dtype, name, site=_call_site())
        if self.profiler is not None:
            self.profiler.on_host_malloc(buf)
        return buf

    def host_wrap(self, array: np.ndarray, name: str = "") -> HostBuffer:
        buf = self.allocator.wrap(array, name, site=_call_site())
        if self.profiler is not None:
            self.profiler.on_host_malloc(buf)
        return buf

    # -- device allocations ---------------------------------------------------------
    def cuda_malloc(self, nbytes: int, name: str = "") -> DevicePointer:
        pointer = self.device.malloc(nbytes, tag=name)
        record = DeviceAllocationRecord(
            pointer=pointer,
            name=name or f"dev_{len(self.device_allocations)}",
            call_path=GLOBAL_HOST_STACK.snapshot(),
            site=_call_site(),
        )
        self.device_allocations.append(record)
        if self.profiler is not None:
            self.profiler.on_cuda_malloc(record)
        return pointer

    def cuda_free(self, pointer: DevicePointer) -> None:
        self.device.free(pointer)

    # -- transfers -------------------------------------------------------------------
    def cuda_memcpy_htod(
        self, dst: DevicePointer, src: Union[HostBuffer, np.ndarray]
    ) -> None:
        if isinstance(src, HostBuffer):
            data, host_addr = src.array, src.addr
        else:
            data, host_addr = src, 0
        self.device.memcpy_htod(dst, data)
        self._record_memcpy(
            MemcpyKind.HOST_TO_DEVICE, host_addr, dst.addr, data.nbytes
        )

    def cuda_memcpy_dtoh(
        self, dst: Union[HostBuffer, np.ndarray], src: DevicePointer
    ) -> np.ndarray:
        if isinstance(dst, HostBuffer):
            array, host_addr = dst.array, dst.addr
        else:
            array, host_addr = dst, 0
        flat = array.reshape(-1)
        data = self.device.memcpy_dtoh(src, flat.dtype, flat.size)
        flat[:] = data
        self._record_memcpy(
            MemcpyKind.DEVICE_TO_HOST, host_addr, src.addr, array.nbytes
        )
        return array

    def _record_memcpy(
        self, kind: MemcpyKind, host_addr: int, device_addr: int, nbytes: int
    ) -> None:
        record = MemcpyRecord(
            kind=kind,
            host_addr=host_addr,
            device_addr=device_addr,
            nbytes=nbytes,
            call_path=GLOBAL_HOST_STACK.snapshot(),
            site=_call_site(3),
        )
        self.memcpys.append(record)
        if self.profiler is not None:
            self.profiler.on_memcpy(record)

    # -- launches ---------------------------------------------------------------------
    def launch_kernel(
        self,
        image: DeviceModuleImage,
        kernel: str,
        grid,
        block,
        args: Sequence[object],
        l1_warps_per_cta: Optional[int] = None,
    ) -> LaunchResult:
        hooks = None
        if self.profiler is not None:
            hooks = self.profiler.hook_runtime_for_launch(
                image, kernel, GLOBAL_HOST_STACK.snapshot(), _call_site()
            )
        return self.device.launch(
            image,
            kernel,
            grid,
            block,
            args,
            hooks=hooks,
            l1_warps_per_cta=l1_warps_per_cta,
        )

    # -- lookups used by the data-centric analyzer -----------------------------------
    def find_device_allocation(
        self, device_addr: int
    ) -> Optional[DeviceAllocationRecord]:
        for record in self.device_allocations:
            if record.base <= device_addr < record.end:
                return record
        return None

    def find_host_buffer(self, host_addr: int) -> Optional[HostBuffer]:
        return self.allocator.find(host_addr)
