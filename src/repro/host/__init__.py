"""Host-side (CPU) runtime.

The paper's engine instruments the *host* bitcode too: CPU function
calls/returns (shadow stack), ``malloc``-family allocations, and the
CUDA API (``cudaMalloc``, ``cudaMemcpy``, kernel launches). Here the
host program is Python, so the same coverage comes from:

* :func:`host_function` -- a decorator standing in for the mandatory
  CPU call/return instrumentation; it maintains the host shadow stack;
* :class:`HostAllocator` -- the ``malloc`` interposition (host buffers
  are numpy arrays tracked with their allocation call paths);
* :class:`CudaRuntime` -- ``cuda_malloc`` / ``cuda_memcpy`` /
  ``launch_kernel`` with full event reporting to an attached profiler.
"""

from repro.host.shadow_stack import HostFrame, HostShadowStack, host_function
from repro.host.allocator import HostAllocator, HostBuffer
from repro.host.runtime import CudaRuntime, MemcpyKind

__all__ = [
    "CudaRuntime",
    "HostAllocator",
    "HostBuffer",
    "HostFrame",
    "HostShadowStack",
    "MemcpyKind",
    "host_function",
]
