"""Arithmetic-operation instrumentation (the engine's third optional
category, Section 3.1-II of the paper).

Before every binary arithmetic instruction the pass inserts::

    call void @RecordArith(i8* <opcode-string>, i32 <bits>, i32 <is_float>,
                           i32 <line>, i32 <col>)

which is enough to build FLOP counters, mix histograms and per-source-
line arithmetic-intensity metrics in the analyzer.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.instructions import BinOp
from repro.ir.module import Function, Module
from repro.ir.types import AddressSpace, I8, I32, VOID, ptr
from repro.passes.manager import FunctionPass

ARITH_HOOK = "RecordArith"


def declare_arith_hook(module: Module) -> Function:
    return module.declare_function(
        ARITH_HOOK,
        VOID,
        [
            (ptr(I8, AddressSpace.CONSTANT), "opcode"),
            (I32, "bits"),
            (I32, "is_float"),
            (I32, "line"),
            (I32, "col"),
        ],
        kind="hook",
    )


class ArithInstrumentationPass(FunctionPass):
    name = "cudaadvisor-arith"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        hook = declare_arith_hook(module)
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinOp):
                    continue
                opcode_str = module.add_string(inst.opcode.value)
                builder = IRBuilder.before(inst)
                loc = inst.debug_loc
                builder.call(
                    hook,
                    [
                        opcode_str,
                        builder.i32(inst.type.size_bits()),
                        builder.i32(1 if inst.opcode.is_float_op else 0),
                        builder.i32(loc.line if loc else 0),
                        builder.i32(loc.col if loc else 0),
                    ],
                )
                changed = True
        return changed
