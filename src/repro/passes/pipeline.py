"""Canned pass pipelines.

``optimization_pipeline`` is the stand-in for Clang's -O pipeline, run
on freshly-compiled modules before anything else.
``instrumentation_pipeline`` assembles the CUDAAdvisor engine's passes
for a requested analysis mode, matching the artifact's RD_mode / MD_mode
/ BD_mode experiment directories:

* ``"memory"``  -- Record() on global loads/stores (+ atomics): feeds the
  reuse-distance (RD) and memory-divergence (MD) analyses;
* ``"blocks"``  -- passBasicBlock() on every block: feeds the branch-
  divergence (BD) analysis;
* ``"arith"``   -- RecordArith() on every binary operation;
* any combination, plus the always-on call-path instrumentation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import PassError
from repro.passes.manager import ModulePass, PassManager
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.constfold import ConstantFoldPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.simplifycfg import SimplifyCFGPass
from repro.passes.instrument_memory import MemoryInstrumentationPass
from repro.passes.instrument_blocks import BlockInstrumentationPass
from repro.passes.instrument_arith import ArithInstrumentationPass
from repro.passes.instrument_callret import CallPathInstrumentationPass

ANALYSIS_MODES = ("memory", "blocks", "arith")


def optimization_pipeline() -> PassManager:
    """mem2reg + constant folding + DCE + CFG cleanup (like -O1)."""
    return PassManager(
        [
            SimplifyCFGPass(),
            Mem2RegPass(),
            ConstantFoldPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
        ]
    )


def instrumentation_pipeline(modes: Sequence[str] = ("memory",)) -> PassManager:
    """The CUDAAdvisor engine for the requested analysis modes."""
    passes: List[ModulePass] = [CallPathInstrumentationPass()]  # mandatory
    for mode in modes:
        if mode == "memory":
            passes.append(MemoryInstrumentationPass())
        elif mode == "blocks":
            passes.append(BlockInstrumentationPass())
        elif mode == "arith":
            passes.append(ArithInstrumentationPass())
        else:
            raise PassError(
                f"unknown analysis mode {mode!r}; pick from {ANALYSIS_MODES}"
            )
    return PassManager(passes)
