"""Pass manager: ordered pass execution with optional verification.

Mirrors ``opt``: passes declare a ``name``, run over a module (or each
function), and the manager re-verifies the IR after each pass so a buggy
rewrite is caught at its source.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import PassError
from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module


class ModulePass:
    """Base class: transforms a whole module in place."""

    name = "module-pass"

    def run(self, module: Module) -> bool:
        """Returns True if the module was changed."""
        raise NotImplementedError


class FunctionPass(ModulePass):
    """Base class: transforms each function with a body."""

    name = "function-pass"

    #: which function kinds the pass applies to
    kinds = ("kernel", "device")

    def run(self, module: Module) -> bool:
        changed = False
        for fn in list(module.functions.values()):
            if fn.is_declaration or fn.kind not in self.kinds:
                continue
            changed = self.run_on_function(module, fn) or changed
        return changed

    def run_on_function(self, module: Module, fn: Function) -> bool:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of passes, verifying after each one."""

    def __init__(self, passes: Iterable[ModulePass], verify: bool = True):
        self.passes: List[ModulePass] = list(passes)
        self.verify = verify
        self.log: List[str] = []

    def run(self, module: Module) -> Module:
        for p in self.passes:
            try:
                changed = p.run(module)
            except Exception as exc:
                raise PassError(f"pass {p.name!r} failed: {exc}") from exc
            self.log.append(f"{p.name}: {'changed' if changed else 'no-op'}")
            if self.verify and changed:
                try:
                    verify_module(module)
                except Exception as exc:
                    raise PassError(
                        f"pass {p.name!r} produced invalid IR: {exc}"
                    ) from exc
        return module
