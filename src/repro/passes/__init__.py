"""IR transformation passes.

Two families:

* **CUDAAdvisor instrumentation engine** (the paper's Section 3.1):
  :class:`MemoryInstrumentationPass` (Listing 1),
  :class:`BlockInstrumentationPass` (Listings 3-4),
  :class:`ArithInstrumentationPass`,
  :class:`CallPathInstrumentationPass` (mandatory call/return shadow-stack
  hooks), and :class:`HorizontalBypassPass` (the Listing 5 PTX rewrite).

* **generic compiler passes** the toolchain runs before instrumentation,
  standing in for Clang's -O pipeline: :class:`Mem2RegPass`,
  :class:`ConstantFoldPass`, :class:`DeadCodeEliminationPass`,
  :class:`SimplifyCFGPass`.
"""

from repro.passes.manager import FunctionPass, ModulePass, PassManager
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.inline import InlineFunctionsPass
from repro.passes.constfold import ConstantFoldPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.simplifycfg import SimplifyCFGPass
from repro.passes.instrument_memory import MemoryInstrumentationPass, RECORD_HOOK
from repro.passes.instrument_blocks import BlockInstrumentationPass, BLOCK_HOOK
from repro.passes.instrument_arith import ArithInstrumentationPass, ARITH_HOOK
from repro.passes.instrument_callret import (
    CallPathInstrumentationPass,
    PUSH_HOOK,
    POP_HOOK,
)
from repro.passes.bypass import HorizontalBypassPass
from repro.passes.vertical_bypass import VerticalBypassPass, plan_vertical_bypass
from repro.passes.pipeline import optimization_pipeline, instrumentation_pipeline

__all__ = [
    "ARITH_HOOK",
    "ArithInstrumentationPass",
    "BLOCK_HOOK",
    "BlockInstrumentationPass",
    "CallPathInstrumentationPass",
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "FunctionPass",
    "HorizontalBypassPass",
    "InlineFunctionsPass",
    "Mem2RegPass",
    "MemoryInstrumentationPass",
    "ModulePass",
    "POP_HOOK",
    "PUSH_HOOK",
    "PassManager",
    "RECORD_HOOK",
    "SimplifyCFGPass",
    "VerticalBypassPass",
    "instrumentation_pipeline",
    "optimization_pipeline",
    "plan_vertical_bypass",
]
