"""Function inlining.

Inlines small ``device`` functions into their callers: the call block is
split at the call site, the callee's blocks are cloned with arguments
bound to the actuals, and every return branches to the continuation
(joining return values through a phi when needed).

Motivation from the paper: Section 5 attributes part of CUDAAdvisor's
overhead to "a function call to each instrumentation site" and plans "a
more efficient way to insert instructions rather than heavyweight
function calls" -- call overhead is real even in device code, and nw's
``maximum3`` in its inner wavefront loops is the showcase here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import PassError
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Value
from repro.passes.manager import FunctionPass


def _clone_instruction(inst: Instruction, remap) -> Instruction:
    """Clone one instruction with operands passed through ``remap``."""
    if isinstance(inst, Alloca):
        clone = Alloca(inst.element_type, inst.count, inst.name)
    elif isinstance(inst, Load):
        clone = Load(remap(inst.pointer), inst.name, inst.cache_op)
    elif isinstance(inst, Store):
        clone = Store(remap(inst.value), remap(inst.pointer), inst.cache_op)
    elif isinstance(inst, GetElementPtr):
        clone = GetElementPtr(remap(inst.base), remap(inst.index), inst.name)
    elif isinstance(inst, BinOp):
        clone = BinOp(inst.opcode, remap(inst.lhs), remap(inst.rhs), inst.name)
    elif isinstance(inst, ICmp):
        clone = ICmp(inst.pred, remap(inst.lhs), remap(inst.rhs), inst.name)
    elif isinstance(inst, FCmp):
        clone = FCmp(inst.pred, remap(inst.lhs), remap(inst.rhs), inst.name)
    elif isinstance(inst, Cast):
        clone = Cast(inst.kind, remap(inst.value), inst.type, inst.name)
    elif isinstance(inst, Select):
        clone = Select(
            remap(inst.cond), remap(inst.iftrue), remap(inst.iffalse),
            inst.name,
        )
    elif isinstance(inst, AtomicRMW):
        clone = AtomicRMW(
            inst.op, remap(inst.pointer), remap(inst.value), inst.name
        )
    elif isinstance(inst, Call):
        clone = Call(inst.callee, [remap(a) for a in inst.args], inst.name)
    else:  # terminators and phis are handled by the caller
        raise PassError(f"cannot clone {inst!r}")
    clone.debug_loc = inst.debug_loc
    return clone


def _function_size(fn: Function) -> int:
    return sum(len(b.instructions) for b in fn.blocks)


def _is_recursive(fn: Function) -> bool:
    return any(
        isinstance(i, Call) and i.callee is fn for i in fn.instructions()
    )


class InlineFunctionsPass(FunctionPass):
    """Inline device-function calls whose callee is small enough."""

    name = "inline"

    def __init__(self, max_callee_instructions: int = 48,
                 max_rounds: int = 4):
        self.max_callee_instructions = max_callee_instructions
        self.max_rounds = max_rounds

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        for _ in range(self.max_rounds):
            site = self._find_inlinable_call(fn)
            if site is None:
                break
            self._inline(fn, *site)
            changed = True
            # Keep going: inlining may expose further inlinable calls.
            continue
        return changed

    def _find_inlinable_call(self, fn: Function):
        for block in fn.blocks:
            for idx, inst in enumerate(block.instructions):
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee
                if callee.kind != "device" or callee.is_declaration:
                    continue
                if callee is fn or _is_recursive(callee):
                    continue
                if _function_size(callee) > self.max_callee_instructions:
                    continue
                return block, idx, inst
        return None

    # -- the transplant ------------------------------------------------------
    def _inline(self, caller: Function, block: BasicBlock, call_idx: int,
                call: Call) -> None:
        callee = call.callee

        # 1. Split the call block: `block` keeps everything before the
        # call; `continuation` receives everything after it.
        continuation = caller.insert_block_after(
            block, f"{callee.name}.exit"
        )
        tail = block.instructions[call_idx + 1:]
        block.instructions = block.instructions[:call_idx]
        for inst in tail:
            inst.parent = continuation
        continuation.instructions = tail

        # 2. Clone the callee body.
        value_map: Dict[int, Value] = {}
        for formal, actual in zip(callee.args, call.args):
            value_map[id(formal)] = actual

        def remap(v: Value) -> Value:
            return value_map.get(id(v), v)

        block_map: Dict[int, BasicBlock] = {}
        for src in callee.blocks:
            block_map[id(src)] = caller.insert_block_after(
                continuation, f"{callee.name}.{src.name}"
            )

        returns: List[Tuple[Optional[Value], BasicBlock]] = []
        pending_phis: List[Tuple[Phi, Phi]] = []  # (clone, original)
        for src in callee.blocks:
            dst = block_map[id(src)]
            for inst in src.instructions:
                if isinstance(inst, Ret):
                    value = remap(inst.value) if inst.value is not None else None
                    returns.append((value, dst))
                    br = Br(continuation)
                    br.debug_loc = inst.debug_loc
                    dst.append(br)
                elif isinstance(inst, Br):
                    br = Br(block_map[id(inst.target)])
                    br.debug_loc = inst.debug_loc
                    dst.append(br)
                elif isinstance(inst, CondBr):
                    cbr = CondBr(
                        remap(inst.cond),
                        block_map[id(inst.iftrue)],
                        block_map[id(inst.iffalse)],
                    )
                    cbr.debug_loc = inst.debug_loc
                    dst.append(cbr)
                elif isinstance(inst, Phi):
                    clone = Phi(inst.type, caller.unique_value_name(inst.name))
                    clone.debug_loc = inst.debug_loc
                    dst.append(clone)
                    value_map[id(inst)] = clone
                    pending_phis.append((clone, inst))
                else:
                    clone = _clone_instruction(inst, remap)
                    clone.name = caller.unique_value_name(clone.name)
                    dst.append(clone)
                    value_map[id(inst)] = clone
        # Phi arms may reference forward values: fill them last.
        for clone, original in pending_phis:
            for value, pred in original.incoming:
                clone.add_incoming(remap(value), block_map[id(pred)])

        # 3. Route control flow: caller block -> cloned entry.
        entry_clone = block_map[id(callee.entry)]
        enter = Br(entry_clone)
        enter.debug_loc = call.debug_loc
        block.append(enter)

        # 4. Join return values and replace uses of the call result.
        replacement: Optional[Value] = None
        if not call.type.is_void:
            if len(returns) == 1:
                replacement = returns[0][0]
            else:
                phi = Phi(call.type, caller.unique_value_name("retval"))
                phi.debug_loc = call.debug_loc
                for value, pred in returns:
                    phi.add_incoming(value, pred)
                continuation.insert_at_start(phi)
                replacement = phi
            for b in caller.blocks:
                for inst in b.instructions:
                    inst.replace_operand(call, replacement)
                    if isinstance(inst, Phi):
                        inst.incoming = [
                            (replacement if v is call else v, pb)
                            for v, pb in inst.incoming
                        ]

        # 5. The original block's terminator moved into `continuation`,
        # so its successors' phis must name `continuation` as the
        # predecessor instead of `block`.
        for succ in continuation.successors():
            for inst in succ.instructions:
                if isinstance(inst, Phi):
                    inst.incoming = [
                        (v, continuation if pb is block else pb)
                        for v, pb in inst.incoming
                    ]
