"""Mandatory call/return instrumentation (Section 3.1-I of the paper).

CUDAAdvisor always reconstructs call paths, so the engine mandatorily
instruments every call to a kernel/device function:

* before the call:  ``call void @cupr.push(i32 <callee-id>, i32 <line>,
  i32 <col>)`` -- push the call site onto the warp's shadow stack;
* after the call:   ``call void @cupr.pop()``.

Function IDs come from the module's function table (an "encoding map
from the number to function name and source code" kept in GPU memory in
the paper; here, on the module image). The kernel's own entry frame is
pushed by the profiler at launch.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.builder import IRBuilder
from repro.ir.instructions import Call
from repro.ir.module import Function, Module
from repro.ir.types import I32, VOID
from repro.passes.manager import FunctionPass

PUSH_HOOK = "cupr.push"
POP_HOOK = "cupr.pop"


def declare_callpath_hooks(module: Module):
    push = module.declare_function(
        PUSH_HOOK,
        VOID,
        [(I32, "callee_id"), (I32, "line"), (I32, "col")],
        kind="hook",
    )
    pop = module.declare_function(POP_HOOK, VOID, [], kind="hook")
    return push, pop


def assign_function_ids(module: Module) -> Dict[str, int]:
    """Stable function-id assignment; must match the module image's."""
    ids: Dict[str, int] = {}
    for fn in module.functions.values():
        if fn.kind in ("kernel", "device"):
            ids[fn.name] = len(ids)
    return ids


class CallPathInstrumentationPass(FunctionPass):
    name = "cudaadvisor-callpath"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        push, pop = declare_callpath_hooks(module)
        ids = assign_function_ids(module)
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Call):
                    continue
                if inst.callee.kind not in ("kernel", "device"):
                    continue
                callee_id = ids[inst.callee.name]
                loc = inst.debug_loc
                before = IRBuilder.before(inst)
                before.call(
                    push,
                    [
                        before.i32(callee_id),
                        before.i32(loc.line if loc else 0),
                        before.i32(loc.col if loc else 0),
                    ],
                )
                pop_call = Call(pop, [], "")
                pop_call.debug_loc = loc
                block.insert_after(inst, pop_call)
                changed = True
        return changed
