"""Constant folding: evaluate instructions whose operands are literals.

Folds binary arithmetic, comparisons, selects, casts and GEPs with
all-constant operands, then rewrites uses. Runs to a fixed point within
each function (one fold can expose another).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.ir.instructions import (
    BinOp,
    Cast,
    CastKind,
    CmpPred,
    FCmp,
    ICmp,
    Opcode,
    Phi,
    Select,
)
from repro.ir.module import Function, Module
from repro.ir.types import BOOL, FloatType, IntType
from repro.ir.values import Constant, Value
from repro.passes.manager import FunctionPass


def _fold_binop(inst: BinOp) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    if not (isinstance(a, Constant) and isinstance(b, Constant)):
        return None
    x, y = a.value, b.value
    op = inst.opcode
    try:
        if op == Opcode.ADD or op == Opcode.FADD:
            r = x + y
        elif op == Opcode.SUB or op == Opcode.FSUB:
            r = x - y
        elif op == Opcode.MUL or op == Opcode.FMUL:
            r = x * y
        elif op == Opcode.FDIV:
            r = x / y
        elif op == Opcode.SDIV:
            r = int(math.trunc(x / y)) if y else None
        elif op == Opcode.SREM:
            r = x - int(math.trunc(x / y)) * y if y else None
        elif op in (Opcode.UDIV, Opcode.UREM):
            if y == 0:
                r = None
            else:
                bits = inst.type.bits
                ux, uy = x % (1 << bits), y % (1 << bits)
                r = ux // uy if op == Opcode.UDIV else ux % uy
        elif op == Opcode.FREM:
            r = math.fmod(x, y) if y else None
        elif op == Opcode.AND:
            r = x & y
        elif op == Opcode.OR:
            r = x | y
        elif op == Opcode.XOR:
            r = x ^ y
        elif op == Opcode.SHL:
            r = x << (y % 64)
        elif op == Opcode.ASHR:
            r = x >> (y % 64)
        elif op == Opcode.LSHR:
            bits = inst.type.bits
            r = (x % (1 << bits)) >> (y % 64)
        elif op in (Opcode.SMIN, Opcode.FMIN):
            r = min(x, y)
        elif op in (Opcode.SMAX, Opcode.FMAX):
            r = max(x, y)
        else:
            return None
    except (ZeroDivisionError, OverflowError, ValueError):
        return None
    if r is None:
        return None
    return Constant(inst.type, r)


def _fold_cmp(inst) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    if not (isinstance(a, Constant) and isinstance(b, Constant)):
        return None
    x, y = a.value, b.value
    pred = inst.pred
    result = {
        CmpPred.EQ: x == y,
        CmpPred.NE: x != y,
        CmpPred.LT: x < y,
        CmpPred.LE: x <= y,
        CmpPred.GT: x > y,
        CmpPred.GE: x >= y,
    }[pred]
    return Constant(BOOL, result)


def _fold_cast(inst: Cast) -> Optional[Constant]:
    v = inst.value
    if not isinstance(v, Constant):
        return None
    kind = inst.kind
    if kind in (CastKind.ZEXT, CastKind.SEXT, CastKind.TRUNC):
        return Constant(inst.type, int(v.value))
    if kind in (CastKind.SITOFP, CastKind.FPEXT, CastKind.FPTRUNC):
        return Constant(inst.type, float(v.value))
    if kind == CastKind.FPTOSI:
        return Constant(inst.type, int(math.trunc(v.value)))
    return None


class ConstantFoldPass(FunctionPass):
    name = "constfold"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        # Removed instructions stay referenced: replacement keys are id()s
        # and id reuse after garbage collection would corrupt the map.
        keepalive = []
        while True:
            replacements: Dict[int, Constant] = {}
            for block in fn.blocks:
                for inst in list(block.instructions):
                    folded: Optional[Constant] = None
                    if isinstance(inst, BinOp):
                        folded = _fold_binop(inst)
                    elif isinstance(inst, (ICmp, FCmp)):
                        folded = _fold_cmp(inst)
                    elif isinstance(inst, Cast):
                        folded = _fold_cast(inst)
                    elif isinstance(inst, Select) and isinstance(
                        inst.cond, Constant
                    ):
                        folded = (
                            inst.iftrue if inst.cond.value else inst.iffalse
                        )
                        if not isinstance(folded, Constant):
                            folded = None
                    if folded is not None:
                        replacements[id(inst)] = folded
                        keepalive.append(inst)
                        block.remove(inst)
            if not replacements:
                return changed
            changed = True
            for block in fn.blocks:
                for inst in block.instructions:
                    for i, op in enumerate(inst.operands):
                        repl = replacements.get(id(op))
                        if repl is not None:
                            inst.operands[i] = repl
                    if isinstance(inst, Phi):
                        inst.incoming = [
                            (replacements.get(id(v), v), b)
                            for v, b in inst.incoming
                        ]
