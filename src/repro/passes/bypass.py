"""Horizontal cache bypassing (Listing 5 of the paper).

The paper rewrites each PTX global load into a warp-id-guarded pair::

    @p  ld.global.ca ...   ; warps below the threshold cache in L1
    @!p ld.global.cg ...   ; the rest bypass L1

At IR level we express exactly that with the ``dyn`` cache operator:
loads/stores marked ``dyn`` resolve to ``.ca`` or ``.cg`` per warp at
run time against the launch's ``l1_warps_per_cta`` threshold. The same
module therefore serves every threshold, which is how the oracle search
and the Eq.(1) prediction are evaluated on equal footing.
"""

from __future__ import annotations

from repro.ir.instructions import CacheOp, Load, Store
from repro.ir.module import Function, Module
from repro.ir.types import AddressSpace, PointerType
from repro.passes.manager import FunctionPass


class HorizontalBypassPass(FunctionPass):
    """Mark every global load/store with the dynamic cache operator."""

    name = "horizontal-bypass"

    def __init__(self, loads: bool = True, stores: bool = True):
        self.loads = loads
        self.stores = stores

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, Load) and self.loads:
                    pointer = inst.pointer
                elif isinstance(inst, Store) and self.stores:
                    pointer = inst.pointer
                else:
                    continue
                ptype = pointer.type
                if (
                    isinstance(ptype, PointerType)
                    and ptype.addrspace == AddressSpace.GLOBAL
                    and inst.cache_op == CacheOp.CACHE_ALL
                ):
                    inst.cache_op = CacheOp.DYNAMIC
                    changed = True
        return changed
