"""Vertical cache bypassing (Xie et al. [55], Section 4.2-D's
comparison point).

Where *horizontal* bypassing restricts which **warps** may use L1,
*vertical* bypassing restricts which **static load/store instructions**
may: selected sites are rewritten to the ``.cg`` cache operator (bypass
L1 for every warp). The paper characterizes it as "more fine-grained
but requires architectural and runtime information to evaluate every
individual load" -- exactly what CUDAAdvisor's per-site reuse analysis
(:func:`repro.analysis.reuse_distance.site_reuse_analysis`) provides;
:func:`plan_vertical_bypass` turns that analysis into the site list.
"""

from __future__ import annotations

from typing import Collection, Dict, Set, Tuple

from repro.ir.instructions import CacheOp, Load, Store
from repro.ir.module import Function, Module
from repro.ir.types import AddressSpace, PointerType
from repro.passes.manager import FunctionPass

Site = Tuple[int, int]  # (line, col) from debug info


class VerticalBypassPass(FunctionPass):
    """Rewrite the selected source sites to bypass L1 (``.cg``)."""

    name = "vertical-bypass"

    def __init__(self, sites: Collection[Site]):
        self.sites: Set[Site] = set(sites)

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in block.instructions:
                if not isinstance(inst, (Load, Store)):
                    continue
                ptype = inst.pointer.type
                if not (
                    isinstance(ptype, PointerType)
                    and ptype.addrspace == AddressSpace.GLOBAL
                ):
                    continue
                loc = inst.debug_loc
                if loc is None or (loc.line, loc.col) not in self.sites:
                    continue
                if inst.cache_op == CacheOp.CACHE_ALL:
                    inst.cache_op = CacheOp.CACHE_GLOBAL
                    changed = True
        return changed


def plan_vertical_bypass(
    site_histograms: Dict[Site, "object"],
    no_reuse_threshold: float = 0.7,
    min_samples: int = 8,
    capacity_lines: int = None,
) -> Set[Site]:
    """Pick the sites whose accesses L1 cannot serve anyway.

    ``site_histograms`` comes from
    :func:`repro.analysis.reuse_distance.site_reuse_analysis`. A site
    bypasses when at least ``no_reuse_threshold`` of its (sufficiently
    many) samples are uncacheable: never reused at all, or -- when
    ``capacity_lines`` is given -- reused only at distances beyond that
    capacity (the stack-distance criterion: such reads miss regardless,
    so caching them merely pollutes L1).
    """
    plan: Set[Site] = set()
    for site, hist in site_histograms.items():
        if hist.samples < min_samples:
            continue
        if capacity_lines is not None:
            uncacheable = hist.fraction_beyond(capacity_lines)
        else:
            uncacheable = hist.no_reuse_fraction
        if uncacheable >= no_reuse_threshold:
            plan.add(site)
    return plan
