"""CFG simplification.

Three standard cleanups, iterated to a fixed point:

1. fold conditional branches whose condition is a literal;
2. delete unreachable blocks (patching phi arms);
3. merge a block into its unique predecessor when that predecessor ends
   in an unconditional branch to it and it has no other predecessors
   (and no phis).
"""

from __future__ import annotations

from typing import Set

from repro.ir.cfg import predecessor_map, reachable_blocks
from repro.ir.instructions import Br, CondBr, Phi
from repro.ir.module import Function, Module
from repro.ir.values import Constant
from repro.passes.manager import FunctionPass


class SimplifyCFGPass(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        while True:
            step_changed = (
                self._fold_constant_branches(fn)
                or self._remove_unreachable(fn)
                or self._merge_blocks(fn)
            )
            if not step_changed:
                return changed
            changed = True

    def _fold_constant_branches(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, CondBr) and isinstance(term.cond, Constant):
                target = term.iftrue if term.cond.value else term.iffalse
                dead = term.iffalse if term.cond.value else term.iftrue
                block.remove(term)
                new_term = Br(target)
                new_term.debug_loc = term.debug_loc
                block.append(new_term)
                if dead is not target:
                    self._remove_phi_arms(dead, block)
                changed = True
        return changed

    def _remove_unreachable(self, fn: Function) -> bool:
        reachable = reachable_blocks(fn)
        dead = [b for b in fn.blocks if b not in reachable]
        if not dead:
            return False
        dead_set = {id(b) for b in dead}
        for block in fn.blocks:
            if id(block) in dead_set:
                continue
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    inst.incoming = [
                        (v, b) for v, b in inst.incoming if id(b) not in dead_set
                    ]
                    inst.operands = [v for v, _ in inst.incoming]
        fn.blocks = [b for b in fn.blocks if id(b) not in dead_set]
        return True

    def _merge_blocks(self, fn: Function) -> bool:
        preds = predecessor_map(fn)
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ = term.target
            if succ is block or succ is fn.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            if any(isinstance(i, Phi) for i in succ.instructions):
                continue
            # Merge succ into block.
            block.remove(term)
            for inst in list(succ.instructions):
                succ.remove(inst)
                inst.parent = block
                block.instructions.append(inst)
            # Phi arms elsewhere referring to succ now come from block.
            for other in fn.blocks:
                for inst in other.instructions:
                    if isinstance(inst, Phi):
                        inst.incoming = [
                            (v, block if b is succ else b)
                            for v, b in inst.incoming
                        ]
            fn.blocks.remove(succ)
            return True
        return False

    @staticmethod
    def _remove_phi_arms(target, pred) -> None:
        for inst in target.instructions:
            if isinstance(inst, Phi):
                inst.incoming = [
                    (v, b) for v, b in inst.incoming if b is not pred
                ]
                inst.operands = [v for v, _ in inst.incoming]
