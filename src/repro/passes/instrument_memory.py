"""Memory-access instrumentation (Listing 1 of the paper).

For every global-memory load/store (and optionally atomic) the pass
inserts, immediately before the access::

    %raw = bitcast <ty>* %ptr to i8*
    call void @Record(i8* %raw, i32 <bits>, i32 <line>, i32 <col>, i32 <op>)

exactly mirroring the paper's instrumented bitcode (Listing 2). The
``Record`` analysis function is a *hook*: at run time the launch's
HookRuntime receives the per-lane effective addresses, access width and
source location, packs them with CTA/thread IDs into trace entries, and
appends them to the device trace buffer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.instructions import AtomicRMW, Instruction, Load, Store
from repro.ir.module import Function, Module
from repro.ir.types import AddressSpace, PointerType, I8, I32, VOID, ptr
from repro.ir.values import Constant
from repro.passes.manager import FunctionPass

RECORD_HOOK = "Record"

#: operation codes passed as Record's last argument
OP_LOAD = 1
OP_STORE = 2
OP_ATOMIC = 3


def declare_record_hook(module: Module) -> Function:
    return module.declare_function(
        RECORD_HOOK,
        VOID,
        [
            (ptr(I8, AddressSpace.GLOBAL), "addr"),
            (I32, "bits"),
            (I32, "line"),
            (I32, "col"),
            (I32, "op"),
        ],
        kind="hook",
    )


class MemoryInstrumentationPass(FunctionPass):
    """Instrument global loads/stores (optionally shared and atomics)."""

    name = "cudaadvisor-memory"

    def __init__(
        self,
        instrument_loads: bool = True,
        instrument_stores: bool = True,
        instrument_atomics: bool = True,
        address_spaces: Tuple[AddressSpace, ...] = (AddressSpace.GLOBAL,),
    ):
        self.instrument_loads = instrument_loads
        self.instrument_stores = instrument_stores
        self.instrument_atomics = instrument_atomics
        self.address_spaces = address_spaces

    def run_on_function(self, module: Module, fn: Function) -> bool:
        hook = declare_record_hook(module)
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                info = self._classify(inst)
                if info is None:
                    continue
                pointer, bits, opcode = info
                builder = IRBuilder.before(inst)
                loc = inst.debug_loc
                raw = pointer
                if pointer.type != ptr(I8, AddressSpace.GLOBAL):
                    raw = builder.bitcast(pointer, ptr(I8, AddressSpace.GLOBAL))
                builder.call(
                    hook,
                    [
                        raw,
                        builder.i32(bits),
                        builder.i32(loc.line if loc else 0),
                        builder.i32(loc.col if loc else 0),
                        builder.i32(opcode),
                    ],
                )
                changed = True
        return changed

    def _classify(self, inst: Instruction) -> Optional[Tuple]:
        if isinstance(inst, Load) and self.instrument_loads:
            pointer, opcode = inst.pointer, OP_LOAD
        elif isinstance(inst, Store) and self.instrument_stores:
            pointer, opcode = inst.pointer, OP_STORE
        elif isinstance(inst, AtomicRMW) and self.instrument_atomics:
            pointer, opcode = inst.pointer, OP_ATOMIC
        else:
            return None
        ptype = pointer.type
        if not isinstance(ptype, PointerType):
            return None
        if ptype.addrspace not in self.address_spaces:
            return None
        bits = ptype.pointee.size_bits()
        return pointer, bits, opcode
