"""Basic-block (control-flow) instrumentation (Listings 3-4 of the paper).

At the entry of every basic block the pass inserts::

    call void @passBasicBlock(i8* <name-string>, i32 <line>, i32 <col>)

where the first argument points at a global constant string holding the
block's name (qualified with the function name, so the analyzer can tell
``bfs_kernel:if.then`` from ``nw_kernel:if.then``), exactly like the
``@5 = private unnamed_addr constant ... c"entry\\00"`` string Listing 4
creates. The hook receives the warp's active mask, from which the
branch-divergence analyzer computes Table 3.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.instructions import Phi
from repro.ir.module import Function, Module
from repro.ir.types import AddressSpace, I8, I32, VOID, ptr
from repro.passes.manager import FunctionPass

BLOCK_HOOK = "passBasicBlock"


def declare_block_hook(module: Module) -> Function:
    return module.declare_function(
        BLOCK_HOOK,
        VOID,
        [
            (ptr(I8, AddressSpace.CONSTANT), "bb_name"),
            (I32, "line"),
            (I32, "col"),
        ],
        kind="hook",
    )


class BlockInstrumentationPass(FunctionPass):
    name = "cudaadvisor-blocks"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        hook = declare_block_hook(module)
        for block in fn.blocks:
            name = module.add_string(f"{fn.name}:{block.name}")
            # Insert after any phis (phis must stay at the block head).
            anchor = None
            for inst in block.instructions:
                if not isinstance(inst, Phi):
                    anchor = inst
                    break
            builder = IRBuilder.before(anchor)
            loc = anchor.debug_loc
            builder.call(
                hook,
                [
                    name,
                    builder.i32(loc.line if loc else 0),
                    builder.i32(loc.col if loc else 0),
                ],
            )
        return bool(fn.blocks)
