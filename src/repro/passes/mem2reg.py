"""Promote scalar stack slots to SSA registers (LLVM's ``mem2reg``).

The frontend compiles like Clang at -O0: every local variable is an
``alloca`` plus loads/stores. This pass promotes every non-escaping
single-element alloca to SSA form with phi nodes, using iterated
dominance frontiers (Cytron et al. via Cooper-Harvey-Kennedy DF).

Besides being the standard first optimization, this matters to the
reproduction: local-memory traffic disappears from the executed kernel,
leaving exactly the *global* accesses the CUDAAdvisor memory pass
instruments -- the same effect real ``-O1`` compilation has on the
paper's measurements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import immediate_dominators, predecessor_map, reachable_blocks
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, Value
from repro.ir.types import FloatType, IntType
from repro.passes.manager import FunctionPass


def _promotable_allocas(fn: Function) -> List[Alloca]:
    """Single-element allocas used only as load/store pointer operands."""
    allocas: List[Alloca] = []
    disqualified: Set[int] = set()
    for inst in fn.instructions():
        if isinstance(inst, Alloca) and inst.count == 1:
            allocas.append(inst)
    candidate_ids = {id(a) for a in allocas}
    for inst in fn.instructions():
        if isinstance(inst, Load):
            continue  # pointer operand use is fine
        if isinstance(inst, Store):
            # Fine as the *pointer*; storing the address itself escapes.
            if id(inst.value) in candidate_ids:
                disqualified.add(id(inst.value))
            continue
        for op in inst.operands:
            if id(op) in candidate_ids:
                disqualified.add(id(op))
    return [a for a in allocas if id(a) not in disqualified]


def _dominance_frontiers(
    fn: Function,
) -> Dict[BasicBlock, Set[BasicBlock]]:
    idom = immediate_dominators(fn)
    preds = predecessor_map(fn)
    df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in fn.blocks}
    for block in fn.blocks:
        if len(preds[block]) < 2:
            continue
        for pred in preds[block]:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom.get(block):
                df.setdefault(runner, set()).add(block)
                runner = idom.get(runner)
    return df


def _default_value(alloca: Alloca) -> Constant:
    t = alloca.element_type
    if isinstance(t, FloatType):
        return Constant(t, 0.0)
    return Constant(t, 0)


class Mem2RegPass(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        allocas = _promotable_allocas(fn)
        if not allocas:
            return False

        reachable = reachable_blocks(fn)
        df = _dominance_frontiers(fn)
        idom = immediate_dominators(fn)

        # Children map of the dominator tree for the renaming walk.
        children: Dict[Optional[BasicBlock], List[BasicBlock]] = {}
        for block in fn.blocks:
            if block not in reachable:
                continue
            children.setdefault(idom.get(block), []).append(block)

        alloca_ids = {id(a): a for a in allocas}
        # Phase 1: insert phis at iterated dominance frontiers of stores.
        phis: Dict[Tuple[int, int], Phi] = {}  # (alloca, block) -> phi
        for alloca in allocas:
            def_blocks = {
                inst.parent
                for inst in fn.instructions()
                if isinstance(inst, Store) and id(inst.pointer) == id(alloca)
            }
            work = [b for b in def_blocks if b in reachable]
            placed: Set[int] = set()
            while work:
                block = work.pop()
                for frontier in df.get(block, ()):
                    if id(frontier) in placed or frontier not in reachable:
                        continue
                    placed.add(id(frontier))
                    phi = Phi(alloca.element_type,
                              fn.unique_value_name(alloca.name or "var"))
                    phi.parent = frontier
                    frontier.instructions.insert(0, phi)
                    phis[(id(alloca), id(frontier))] = phi
                    if frontier not in def_blocks:
                        work.append(frontier)

        # Phase 2: rename along the dominator tree.
        preds = predecessor_map(fn)
        replacements: Dict[int, Value] = {}  # load id -> value
        # Keep removed instructions alive: ``replacements`` keys are id()s,
        # and a garbage-collected instruction's id could be reused by a
        # fresh object, corrupting the map.
        removed_keepalive: List[object] = []

        def rename(block: BasicBlock, incoming: Dict[int, Value]) -> None:
            current = dict(incoming)
            for inst in list(block.instructions):
                if isinstance(inst, Phi):
                    for key, phi in phis.items():
                        if phi is inst:
                            current[key[0]] = phi
                    continue
                if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                    aid = id(inst.pointer)
                    value = current.get(aid)
                    if value is None:
                        value = _default_value(alloca_ids[aid])
                    replacements[id(inst)] = value
                    removed_keepalive.append(inst)
                    block.remove(inst)
                elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                    current[id(inst.pointer)] = replacements.get(
                        id(inst.value), inst.value
                    )
                    removed_keepalive.append(inst)
                    block.remove(inst)
                else:
                    for i, op in enumerate(inst.operands):
                        repl = replacements.get(id(op))
                        if repl is not None:
                            inst.operands[i] = repl
            # Fill phi arms of successors.
            for succ in block.successors():
                for alloca in allocas:
                    phi = phis.get((id(alloca), id(succ)))
                    if phi is not None:
                        value = current.get(id(alloca))
                        if value is None:
                            value = _default_value(alloca)
                        value = replacements.get(id(value), value)
                        phi.add_incoming(value, block)
            for child in children.get(block, []):
                rename(child, current)

        # The dominator-tree walk guarantees defs are seen before uses;
        # start from the entry with no values defined.
        rename_stack_entry = fn.entry
        rename(rename_stack_entry, {})

        # Phase 3: drop the allocas and fix any remaining operand refs.
        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, Alloca) and id(inst) in alloca_ids:
                    block.remove(inst)
                else:
                    for i, op in enumerate(inst.operands):
                        repl = replacements.get(id(op))
                        if repl is not None:
                            inst.operands[i] = repl
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    inst.incoming = [
                        (replacements.get(id(v), v), b) for v, b in inst.incoming
                    ]
                    inst.operands = [v for v, _ in inst.incoming]
        return True
