"""Dead-code elimination.

Removes side-effect-free instructions whose results are never used,
iterating to a fixed point (removing one use can kill its operands).
Stores, calls, atomics and terminators are never removed; loads are
(they are non-volatile, and the pass runs *before* instrumentation so
profiling never observes an access the optimized program would not
perform).
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Select,
)
from repro.ir.module import Function, Module
from repro.passes.manager import FunctionPass

_PURE = (BinOp, Cast, FCmp, GetElementPtr, ICmp, Load, Phi, Select)


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run_on_function(self, module: Module, fn: Function) -> bool:
        changed = False
        while True:
            used: Set[int] = set()
            for inst in fn.instructions():
                for op in inst.operands:
                    used.add(id(op))
            removed = 0
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, _PURE) and id(inst) not in used:
                        block.remove(inst)
                        removed += 1
                    elif (
                        isinstance(inst, Alloca)
                        and id(inst) not in used
                    ):
                        block.remove(inst)
                        removed += 1
            if not removed:
                return changed
            changed = True
