"""The device-resident trace buffers.

"CUDAAdvisor stores this trace in a buffer located in GPU's global
memory" (Section 4.2-A); at kernel exit the buffer is copied to the
host. Two implementations model that:

* :class:`DeviceTraceBuffer` -- the original row-oriented buffer of
  record objects (kept for tooling and tests that build traces by
  hand).
* The **columnar** buffers (:class:`ColumnarMemoryBuffer`,
  :class:`ColumnarBlockBuffer`, :class:`ColumnarArithBuffer`) -- the
  fast path the hook runtime uses. Events append into preallocated
  structure-of-arrays numpy columns (chunked doubling growth, same
  capacity/drop semantics), so an instrumented event costs a handful of
  scalar stores instead of a dataclass plus two array allocations.
  ``drain()`` hands back a :class:`MemoryColumns` /
  :class:`BlockColumns` / :class:`ArithColumns` view that the analyzers
  consume vectorized; each view still behaves as a sequence of the
  classic record dataclasses (materialized lazily per index) for
  compatibility.

Columnar buffers are **spill-safe**: with a
:class:`~repro.reliability.spill.SpillConfig` attached, a buffer that
reaches ``segment_rows`` in-memory rows writes the segment to disk
(checksummed; see :mod:`repro.reliability.spill`) and keeps appending;
``drain()`` reads the segments back in order and concatenates them with
the in-memory tail, so the drained stream is byte-identical to an
all-in-memory run. ``capacity`` counts *total* retained rows (memory +
disk); ``spilled`` / ``corrupt_dropped`` expose the accounting that
``analysis/report.py`` surfaces.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

import numpy as np

from repro.errors import TraceCorruptionError
from repro.profiler.records import (
    ArithRecord,
    BlockRecord,
    MemoryAccessRecord,
    MemoryOp,
)
from repro.reliability.spill import (
    SpillConfig,
    discard_segment,
    read_segment,
    write_segment,
)

T = TypeVar("T")


class DeviceTraceBuffer(Generic[T]):
    """Bounded append-only event buffer."""

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._entries: List[T] = []
        self.dropped = 0
        self.total_appended = 0

    def append(self, entry: T) -> bool:
        """Append; returns False (and counts a drop) when full."""
        self.total_appended += 1
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.dropped += 1
            return False
        self._entries.append(entry)
        return True

    def drain(self) -> List[T]:
        """The device-to-host copy at kernel exit; empties the buffer."""
        entries = self._entries
        self._entries = []
        return entries

    def __len__(self) -> int:
        return len(self._entries)


#: Initial allocation (rows) of a columnar buffer; doubles as it fills.
_INITIAL_ROWS = 1024


class _ColumnarBase:
    """Shared capacity/drop bookkeeping, chunked growth, disk spill."""

    #: spill-segment file prefix; overridden per concrete buffer.
    _KIND = "columnar"

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[SpillConfig] = None):
        self.capacity = capacity
        self.spill = spill
        self.dropped = 0
        self.total_appended = 0
        #: rows written to disk segments over this buffer's lifetime.
        self.spilled = 0
        #: rows lost to corrupted spill segments (on_corrupt="drop").
        self.corrupt_dropped = 0
        #: fused in-flight analysis: ``sink(buffer)`` fires whenever the
        #: in-memory rows reach ``sink_rows`` (instead of spilling);
        #: see :class:`repro.profiler.streamdrain.FusedSink`.
        self.sink = None
        self.sink_rows = 0
        self._n = 0
        self._alloc = 0
        self._spilled_rows = 0  # rows currently on disk (pre-drain)
        self._segments: List[str] = []
        self._segment_index = 0

    def __len__(self) -> int:
        return self._n + self._spilled_rows

    def _next_alloc(self) -> int:
        new = self._alloc * 2 if self._alloc else _INITIAL_ROWS
        if self.capacity is not None:
            new = min(new, self.capacity)
        return max(new, self._n + 1)

    def _admit(self) -> bool:
        """Count the append; False (and a drop) when the buffer is full."""
        self.total_appended += 1
        if self.capacity is not None and len(self) >= self.capacity:
            self.dropped += 1
            return False
        return True

    def _admit_bulk(self, n: int) -> int:
        """Bulk version of :meth:`_admit`; returns rows admitted."""
        self.total_appended += n
        admit = n
        if self.capacity is not None:
            admit = max(0, min(n, self.capacity - len(self)))
        self.dropped += n - admit
        return admit

    # -- disk spill ---------------------------------------------------------
    def _spill_payload(self):
        """The in-memory rows as a pickleable payload (per buffer kind)."""
        raise NotImplementedError

    def _reset_memory(self) -> None:
        """Clear the in-memory segment after a spill (per buffer kind)."""
        raise NotImplementedError

    def _maybe_spill(self) -> None:
        if (
            self.spill is not None
            and self._n >= self.spill.segment_rows
        ):
            self._spill_segment()
        elif self.sink is not None and self._n >= self.sink_rows:
            self.sink(self)

    def detach_rows(self):
        """Hand the buffered rows over as a zero-copy column view.

        The fused sink's segment hand-off: returns ``None`` when empty,
        otherwise a view over the live column prefixes. The buffer
        forgets the arrays (the next append allocates fresh ones), so
        the view is never mutated after detach.
        """
        if self._cols is None or not self._n:
            return None
        view = self._view(self._spill_payload())
        self._reset_memory()
        self._n = 0
        self._alloc = 0
        return view

    def _spill_segment(self) -> None:
        rows = self._n
        if not rows:
            return
        path = write_segment(
            self.spill, self._KIND, self._segment_index,
            self._spill_payload(), rows,
        )
        self._segment_index += 1
        self._segments.append(path)
        self._spilled_rows += rows
        self.spilled += rows
        self._reset_memory()
        self._n = 0
        self._alloc = 0

    def _stream_read_segments(self):
        """Yield spilled payloads in write order, one segment at a time.

        Each segment file is **deleted as soon as it is read** (or
        found corrupt), so disk usage shrinks as the drain progresses
        instead of doubling as RAM fills. ``on_corrupt="raise"``
        propagates :class:`~repro.errors.TraceCorruptionError`;
        ``"drop"`` counts the segment's rows (known from the clear-text
        header) as dropped -- per segment, as it streams -- and skips
        it. Abandoning the generator discards the remaining files.
        """
        segments, self._segments = self._segments, []
        try:
            while segments:
                path = segments.pop(0)
                try:
                    payload = read_segment(path)
                except TraceCorruptionError as exc:
                    if self.spill is None or self.spill.on_corrupt == "raise":
                        raise
                    self.corrupt_dropped += exc.rows
                    self.dropped += exc.rows
                    continue
                finally:
                    discard_segment(path)
                yield payload
        finally:
            for path in segments:
                discard_segment(path)
            self._spilled_rows = 0

    def _read_segments(self) -> List[object]:
        """All spilled payloads in write order (the in-RAM drain)."""
        return list(self._stream_read_segments())

    # -- streaming drain ----------------------------------------------------
    def _view(self, payload):
        """Wrap one segment payload as a column view (per buffer kind)."""
        raise NotImplementedError

    def stream_segments(self):
        """Yield drained column views one spill segment at a time.

        The streaming counterpart of ``drain()``: disk segments first
        (each file deleted as soon as it is consumed), then the
        in-memory tail; the buffer is empty afterwards. Concatenating
        the yielded views reproduces ``drain()`` byte-identically.
        """
        for payload in self._stream_read_segments():
            yield self._view(payload)
        n = self._n
        tail = self._spill_payload() if self._cols is not None and n else None
        self._reset_memory()
        self._n = 0
        self._alloc = 0
        if tail is not None:
            yield self._view(tail)

    def export_stream_state(self) -> dict:
        """Detach the spill-segment paths and in-memory tail (pickleable).

        Used by streaming shard workers: instead of draining the trace
        into RAM to ship it, the worker hands over its segment *files*
        plus the tail columns, and the parent streams them through its
        analyzer bank. The buffer is empty afterwards; the consumer
        owns (and deletes) the segment files.
        """
        paths, self._segments = self._segments, []
        tail = None
        if self._cols is not None and self._n:
            tail = self._view(self._spill_payload())
        self._reset_memory()
        self._n = 0
        self._alloc = 0
        self._spilled_rows = 0
        return {"paths": paths, "tail": tail}


class MemoryColumns:
    """Drained memory-trace columns; a lazy sequence of
    :class:`MemoryAccessRecord` for row-oriented consumers."""

    __slots__ = ("seq", "cta", "warp_in_cta", "bits", "line", "col", "op",
                 "call_path_id", "addresses", "mask")

    def __init__(self, seq, cta, warp_in_cta, bits, line, col, op,
                 call_path_id, addresses, mask):
        self.seq = seq
        self.cta = cta
        self.warp_in_cta = warp_in_cta
        self.bits = bits
        self.line = line
        self.col = col
        self.op = op
        self.call_path_id = call_path_id
        self.addresses = addresses  # (n, warp_size) int64
        self.mask = mask  # (n, warp_size) bool

    def __len__(self) -> int:
        return len(self.seq)

    def record(self, i: int) -> MemoryAccessRecord:
        return MemoryAccessRecord(
            seq=int(self.seq[i]),
            cta=int(self.cta[i]),
            warp_in_cta=int(self.warp_in_cta[i]),
            addresses=self.addresses[i],
            mask=self.mask[i],
            bits=int(self.bits[i]),
            line=int(self.line[i]),
            col=int(self.col[i]),
            op=MemoryOp(int(self.op[i])),
            call_path_id=int(self.call_path_id[i]),
        )

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self.record(j) for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self.record(i)

    def __iter__(self):
        return (self.record(i) for i in range(len(self)))

    def take(self, rows) -> "MemoryColumns":
        """Row-subset view (numpy index/mask); seqs keep their values."""
        return MemoryColumns(
            self.seq[rows], self.cta[rows], self.warp_in_cta[rows],
            self.bits[rows], self.line[rows], self.col[rows], self.op[rows],
            self.call_path_id[rows], self.addresses[rows], self.mask[rows],
        )


class ColumnarMemoryBuffer(_ColumnarBase):
    """SoA append buffer for instrumented memory accesses."""

    _KIND = "memory"

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[SpillConfig] = None):
        super().__init__(capacity, spill)
        self._cols: Optional[tuple] = None
        self._warp_size = 0

    def _spill_payload(self):
        return tuple(col[: self._n] for col in self._cols)

    def _reset_memory(self) -> None:
        self._cols = None

    def _view(self, payload) -> MemoryColumns:
        return MemoryColumns(*payload)

    def _grow(self, warp_size: int) -> None:
        new = self._next_alloc()
        if self._cols is None:
            self._warp_size = warp_size
            self._cols = (
                np.zeros(new, np.int64),  # seq
                np.zeros(new, np.int32),  # cta
                np.zeros(new, np.int32),  # warp_in_cta
                np.zeros(new, np.int32),  # bits
                np.zeros(new, np.int32),  # line
                np.zeros(new, np.int32),  # col
                np.zeros(new, np.int8),  # op
                np.zeros(new, np.int64),  # call_path_id
                np.zeros((new, warp_size), np.int64),  # addresses
                np.zeros((new, warp_size), bool),  # mask
            )
        else:
            grown = []
            for col in self._cols:
                shape = (new,) + col.shape[1:]
                g = np.zeros(shape, col.dtype)
                g[: self._n] = col[: self._n]
                grown.append(g)
            self._cols = tuple(grown)
        self._alloc = new

    def append(self, seq, cta, warp_in_cta, addrs, mask, bits, line, col,
               op, call_path_id) -> bool:
        if not self._admit():
            return False
        n = self._n
        if n >= self._alloc:
            self._grow(len(addrs))
        c = self._cols
        c[0][n] = seq
        c[1][n] = cta
        c[2][n] = warp_in_cta
        c[3][n] = bits
        c[4][n] = line
        c[5][n] = col
        c[6][n] = op
        c[7][n] = call_path_id
        c[8][n] = addrs
        c[9][n] = mask
        self._n = n + 1
        self._maybe_spill()
        return True

    def extend(self, cols: MemoryColumns) -> int:
        """Bulk-append drained columns (parallel-shard merge)."""
        admit = self._admit_bulk(len(cols))
        if not admit:
            return 0
        if self._cols is None:
            self._warp_size = cols.addresses.shape[1]
        while self._alloc < self._n + admit:
            self._grow(self._warp_size)
        lo, hi = self._n, self._n + admit
        data = (cols.seq, cols.cta, cols.warp_in_cta, cols.bits, cols.line,
                cols.col, cols.op, cols.call_path_id, cols.addresses,
                cols.mask)
        for dst, src in zip(self._cols, data):
            dst[lo:hi] = src[:admit]
        self._n = hi
        self._maybe_spill()
        return admit

    def drain(self) -> MemoryColumns:
        parts = [tuple(p) for p in self._read_segments()]
        n = self._n
        if self._cols is not None and n:
            parts.append(tuple(col[:n] for col in self._cols))
        if not parts:
            empty = MemoryColumns(
                *(np.zeros(0, d) for d in (np.int64, np.int32, np.int32,
                                           np.int32, np.int32, np.int32,
                                           np.int8, np.int64)),
                np.zeros((0, self._warp_size or 1), np.int64),
                np.zeros((0, self._warp_size or 1), bool),
            )
            self._cols = None
            self._n = 0
            self._alloc = 0
            return empty
        if len(parts) == 1:
            fields = parts[0]
        else:
            fields = tuple(
                np.concatenate([part[i] for part in parts])
                for i in range(10)
            )
        view = MemoryColumns(*fields)
        self._cols = None
        self._n = 0
        self._alloc = 0
        return view


class BlockColumns:
    """Drained basic-block columns; a lazy sequence of
    :class:`BlockRecord`."""

    __slots__ = ("seq", "cta", "warp_in_cta", "line", "col", "active_lanes",
                 "resident_lanes", "call_path_id", "block_names")

    def __init__(self, seq, cta, warp_in_cta, line, col, active_lanes,
                 resident_lanes, call_path_id, block_names):
        self.seq = seq
        self.cta = cta
        self.warp_in_cta = warp_in_cta
        self.line = line
        self.col = col
        self.active_lanes = active_lanes
        self.resident_lanes = resident_lanes
        self.call_path_id = call_path_id
        self.block_names = block_names  # list[str], interned

    def __len__(self) -> int:
        return len(self.seq)

    def record(self, i: int) -> BlockRecord:
        return BlockRecord(
            seq=int(self.seq[i]),
            cta=int(self.cta[i]),
            warp_in_cta=int(self.warp_in_cta[i]),
            block_name=self.block_names[i],
            line=int(self.line[i]),
            col=int(self.col[i]),
            active_lanes=int(self.active_lanes[i]),
            resident_lanes=int(self.resident_lanes[i]),
            call_path_id=int(self.call_path_id[i]),
        )

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self.record(j) for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self.record(i)

    def __iter__(self):
        return (self.record(i) for i in range(len(self)))

    def take(self, rows) -> "BlockColumns":
        """Row-subset view (numpy index/mask); seqs keep their values."""
        idx = np.flatnonzero(rows) if np.asarray(rows).dtype == bool else rows
        return BlockColumns(
            self.seq[idx], self.cta[idx], self.warp_in_cta[idx],
            self.line[idx], self.col[idx], self.active_lanes[idx],
            self.resident_lanes[idx], self.call_path_id[idx],
            [self.block_names[i] for i in idx],
        )


class ColumnarBlockBuffer(_ColumnarBase):
    """SoA append buffer for instrumented basic-block events."""

    _KIND = "block"

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[SpillConfig] = None):
        super().__init__(capacity, spill)
        self._cols: Optional[tuple] = None
        self._names: List[str] = []

    def _spill_payload(self):
        return (
            tuple(col[: self._n] for col in self._cols),
            list(self._names),
        )

    def _reset_memory(self) -> None:
        self._cols = None
        self._names = []

    def _view(self, payload) -> BlockColumns:
        return BlockColumns(*payload[0], payload[1])

    def _grow(self) -> None:
        new = self._next_alloc()
        if self._cols is None:
            self._cols = tuple(
                np.zeros(new, np.int64 if i in (0, 7) else np.int32)
                for i in range(8)
            )
        else:
            grown = []
            for col in self._cols:
                g = np.zeros(new, col.dtype)
                g[: self._n] = col[: self._n]
                grown.append(g)
            self._cols = tuple(grown)
        self._alloc = new

    def append(self, seq, cta, warp_in_cta, name, line, col, active_lanes,
               resident_lanes, call_path_id) -> bool:
        if not self._admit():
            return False
        n = self._n
        if n >= self._alloc:
            self._grow()
        c = self._cols
        c[0][n] = seq
        c[1][n] = cta
        c[2][n] = warp_in_cta
        c[3][n] = line
        c[4][n] = col
        c[5][n] = active_lanes
        c[6][n] = resident_lanes
        c[7][n] = call_path_id
        self._names.append(name)
        self._n = n + 1
        self._maybe_spill()
        return True

    def extend(self, cols: BlockColumns) -> int:
        """Bulk-append drained columns (parallel-shard merge)."""
        admit = self._admit_bulk(len(cols))
        if not admit:
            return 0
        while self._alloc < self._n + admit:
            self._grow()
        lo, hi = self._n, self._n + admit
        data = (cols.seq, cols.cta, cols.warp_in_cta, cols.line, cols.col,
                cols.active_lanes, cols.resident_lanes, cols.call_path_id)
        for dst, src in zip(self._cols, data):
            dst[lo:hi] = src[:admit]
        self._names.extend(cols.block_names[:admit])
        self._n = hi
        self._maybe_spill()
        return admit

    def drain(self) -> BlockColumns:
        parts = list(self._read_segments())
        n = self._n
        if self._cols is not None and n:
            parts.append(
                (tuple(col[:n] for col in self._cols), self._names)
            )
        if not parts:
            cols = [np.zeros(0, np.int64 if i in (0, 7) else np.int32)
                    for i in range(8)]
            names: List[str] = []
        elif len(parts) == 1:
            cols = list(parts[0][0])
            names = list(parts[0][1])
        else:
            cols = [
                np.concatenate([part[0][i] for part in parts])
                for i in range(8)
            ]
            names = [name for part in parts for name in part[1]]
        view = BlockColumns(cols[0], cols[1], cols[2], cols[3], cols[4],
                            cols[5], cols[6], cols[7], names)
        self._cols = None
        self._names = []
        self._n = 0
        self._alloc = 0
        return view


class ArithColumns:
    """Drained arithmetic-op columns; a lazy sequence of
    :class:`ArithRecord`."""

    __slots__ = ("seq", "cta", "warp_in_cta", "bits", "is_float", "line",
                 "col", "active_lanes", "call_path_id", "opcodes")

    def __init__(self, seq, cta, warp_in_cta, bits, is_float, line, col,
                 active_lanes, call_path_id, opcodes):
        self.seq = seq
        self.cta = cta
        self.warp_in_cta = warp_in_cta
        self.bits = bits
        self.is_float = is_float
        self.line = line
        self.col = col
        self.active_lanes = active_lanes
        self.call_path_id = call_path_id
        self.opcodes = opcodes  # list[str], interned

    def __len__(self) -> int:
        return len(self.seq)

    def record(self, i: int) -> ArithRecord:
        return ArithRecord(
            seq=int(self.seq[i]),
            cta=int(self.cta[i]),
            warp_in_cta=int(self.warp_in_cta[i]),
            opcode=self.opcodes[i],
            bits=int(self.bits[i]),
            is_float=bool(self.is_float[i]),
            line=int(self.line[i]),
            col=int(self.col[i]),
            active_lanes=int(self.active_lanes[i]),
            call_path_id=int(self.call_path_id[i]),
        )

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self.record(j) for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self.record(i)

    def __iter__(self):
        return (self.record(i) for i in range(len(self)))

    def take(self, rows) -> "ArithColumns":
        """Row-subset view (numpy index/mask); seqs keep their values."""
        idx = np.flatnonzero(rows) if np.asarray(rows).dtype == bool else rows
        return ArithColumns(
            self.seq[idx], self.cta[idx], self.warp_in_cta[idx],
            self.bits[idx], self.is_float[idx], self.line[idx],
            self.col[idx], self.active_lanes[idx], self.call_path_id[idx],
            [self.opcodes[i] for i in idx],
        )


class ColumnarArithBuffer(_ColumnarBase):
    """SoA append buffer for instrumented arithmetic events."""

    _KIND = "arith"

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[SpillConfig] = None):
        super().__init__(capacity, spill)
        self._cols: Optional[tuple] = None
        self._opcodes: List[str] = []

    def _spill_payload(self):
        return (
            tuple(col[: self._n] for col in self._cols),
            list(self._opcodes),
        )

    def _reset_memory(self) -> None:
        self._cols = None
        self._opcodes = []

    def _view(self, payload) -> ArithColumns:
        return ArithColumns(*payload[0], payload[1])

    def _grow(self) -> None:
        new = self._next_alloc()
        if self._cols is None:
            self._cols = (
                np.zeros(new, np.int64),  # seq
                np.zeros(new, np.int32),  # cta
                np.zeros(new, np.int32),  # warp_in_cta
                np.zeros(new, np.int32),  # bits
                np.zeros(new, bool),  # is_float
                np.zeros(new, np.int32),  # line
                np.zeros(new, np.int32),  # col
                np.zeros(new, np.int32),  # active_lanes
                np.zeros(new, np.int64),  # call_path_id
            )
        else:
            grown = []
            for col in self._cols:
                g = np.zeros(new, col.dtype)
                g[: self._n] = col[: self._n]
                grown.append(g)
            self._cols = tuple(grown)
        self._alloc = new

    def append(self, seq, cta, warp_in_cta, opcode, bits, is_float, line,
               col, active_lanes, call_path_id) -> bool:
        if not self._admit():
            return False
        n = self._n
        if n >= self._alloc:
            self._grow()
        c = self._cols
        c[0][n] = seq
        c[1][n] = cta
        c[2][n] = warp_in_cta
        c[3][n] = bits
        c[4][n] = is_float
        c[5][n] = line
        c[6][n] = col
        c[7][n] = active_lanes
        c[8][n] = call_path_id
        self._opcodes.append(opcode)
        self._n = n + 1
        self._maybe_spill()
        return True

    def extend(self, cols: ArithColumns) -> int:
        """Bulk-append drained columns (parallel-shard merge)."""
        admit = self._admit_bulk(len(cols))
        if not admit:
            return 0
        while self._alloc < self._n + admit:
            self._grow()
        lo, hi = self._n, self._n + admit
        data = (cols.seq, cols.cta, cols.warp_in_cta, cols.bits,
                cols.is_float, cols.line, cols.col, cols.active_lanes,
                cols.call_path_id)
        for dst, src in zip(self._cols, data):
            dst[lo:hi] = src[:admit]
        self._opcodes.extend(cols.opcodes[:admit])
        self._n = hi
        self._maybe_spill()
        return admit

    def drain(self) -> ArithColumns:
        parts = list(self._read_segments())
        n = self._n
        if self._cols is not None and n:
            parts.append(
                (tuple(col[:n] for col in self._cols), self._opcodes)
            )
        if not parts:
            cols = [np.zeros(0, d) for d in (
                np.int64, np.int32, np.int32, np.int32, bool,
                np.int32, np.int32, np.int32, np.int64)]
            opcodes: List[str] = []
        elif len(parts) == 1:
            cols = list(parts[0][0])
            opcodes = list(parts[0][1])
        else:
            cols = [
                np.concatenate([part[0][i] for part in parts])
                for i in range(9)
            ]
            opcodes = [op for part in parts for op in part[1]]
        view = ArithColumns(cols[0], cols[1], cols[2], cols[3], cols[4],
                            cols[5], cols[6], cols[7], cols[8],
                            opcodes)
        self._cols = None
        self._opcodes = []
        self._n = 0
        self._alloc = 0
        return view


def stride_sample(memory: MemoryColumns, arith: ArithColumns,
                  rate: int):
    """Every ``rate``-th event of the merged memory+arith stream.

    The sampled trace is a strict row-subset of the full trace: events
    are ranked by sequence number across both column sets together (the
    order the hooks fired in) and ranks ``0, rate, 2*rate, ...`` are
    kept, seqs untouched. Because the filter runs at drain time over
    already-merged columns -- not via a shared counter at append time --
    sampled launches stay eligible for the parallel and batched fast
    paths: sharding or batching changes *when* events are appended, never
    their seq order, so the kept set is identical to a serial run's.
    """
    if rate == 1:
        return memory, arith
    n_mem = len(memory)
    seqs = np.concatenate([memory.seq, arith.seq])
    order = np.argsort(seqs)  # seqs are unique across both streams
    ranks = np.empty(len(seqs), dtype=np.int64)
    ranks[order] = np.arange(len(seqs))
    keep = ranks % rate == 0
    return memory.take(keep[:n_mem]), arith.take(keep[n_mem:])


def clip_to_capacity(cols, capacity: Optional[int]):
    """Keep the first ``capacity`` rows; returns ``(cols, dropped)``.

    Applied after :func:`stride_sample` so a sampled, capped launch
    retains exactly the rows a capped append-time filter would have.
    """
    if capacity is None or len(cols) <= capacity:
        return cols, 0
    return cols.take(np.arange(capacity)), len(cols) - capacity
