"""The device-resident trace buffer.

"CUDAAdvisor stores this trace in a buffer located in GPU's global
memory" (Section 4.2-A); at kernel exit the buffer is copied to the
host. :class:`DeviceTraceBuffer` models that: appends during the kernel
(with an optional capacity, after which entries are dropped and counted,
like a real fixed-size device buffer), then ``drain()`` at kernel end
hands the entries to the host-side profile.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class DeviceTraceBuffer(Generic[T]):
    """Bounded append-only event buffer."""

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._entries: List[T] = []
        self.dropped = 0
        self.total_appended = 0

    def append(self, entry: T) -> bool:
        """Append; returns False (and counts a drop) when full."""
        self.total_appended += 1
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.dropped += 1
            return False
        self._entries.append(entry)
        return True

    def drain(self) -> List[T]:
        """The device-to-host copy at kernel exit; empties the buffer."""
        entries = self._entries
        self._entries = []
        return entries

    def __len__(self) -> int:
        return len(self._entries)
