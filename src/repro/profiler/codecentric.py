"""Code-centric profiling: call paths and their presentation.

Each warp keeps a shadow stack of (function-id, call-site line/col)
entries, pushed/popped by the mandatory ``cupr.push``/``cupr.pop``
hooks. Paths are interned in a :class:`CallPathRegistry` so trace
entries carry a small integer. :func:`format_code_centric_view` renders
the Figure 8 output: the host path (CPU rows) concatenated with the GPU
path down to the monitored instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.host.shadow_stack import HostFrame
from repro.ir.module import Function


@dataclass(frozen=True)
class GPUPathEntry:
    """One shadow-stack entry on the device."""

    function_id: int
    line: int  # call-site line (0 for the kernel root)
    col: int


class CallPathRegistry:
    """Interns GPU call paths (tuples of :class:`GPUPathEntry`)."""

    def __init__(self):
        self._ids: Dict[Tuple[GPUPathEntry, ...], int] = {}
        self._paths: List[Tuple[GPUPathEntry, ...]] = []

    def intern(self, path: Tuple[GPUPathEntry, ...]) -> int:
        path_id = self._ids.get(path)
        if path_id is None:
            path_id = len(self._paths)
            self._ids[path] = path_id
            self._paths.append(path)
        return path_id

    def path(self, path_id: int) -> Tuple[GPUPathEntry, ...]:
        return self._paths[path_id]

    def __len__(self) -> int:
        return len(self._paths)


def describe_gpu_path(
    path: Sequence[GPUPathEntry],
    functions_by_id: Sequence[Function],
) -> List[str]:
    """Human-readable GPU path rows: ``Kernel():: file: line``."""
    rows = []
    for i, entry in enumerate(path):
        fn = functions_by_id[entry.function_id]
        filename, def_line = _function_source(fn)
        # The row shows the *call site* that entered this function; the
        # kernel root (line 0) shows its definition line instead.
        line = entry.line if entry.line else def_line
        rows.append(f"{fn.name}():: {filename}: {line}")
    return rows


def _function_source(fn: Function) -> Tuple[str, int]:
    for block in fn.blocks:
        for inst in block.instructions:
            loc = inst.debug_loc
            if loc is not None and loc.is_known:
                return loc.filename, loc.line
    return "<unknown>", 0


def format_code_centric_view(
    host_path: Sequence[HostFrame],
    gpu_path: Sequence[GPUPathEntry],
    functions_by_id: Sequence[Function],
    leaf: str,
) -> str:
    """Render the Figure 8 view: CPU rows, then GPU rows, then the leaf.

    Example output::

        CPU  0: main():: <program>: 0
             1: run_bfs():: bfs.py: 57
        GPU  2: bfs_kernel():: bfs.py: 217
             3: (memory access):: bfs.py: 33
    """
    rows: List[str] = []
    index = 0
    for i, frame in enumerate(host_path):
        prefix = "CPU " if i == 0 else "    "
        rows.append(f"{prefix}{index}: {frame}")
        index += 1
    gpu_rows = describe_gpu_path(gpu_path, functions_by_id)
    for i, row in enumerate(gpu_rows):
        prefix = "GPU " if i == 0 else "    "
        rows.append(f"{prefix}{index}: {row}")
        index += 1
    rows.append(f"    {index}: (monitored instruction):: {leaf}")
    return "\n".join(rows)
