"""The CUDAAdvisor profiler (Section 3.2 of the paper).

Collection happens *inside* instrumented kernels: the engine's hook
calls (``Record``, ``passBasicBlock``, ``RecordArith``, ``cupr.push`` /
``cupr.pop``) dispatch into a per-launch :class:`HookRuntime`, which
packs arguments together with CTA/warp IDs into trace entries in a
device-resident buffer. At kernel exit the buffer is "copied back" into
a :class:`KernelProfile` (the data-marshaling step of the paper) and
attribution runs:

* **code-centric** -- warp shadow stacks (fed by the mandatory call
  instrumentation) give the GPU call path of every event, concatenated
  with the host shadow-stack snapshot taken at launch (Figure 8);
* **data-centric** -- the allocation/transfer interposition records give
  each accessed address its device data object and host counterpart
  (Figures 3 and 9).
"""

from repro.profiler.records import (
    ArithRecord,
    BlockRecord,
    MemoryAccessRecord,
    MemoryOp,
)
from repro.profiler.buffers import DeviceTraceBuffer
from repro.profiler.profiler import HookRuntime, KernelProfile
from repro.profiler.codecentric import CallPathRegistry, format_code_centric_view
from repro.profiler.datacentric import DataCentricMap, DataObjectView
from repro.profiler.session import ProfilingSession
from repro.profiler.pc_sampling import PCSampler, PCSampleProfile, coverage_vs_instrumentation

__all__ = [
    "ArithRecord",
    "BlockRecord",
    "CallPathRegistry",
    "DataCentricMap",
    "DataObjectView",
    "DeviceTraceBuffer",
    "HookRuntime",
    "KernelProfile",
    "MemoryAccessRecord",
    "MemoryOp",
    "PCSampleProfile",
    "PCSampler",
    "ProfilingSession",
    "coverage_vs_instrumentation",
    "format_code_centric_view",
]
