"""PC sampling -- the baseline the paper contrasts against.

Maxwell+ GPUs offer PC sampling (CUPTI): the hardware samples executing
warps' program counters "in a round-robin fashion", giving *sparse*
instruction-level insight (the paper's Section 1 critique: "PC sampling
only provides sparse instruction-level insights"). This module
implements that baseline on the simulator so the density comparison
with CUDAAdvisor's exhaustive instrumentation is executable: a
:class:`PCSampler` attached to a launch records every Nth instruction's
source location per warp, with no instrumentation and near-zero
overhead -- and correspondingly incomplete coverage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

Site = Tuple[str, int]  # (function name, source line)


@dataclass
class PCSampleProfile:
    """Aggregated PC samples for one launch."""

    period: int
    samples: Counter = field(default_factory=Counter)  # Site -> count

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def sites(self) -> Set[Site]:
        return set(self.samples)

    def hottest(self, n: int = 10):
        return self.samples.most_common(n)


class PCSampler:
    """Samples one of every ``period`` executed warp instructions.

    Attach via ``Device.launch(..., pc_sampler=sampler)``; the
    interpreter calls :meth:`tick` per executed instruction.
    """

    def __init__(self, period: int = 64):
        if period < 1:
            raise ValueError("sampling period must be >= 1")
        self.profile = PCSampleProfile(period=period)
        self._period = period

    def tick(self, warp, function_name: str, debug_loc) -> None:
        if warp.instructions_executed % self._period:
            return
        line = debug_loc.line if debug_loc is not None else 0
        self.profile.samples[(function_name, line)] += 1


def coverage_vs_instrumentation(
    pc_profile: PCSampleProfile, kernel_profile
) -> Dict[str, float]:
    """How much of the instrumented picture PC sampling recovers.

    Compares the source lines PC sampling observed against the lines
    CUDAAdvisor's memory instrumentation attributed events to.
    """
    instrumented_lines = {
        record.line for record in kernel_profile.memory_records
    }
    sampled_lines = {line for _, line in pc_profile.sites()}
    if not instrumented_lines:
        return {"line_coverage": 0.0, "sampled_sites": len(sampled_lines)}
    covered = len(instrumented_lines & sampled_lines)
    return {
        "line_coverage": covered / len(instrumented_lines),
        "sampled_sites": float(len(sampled_lines)),
        "instrumented_sites": float(len(instrumented_lines)),
    }
