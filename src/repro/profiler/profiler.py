"""The per-launch hook runtime and the resulting kernel profile.

One :class:`HookRuntime` exists per kernel launch (the paper's "online
component ... invoked at the end of each kernel instance"). During the
launch it receives every hook call from the interpreter; at kernel exit
(`kernel_end`) it drains the device trace buffers into an immutable
:class:`KernelProfile` that the analyzers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProfilerError
from repro.host.shadow_stack import HostFrame
from repro.profiler.buffers import (
    ColumnarArithBuffer,
    ColumnarBlockBuffer,
    ColumnarMemoryBuffer,
    clip_to_capacity,
    stride_sample,
)
from repro.reliability.spill import SpillConfig
from repro.reliability.supervisor import TRACE_SEGMENT_CORRUPT
from repro.profiler.codecentric import CallPathRegistry, GPUPathEntry
from repro.profiler.streamdrain import (
    FusedSink,
    StreamDrain,
    StreamedRecords,
    parallel_segment_drain,
)
from repro.profiler.records import (
    ArithRecord,
    BlockRecord,
    MemoryAccessRecord,
    MemoryOp,
)


@dataclass
class KernelProfile:
    """Everything collected for one kernel instance."""

    kernel: str
    host_call_path: Tuple[HostFrame, ...]
    launch_site: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    num_ctas: int
    warps_per_cta: int
    #: Sequence of records; the fast path stores MemoryColumns /
    #: BlockColumns / ArithColumns (lazy record views over numpy
    #: columns), hand-built profiles may use plain lists.
    memory_records: Sequence[MemoryAccessRecord]
    block_records: Sequence[BlockRecord]
    arith_records: Sequence[ArithRecord]
    call_paths: CallPathRegistry
    functions_by_id: list
    dropped_records: int
    launch_result: object = None  # LaunchResult, attached at kernel_end
    #: rows that overflowed to disk spill segments during the launch
    #: (lossless; see docs/reliability.md) and rows lost to corrupted
    #: segments (already included in ``dropped_records``).
    spilled_records: int = 0
    corrupt_records: int = 0
    #: streaming drain only: the finalized-on-demand
    #: :class:`~repro.analysis.aggregates.AnalyzerBank` holding every
    #: analyzer's partial aggregate (the records above are
    #: :class:`~repro.profiler.streamdrain.StreamedRecords`
    #: placeholders), plus the drain's counters for reporting.
    aggregates: object = None
    stream_stats: Optional[dict] = None

    # -- convenience -----------------------------------------------------------
    def memory_records_by_cta(self) -> Dict[int, List[MemoryAccessRecord]]:
        """Regroup the trace per CTA (the paper's reuse-distance prep)."""
        grouped: Dict[int, List[MemoryAccessRecord]] = {}
        for record in self.memory_records:
            grouped.setdefault(record.cta, []).append(record)
        return grouped


class HookRuntime:
    """Receives instrumented-call events for one launch."""

    def __init__(
        self,
        image,
        kernel: str,
        host_call_path: Tuple[HostFrame, ...],
        launch_site: str,
        buffer_capacity: Optional[int] = None,
        sample_rate: int = 1,
        spill: Optional[SpillConfig] = None,
        streaming=None,
        fused=None,
        drain_workers: Optional[int] = None,
    ):
        if sample_rate < 1:
            raise ProfilerError("sample_rate must be >= 1")
        if fused is not None and streaming is not None:
            raise ProfilerError(
                "fused and streaming are mutually exclusive: fused "
                "analysis already streams rows through the bank in "
                "flight"
            )
        self.image = image
        self.kernel = kernel
        self.host_call_path = host_call_path
        self.launch_site = launch_site
        #: record every Nth memory/arith event (the paper's Section 5
        #: overhead-reduction direction); call-path and block events are
        #: never sampled (the shadow stacks must stay exact). Sampling
        #: is a drain-time stride filter over the merged trace (see
        #: :func:`repro.profiler.buffers.stride_sample`), so sampled
        #: launches still use the parallel/batched fast paths; the
        #: memory/arith buffers run uncapped during the launch and the
        #: capacity is applied to the filtered rows at kernel_end.
        self.sample_rate = sample_rate
        self._capacity = buffer_capacity
        #: an :class:`~repro.analysis.aggregates.AnalyzerPlan` (or None):
        #: when set, kernel_end streams spill segments through the
        #: plan's analyzer bank instead of materializing the trace, and
        #: the profile carries ``aggregates`` + StreamedRecords
        #: placeholders. The plan itself is never pickled -- shard
        #: workers inherit it through fork.
        self._streaming = streaming
        #: an :class:`~repro.analysis.aggregates.AnalyzerPlan` (or None):
        #: fused in-flight analysis -- the buffers flush into the plan's
        #: bank at segment granularity *during* execution (no spill I/O,
        #: no drain pass; see streamdrain.FusedSink). Byte-identical to
        #: streaming; disabled per launch when raw records are needed
        #: (``disable_fused``).
        self._fused = fused
        #: fork-parallel segment drain width for streamed spill
        #: workloads (None/1 keeps the serial relay).
        self._drain_workers = drain_workers
        self._shard_states: List[dict] = []

        # -- reliability wiring (docs/reliability.md) ---------------------
        # The device's failure policy picks the drain-time behaviour for
        # corrupted spill segments, and its fault injector can force a
        # tiny spill-segment size (the buffer_overflow injection point)
        # so overflow handling is exercised without a huge trace.
        device = getattr(image, "device", None)
        policy = getattr(device, "failure_policy", "degrade")
        injector = getattr(device, "fault_injector", None)
        if injector is not None:
            params = injector.fire("buffer_overflow", kernel=kernel)
            if params is not None:
                spill = SpillConfig(
                    directory=spill.directory if spill else None,
                    segment_rows=int(params.get("segment_rows", 256)),
                )
        if spill is not None:
            spill.on_corrupt = "raise" if policy == "strict" else "drop"
            spill.injector = injector
        self._spill = spill

        event_capacity = buffer_capacity if sample_rate == 1 else None
        # Fused launches never spill: rows leave the buffers through the
        # sink before a segment could hit disk. The buffer_overflow
        # injection's tiny segment size still applies -- as the flush
        # granularity -- so overflow handling stays exercised.
        buffer_spill = None if fused is not None else spill
        self.memory_buffer = ColumnarMemoryBuffer(event_capacity, buffer_spill)
        self.block_buffer = ColumnarBlockBuffer(buffer_capacity, buffer_spill)
        self.arith_buffer = ColumnarArithBuffer(event_capacity, buffer_spill)
        self.call_paths = CallPathRegistry()

        self._fused_bank = None
        self._fused_drain = None
        self._fused_sink = None
        self._fused_flush_rows = (
            spill.segment_rows if spill is not None else 65536
        )
        if fused is not None:
            self._attach_fused_sink()

        self._seq = 0
        self._launch_info: Optional[dict] = None
        #: per-warp shadow stacks: global warp id -> list[GPUPathEntry]
        self._warp_stacks: Dict[int, List[GPUPathEntry]] = {}
        #: per-warp interned path id, invalidated by cupr.push/pop
        self._warp_path_ids: Dict[int, int] = {}
        #: constant-arena address -> string (string_at scans linearly)
        self._strings: Dict[int, str] = {}
        self._root_entry: Optional[GPUPathEntry] = None
        self.profile: Optional[KernelProfile] = None
        self.on_complete = None  # callable(profile), set by the session

    def _attach_fused_sink(self) -> None:
        """Wire the current buffers into a fresh fused bank + drain."""
        self._fused_bank = self._fused.create_bank()
        on_corrupt = (
            "drop" if self._spill is None else self._spill.on_corrupt
        )
        self._fused_drain = StreamDrain(
            self._fused_bank, self.sample_rate, self._capacity, on_corrupt
        )
        self._fused_sink = FusedSink(
            self._fused_drain, self.memory_buffer, self.block_buffer,
            self.arith_buffer, self._fused_flush_rows,
        )

    @property
    def fused(self) -> bool:
        """Whether this launch analyzes rows in flight (no raw trace)."""
        return self._fused is not None

    def disable_fused(self) -> None:
        """Back out of fused mode before any hook fires.

        Called by ``Device.launch`` (after degrading with
        ``FUSED_RECORDS_UNAVAILABLE``) when the launch needs raw trace
        records -- e.g. pc sampling. The buffers are still empty, so
        they are rebuilt with the classic capacity/spill wiring and the
        launch materializes its trace exactly as a non-fused run.
        """
        if self._fused is None:
            return
        self._fused_sink.detach()
        self._fused = None
        self._fused_bank = None
        self._fused_drain = None
        self._fused_sink = None
        event_capacity = (
            self._capacity if self.sample_rate == 1 else None
        )
        self.memory_buffer = ColumnarMemoryBuffer(event_capacity, self._spill)
        self.block_buffer = ColumnarBlockBuffer(self._capacity, self._spill)
        self.arith_buffer = ColumnarArithBuffer(event_capacity, self._spill)

    # -- interpreter-facing API -----------------------------------------------------
    def kernel_begin(self, launch_info: dict) -> None:
        self._launch_info = launch_info
        kernel_id = self.image.function_ids[self.kernel]
        self._root_entry = GPUPathEntry(kernel_id, 0, 0)

    def dispatch(self, name: str, args, mask, warp, ctx, nactive=None) -> None:
        if name == "Record":
            self._on_record(args, mask, warp)
        elif name == "passBasicBlock":
            self._on_block(args, mask, warp, nactive)
        elif name == "RecordArith":
            self._on_arith(args, mask, warp, nactive)
        elif name == "cupr.push":
            self._on_push(args, warp)
        elif name == "cupr.pop":
            self._on_pop(warp)
        else:
            raise ProfilerError(f"unknown hook @{name}")

    def kernel_end(self, launch_result) -> None:
        if self._fused is not None:
            self._kernel_end_fused(launch_result)
            return
        if self._streaming is not None:
            self._kernel_end_streaming(launch_result)
            return
        info = self._launch_info or {}
        memory = self.memory_buffer.drain()
        arith = self.arith_buffer.drain()
        block = self.block_buffer.drain()
        clipped = 0
        if self.sample_rate > 1:
            memory, arith = stride_sample(memory, arith, self.sample_rate)
            memory, n = clip_to_capacity(memory, self._capacity)
            clipped += n
            arith, n = clip_to_capacity(arith, self._capacity)
            clipped += n
        buffers = (self.memory_buffer, self.block_buffer, self.arith_buffer)
        corrupt = sum(b.corrupt_dropped for b in buffers)
        if corrupt:
            self._report_corruption(corrupt)
        self.profile = KernelProfile(
            kernel=self.kernel,
            host_call_path=self.host_call_path,
            launch_site=self.launch_site,
            grid=info.get("grid", (0, 0, 0)),
            block=info.get("block", (0, 0, 0)),
            num_ctas=info.get("num_ctas", 0),
            warps_per_cta=info.get("warps_per_cta", 0),
            memory_records=memory,
            block_records=block,
            arith_records=arith,
            call_paths=self.call_paths,
            functions_by_id=self.image.functions_by_id,
            dropped_records=(
                self.memory_buffer.dropped
                + self.block_buffer.dropped
                + self.arith_buffer.dropped
                + clipped
            ),
            launch_result=launch_result,
            spilled_records=sum(b.spilled for b in buffers),
            corrupt_records=corrupt,
        )
        if self.on_complete is not None:
            self.on_complete(self.profile)

    def _kernel_end_streaming(self, launch_result) -> None:
        """Drain through the analyzer bank one spill segment at a time.

        Peak drain memory is O(segment): disk segments (own and
        shard-relayed) stream through the aggregates and are deleted as
        consumed; the trace never concatenates. Stride sampling and
        capacity are applied inside the drain with a running rank /
        keep-first cursor so the kept row set -- and therefore every
        aggregate -- is byte-identical to the in-RAM drain.
        """
        info = self._launch_info or {}
        bank = self._streaming.create_bank()
        on_corrupt = "drop" if self._spill is None else self._spill.on_corrupt
        drain = StreamDrain(
            bank, self.sample_rate, self._capacity, on_corrupt
        )
        # Shard states first, in SM order (matching absorb_shards), then
        # this process's own buffers (non-empty only for serial runs).
        shard_dropped = shard_spilled = shard_corrupt = 0
        states, self._shard_states = self._shard_states, []
        for state in states:
            acct = state["accounting"]
            shard_dropped += acct["dropped"]
            shard_spilled += acct["spilled"]
            shard_corrupt += acct["corrupt"]
            if "bank" in state:
                # Exact aggregate-to-aggregate merge (no sampling or
                # capacity in play -- see export_shard).
                bank.merge(state["bank"])
                drain.stats.absorb(state["stats"])
            else:
                drain.feed_shard_state(state)
        parallel = None
        if (
            self.sample_rate == 1
            and self._capacity is None
            and self._drain_workers is not None
            and self._drain_workers >= 2
        ):
            # Global-stream order does not matter (no sampling phase,
            # no keep-first cutoff), so spilled segments can drain
            # through forked analyzer banks and merge bank-to-bank.
            device = getattr(self.image, "device", None)
            num_sms = getattr(getattr(device, "arch", None), "num_sms", 0)
            if num_sms >= 2:
                parallel = parallel_segment_drain(
                    self._streaming, self.memory_buffer,
                    self.block_buffer, self.arith_buffer,
                    num_sms, self._drain_workers, on_corrupt,
                )
        if parallel is not None:
            bank.merge(parallel["bank"])
            drain.stats.absorb(parallel["stats"].as_dict())
        else:
            drain.feed_buffers(
                self.memory_buffer, self.block_buffer, self.arith_buffer
            )
        buffers = (self.memory_buffer, self.block_buffer, self.arith_buffer)
        corrupt = (
            sum(b.corrupt_dropped for b in buffers)
            + drain.corrupt_rows
            + shard_corrupt
        )
        if corrupt:
            self._report_corruption(corrupt)
        # Finalize results and release cursor state: the profile keeps
        # the bank for the session, so only one launch's drain-time
        # state is ever alive at a time.
        bank.seal()
        stats = drain.stats
        self.profile = KernelProfile(
            kernel=self.kernel,
            host_call_path=self.host_call_path,
            launch_site=self.launch_site,
            grid=info.get("grid", (0, 0, 0)),
            block=info.get("block", (0, 0, 0)),
            num_ctas=info.get("num_ctas", 0),
            warps_per_cta=info.get("warps_per_cta", 0),
            memory_records=StreamedRecords("memory", stats.memory_rows),
            block_records=StreamedRecords("block", stats.block_rows),
            arith_records=StreamedRecords("arith", stats.arith_rows),
            call_paths=self.call_paths,
            functions_by_id=self.image.functions_by_id,
            dropped_records=(
                sum(b.dropped for b in buffers)  # includes own corrupt
                + drain.clipped
                + drain.corrupt_rows
                + shard_dropped
            ),
            launch_result=launch_result,
            spilled_records=sum(b.spilled for b in buffers) + shard_spilled,
            corrupt_records=corrupt,
            aggregates=bank,
            stream_stats=stats.as_dict(),
        )
        if self.on_complete is not None:
            self.on_complete(self.profile)

    def _kernel_end_fused(self, launch_result) -> None:
        """Seal the in-flight bank: the trace was analyzed as it ran.

        Own rows already streamed through the fused sink during
        execution (only a sub-segment tail remains to flush). Shard
        states merge first in SM order -- exactly the streaming drain's
        contract -- which is safe because a fork-parallel launch never
        dispatches hooks in the parent, so the parent's drain cursors
        are untouched until this point.
        """
        info = self._launch_info or {}
        bank = self._fused_bank
        drain = self._fused_drain
        shard_dropped = shard_spilled = shard_corrupt = 0
        states, self._shard_states = self._shard_states, []
        for state in states:
            acct = state["accounting"]
            shard_dropped += acct["dropped"]
            shard_spilled += acct["spilled"]
            shard_corrupt += acct["corrupt"]
            if "bank" in state:
                bank.merge(state["bank"])
                drain.stats.absorb(state["stats"])
            else:
                drain.feed_shard_state(state)
        self._fused_sink.flush()
        buffers = (self.memory_buffer, self.block_buffer, self.arith_buffer)
        corrupt = (
            sum(b.corrupt_dropped for b in buffers)
            + drain.corrupt_rows
            + shard_corrupt
        )
        if corrupt:
            self._report_corruption(corrupt)
        bank.seal()
        stats = drain.stats
        self.profile = KernelProfile(
            kernel=self.kernel,
            host_call_path=self.host_call_path,
            launch_site=self.launch_site,
            grid=info.get("grid", (0, 0, 0)),
            block=info.get("block", (0, 0, 0)),
            num_ctas=info.get("num_ctas", 0),
            warps_per_cta=info.get("warps_per_cta", 0),
            memory_records=StreamedRecords("memory", stats.memory_rows),
            block_records=StreamedRecords("block", stats.block_rows),
            arith_records=StreamedRecords("arith", stats.arith_rows),
            call_paths=self.call_paths,
            functions_by_id=self.image.functions_by_id,
            dropped_records=(
                sum(b.dropped for b in buffers)
                + drain.clipped
                + drain.corrupt_rows
                + shard_dropped
            ),
            launch_result=launch_result,
            spilled_records=sum(b.spilled for b in buffers) + shard_spilled,
            corrupt_records=corrupt,
            aggregates=bank,
            stream_stats=stats.as_dict(),
        )
        if self.on_complete is not None:
            self.on_complete(self.profile)

    def _report_corruption(self, rows: int) -> None:
        """Surface dropped-corrupt-segment rows through the supervisor."""
        device = getattr(self.image, "device", None)
        supervisor = getattr(device, "supervisor", None)
        if supervisor is not None:
            supervisor.degrade(
                TRACE_SEGMENT_CORRUPT,
                self.kernel,
                f"{rows} trace rows lost to corrupted spill segments "
                f"for kernel {self.kernel!r}; analyses run on the "
                f"surviving rows",
                rows=rows,
            )

    # -- parallel-launch sharding -------------------------------------------------------
    def reset_for_shard(self) -> None:
        """Reinitialize trace state inside a forked shard worker.

        Shard buffers are uncapped: the parent enforces the global
        capacity when it absorbs the shards in SM order, so the drop set
        matches a serial run exactly. Spill stays active (a shard's
        segments are written and drained inside the worker).
        """
        shard_spill = None if self._fused is not None else self._spill
        self.memory_buffer = ColumnarMemoryBuffer(None, shard_spill)
        self.block_buffer = ColumnarBlockBuffer(None, shard_spill)
        self.arith_buffer = ColumnarArithBuffer(None, shard_spill)
        self.call_paths = CallPathRegistry()
        self._seq = 0
        self._warp_stacks = {}
        self._warp_path_ids = {}
        self._shard_states = []
        if self._fused is not None:
            if self.sample_rate == 1 and self._capacity is None:
                # The shard's kept rows are exactly its trace, so it
                # can fuse locally and ship its bank.
                self._attach_fused_sink()
            else:
                # Stride phase / keep-first cutoff depend on earlier
                # shards' row counts: materialize in RAM and relay the
                # rows for the parent's running cursors.
                self._fused_bank = None
                self._fused_drain = None
                self._fused_sink = None

    def export_shard(self) -> dict:
        """Pickleable trace state a shard worker sends back."""
        if self._fused is not None:
            return self._export_shard_fused()
        if self._streaming is not None:
            return self._export_shard_streaming()
        return {
            "memory": self.memory_buffer.drain(),
            "block": self.block_buffer.drain(),
            "arith": self.arith_buffer.drain(),
            "paths": list(self.call_paths._paths),
            "seq_total": self._seq,
        }

    def _export_shard_streaming(self) -> dict:
        """Aggregate (or relay) state a streaming shard worker ships.

        With no sampling and no capacity, the kept row set of a shard
        is exactly its trace, so the worker streams its own buffers
        through a fresh analyzer bank and ships the *bank* -- the
        parent merges aggregate-to-aggregate, never touching rows.
        Otherwise (stride phase / keep-first cutoff depend on
        predecessor shards' row counts) the worker relays its spill
        segment **files** plus the in-memory tails, and the parent
        streams them through its own drain with running cursors.
        """
        buffers = (self.memory_buffer, self.block_buffer, self.arith_buffer)
        state = {
            "paths": list(self.call_paths._paths),
            "seq_total": self._seq,
        }
        if self.sample_rate == 1 and self._capacity is None:
            bank = self._streaming.create_bank()
            on_corrupt = (
                "drop" if self._spill is None else self._spill.on_corrupt
            )
            drain = StreamDrain(bank, 1, None, on_corrupt)
            drain.feed_buffers(
                self.memory_buffer, self.block_buffer, self.arith_buffer
            )
            state["bank"] = bank
            state["stats"] = drain.stats.as_dict()
        else:
            state["memory"] = self.memory_buffer.export_stream_state()
            state["block"] = self.block_buffer.export_stream_state()
            state["arith"] = self.arith_buffer.export_stream_state()
        # After the feed / detach, so worker-side corrupt drops count.
        state["accounting"] = {
            "dropped": sum(b.dropped for b in buffers),
            "spilled": sum(b.spilled for b in buffers),
            "corrupt": sum(b.corrupt_dropped for b in buffers),
        }
        return state

    def _export_shard_fused(self) -> dict:
        """State a fused shard worker ships back to the parent.

        Mirrors :meth:`_export_shard_streaming`: with no sampling and
        no capacity the worker's rows already live in its fused bank
        (flush the tail, ship the bank); otherwise the worker
        materialized rows in RAM and relays them as a tail-only stream
        state for the parent's drain.
        """
        buffers = (self.memory_buffer, self.block_buffer, self.arith_buffer)
        state = {
            "paths": list(self.call_paths._paths),
            "seq_total": self._seq,
        }
        if self._fused_sink is not None:
            self._fused_sink.flush()
            state["bank"] = self._fused_bank
            state["stats"] = self._fused_drain.stats.as_dict()
        else:
            state["memory"] = self.memory_buffer.export_stream_state()
            state["block"] = self.block_buffer.export_stream_state()
            state["arith"] = self.arith_buffer.export_stream_state()
        state["accounting"] = {
            "dropped": sum(b.dropped for b in buffers),
            "spilled": sum(b.spilled for b in buffers),
            "corrupt": sum(b.corrupt_dropped for b in buffers),
        }
        return state

    def absorb_shards(self, shard_states) -> None:
        """Merge shard traces back, in SM order, as if run serially.

        Sequence numbers are renumbered with a running offset (all three
        buffers share one counter, so a shard's local seqs are already
        dense and ordered), and call-path ids are re-interned into the
        parent registry in shard order -- first-encounter order across
        the concatenated stream, identical to a serial run.
        """
        if self._streaming is not None or self._fused is not None:
            # Streaming/fused mode defers consumption to kernel_end: stash
            # the states in SM order, keep the call-path registry's
            # first-encounter order identical to the in-RAM remap, and
            # advance the seq counter. Relayed columns keep their
            # worker-local seqs / path ids -- the drain's running rank
            # only needs within-shard seq order, and no aggregate
            # reads call_path_id.
            for state in shard_states:
                for p in state["paths"]:
                    self.call_paths.intern(p)
                self._seq += state["seq_total"]
                self._shard_states.append(state)
            return
        for state in shard_states:
            remap = np.array(
                [self.call_paths.intern(p) for p in state["paths"]],
                dtype=np.int64,
            )
            offset = self._seq
            for cols, buffer in (
                (state["memory"], self.memory_buffer),
                (state["block"], self.block_buffer),
                (state["arith"], self.arith_buffer),
            ):
                if len(cols):
                    cols.seq = cols.seq + offset
                    cols.call_path_id = remap[cols.call_path_id]
                buffer.extend(cols)
            self._seq += state["seq_total"]

    # -- hook implementations ----------------------------------------------------------
    def _current_path_id(self, warp) -> int:
        wid = warp.global_warp_id
        path_id = self._warp_path_ids.get(wid)
        if path_id is None:
            stack = self._warp_stacks.get(wid)
            if stack is None:
                stack = [self._root_entry]
                self._warp_stacks[wid] = stack
            path_id = self.call_paths.intern(tuple(stack))
            self._warp_path_ids[wid] = path_id
        return path_id

    def _string_at(self, addr: int) -> str:
        text = self._strings.get(addr)
        if text is None:
            text = self.image.string_at(addr)
            self._strings[addr] = text
        return text

    def _on_record(self, args, mask, warp) -> None:
        addrs = np.asarray(args[0])
        if addrs.ndim == 0:
            addrs = np.full(warp.warp_size, int(addrs), dtype=np.int64)
        seq = self._seq
        self._seq += 1
        self.memory_buffer.append(
            seq,
            warp.cta_linear,
            warp.warp_in_cta,
            addrs,
            mask,
            int(args[1]),
            int(args[2]),
            int(args[3]),
            int(args[4]),
            self._current_path_id(warp),
        )

    def _on_block(self, args, mask, warp, nactive=None) -> None:
        a0 = args[0]
        name = self._string_at(a0 if type(a0) is int else int(a0) if a0.ndim == 0 else int(a0.flat[0]))
        seq = self._seq
        self._seq += 1
        self.block_buffer.append(
            seq,
            warp.cta_linear,
            warp.warp_in_cta,
            name,
            int(args[1]),
            int(args[2]),
            nactive if nactive is not None else int(mask.sum()),
            int(warp.resident_mask.sum()),
            self._current_path_id(warp),
        )

    def _on_arith(self, args, mask, warp, nactive=None) -> None:
        a0 = args[0]
        opcode = self._string_at(a0 if type(a0) is int else int(a0) if a0.ndim == 0 else int(a0.flat[0]))
        seq = self._seq
        self._seq += 1
        self.arith_buffer.append(
            seq,
            warp.cta_linear,
            warp.warp_in_cta,
            opcode,
            int(args[1]),
            bool(int(args[2])),
            int(args[3]),
            int(args[4]),
            nactive if nactive is not None else int(mask.sum()),
            self._current_path_id(warp),
        )

    def _on_push(self, args, warp) -> None:
        stack = self._warp_stacks.setdefault(
            warp.global_warp_id, [self._root_entry]
        )
        stack.append(GPUPathEntry(int(args[0]), int(args[1]), int(args[2])))
        self._warp_path_ids.pop(warp.global_warp_id, None)

    def _on_pop(self, warp) -> None:
        stack = self._warp_stacks.get(warp.global_warp_id)
        if not stack or len(stack) <= 1:
            raise ProfilerError("GPU shadow-stack underflow (unbalanced pops)")
        stack.pop()
        self._warp_path_ids.pop(warp.global_warp_id, None)
