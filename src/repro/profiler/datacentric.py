"""Data-centric profiling: from device addresses to data objects.

Implements Figure 3 of the paper: two allocation maps (host, device)
joined through interposed ``cudaMemcpy`` records. ``resolve`` maps any
device address observed in a kernel trace to the device data object it
belongs to, and -- when a transfer connected them -- to its host
counterpart, each with its allocation call path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.host.allocator import HostBuffer
from repro.host.runtime import DeviceAllocationRecord, MemcpyKind, MemcpyRecord
from repro.host.shadow_stack import HostFrame


@dataclass
class DataObjectView:
    """The resolved provenance of one device address (Figure 9)."""

    device_addr: int
    device: Optional[DeviceAllocationRecord]
    host: Optional[HostBuffer]
    transfer: Optional[MemcpyRecord]

    def render(self) -> str:
        """The Figure 9 presentation."""
        lines: List[str] = []
        if self.device is None:
            return f"address {self.device_addr:#x}: no device allocation found"
        offset = self.device_addr - self.device.base
        lines.append(
            f"device object {self.device.name!r} "
            f"(cudaMalloc at {self.device.site}), offset {offset}"
        )
        for i, frame in enumerate(self.device.call_path):
            lines.append(f"    {i}: {frame}")
        if self.transfer is not None:
            lines.append(
                f"  <- cudaMemcpy {self.transfer.kind.value} of "
                f"{self.transfer.nbytes} bytes at {self.transfer.site}"
            )
        if self.host is not None:
            lines.append(
                f"  <- host object {self.host.name!r} "
                f"(malloc at {self.host.site})"
            )
            for i, frame in enumerate(self.host.call_path):
                lines.append(f"    {i}: {frame}")
        return "\n".join(lines)


class DataCentricMap:
    """The joined host/device allocation maps of one session."""

    def __init__(
        self,
        device_allocations: Sequence[DeviceAllocationRecord],
        host_buffers: Sequence[HostBuffer],
        memcpys: Sequence[MemcpyRecord],
    ):
        self.device_allocations = list(device_allocations)
        self.host_buffers = list(host_buffers)
        self.memcpys = list(memcpys)

    def find_device(self, addr: int) -> Optional[DeviceAllocationRecord]:
        for record in self.device_allocations:
            if record.base <= addr < record.end:
                return record
        return None

    def find_host(self, addr: int) -> Optional[HostBuffer]:
        for buf in self.host_buffers:
            if buf.addr <= addr < buf.end:
                return buf
        return None

    def transfer_for(self, device_addr: int) -> Optional[MemcpyRecord]:
        """The (latest) HtoD transfer covering this device address."""
        found = None
        for record in self.memcpys:
            if record.kind != MemcpyKind.HOST_TO_DEVICE:
                continue
            if record.device_addr <= device_addr < record.device_addr + record.nbytes:
                found = record
        return found

    def resolve(self, device_addr: int) -> DataObjectView:
        device = self.find_device(device_addr)
        transfer = self.transfer_for(device_addr)
        host = None
        if transfer is not None and transfer.host_addr:
            offset = device_addr - transfer.device_addr
            host = self.find_host(transfer.host_addr + offset)
        return DataObjectView(
            device_addr=device_addr,
            device=device,
            host=host,
            transfer=transfer,
        )
