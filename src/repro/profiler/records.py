"""Trace-entry types.

``Record()`` "packs all the arguments along with CTA ID and thread ID
into one entry; entries from all memory accesses form a trace" (Section
4.2-A). A :class:`MemoryAccessRecord` is one such entry at warp
granularity: the 32 per-lane effective addresses plus the active mask
(equivalent information to 32 per-thread entries, at 1/32nd the cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


class MemoryOp(enum.IntEnum):
    """Matches the ``op`` argument of the Record hook."""

    LOAD = 1
    STORE = 2
    ATOMIC = 3


@dataclass
class MemoryAccessRecord:
    """One instrumented memory access of one warp."""

    seq: int  # global collection order (the trace order)
    cta: int  # linear CTA id
    warp_in_cta: int
    addresses: np.ndarray  # (warp_size,) int64 effective byte addresses
    mask: np.ndarray  # (warp_size,) bool active lanes
    bits: int  # access width in bits
    line: int
    col: int
    op: MemoryOp
    call_path_id: int

    @property
    def active_lanes(self) -> int:
        return int(self.mask.sum())

    @property
    def bytes_per_lane(self) -> int:
        return self.bits // 8

    def active_addresses(self) -> np.ndarray:
        return self.addresses[self.mask]


@dataclass
class BlockRecord:
    """One instrumented basic-block entry of one warp."""

    seq: int
    cta: int
    warp_in_cta: int
    block_name: str  # "function:block"
    line: int
    col: int
    active_lanes: int
    resident_lanes: int
    call_path_id: int

    @property
    def divergent(self) -> bool:
        """Executed by a proper subset of the warp's threads."""
        return self.active_lanes < self.resident_lanes


@dataclass
class ArithRecord:
    """One instrumented arithmetic operation of one warp."""

    seq: int
    cta: int
    warp_in_cta: int
    opcode: str
    bits: int
    is_float: bool
    line: int
    col: int
    active_lanes: int
    call_path_id: int

    @property
    def lane_operations(self) -> int:
        """Scalar operations performed (one per active lane)."""
        return self.active_lanes
