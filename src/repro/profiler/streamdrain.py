"""The streaming kernel-exit drain: O(segment) peak memory.

Where the classic drain concatenates every spill segment back into RAM
(:meth:`ColumnarMemoryBuffer.drain`) and runs the analyzers afterwards,
a :class:`StreamDrain` pushes the trace through an
:class:`~repro.analysis.aggregates.AnalyzerBank` **one segment at a
time**: at any moment only the segment(s) being processed are resident,
so drain-time memory is bounded by ``spill_rows``, not by trace length.
Each consumed segment file is deleted immediately.

Two cross-segment concerns are handled here so streamed results stay
byte-identical to the in-RAM drain:

* **Stride sampling** (``sample_rate > 1``) ranks memory and arith
  events jointly by sequence number. The drain merges the two segment
  streams chunk-by-chunk at seq boundaries -- every event up to
  ``min(last seq of the two live segments)`` is guaranteed present, so
  joint ranks assigned with a running counter equal the global ranks
  of the batch :func:`~repro.profiler.buffers.stride_sample`.
* **Capacity** is enforced as keep-first-N per stream with drop
  accounting, matching append-time caps (``sample_rate == 1``) and the
  post-sampling :func:`~repro.profiler.buffers.clip_to_capacity`
  (``sample_rate > 1``).

Fork-parallel shards either merge aggregate-to-aggregate (exact when
no sampling/capacity applies -- see ``HookRuntime.export_shard``) or
relay their spill-segment *files* plus in-memory tails for the parent
to stream (:meth:`StreamDrain.feed_shard_state`), keeping the merge at
O(segment) too.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Dict, Iterator, Optional

import numpy as np

from repro.errors import ProfilerError, TraceCorruptionError
from repro.profiler.buffers import ArithColumns, BlockColumns, MemoryColumns
from repro.reliability.spill import discard_segment, read_segment

_EMPTY_SEQ = np.zeros(0, dtype=np.int64)


class StreamedRecords:
    """Placeholder for a trace consumed by the streaming drain.

    The kept-row count survives (``len()`` keeps buffer accounting,
    statistics and benchmarks working); the records themselves were
    streamed through the analyzer bank and never materialized, so
    element access raises with a pointer at ``profile.aggregates``.
    """

    __slots__ = ("kind", "rows")

    def __init__(self, kind: str, rows: int):
        self.kind = kind
        self.rows = rows

    def __len__(self) -> int:
        return self.rows

    def _gone(self):
        raise ProfilerError(
            f"the {self.kind} trace was consumed by the streaming drain "
            f"and is not materialized; read results from "
            f"profile.aggregates, or profile with streaming disabled to "
            f"keep raw records"
        )

    def __getitem__(self, i):
        self._gone()

    def __iter__(self):
        self._gone()

    def __repr__(self) -> str:
        return f"<StreamedRecords {self.kind}: {self.rows} rows streamed>"


class StreamStats:
    """Counters one streaming drain accumulates (surfaced by the CLI)."""

    __slots__ = ("segments_streamed", "peak_resident_rows", "memory_rows",
                 "block_rows", "arith_rows")

    def __init__(self):
        self.segments_streamed = 0
        self.peak_resident_rows = 0
        self.memory_rows = 0
        self.block_rows = 0
        self.arith_rows = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def absorb(self, other: Dict[str, int]) -> None:
        """Fold in a shard worker's stats (sums; peak is a max)."""
        self.segments_streamed += other.get("segments_streamed", 0)
        self.peak_resident_rows = max(
            self.peak_resident_rows, other.get("peak_resident_rows", 0)
        )
        self.memory_rows += other.get("memory_rows", 0)
        self.block_rows += other.get("block_rows", 0)
        self.arith_rows += other.get("arith_rows", 0)


def _memory_view(payload) -> MemoryColumns:
    return MemoryColumns(*payload)


def _block_view(payload) -> BlockColumns:
    return BlockColumns(*payload[0], payload[1])


def _arith_view(payload) -> ArithColumns:
    return ArithColumns(*payload[0], payload[1])


def _memory_tail(cols: MemoryColumns, cut: int) -> MemoryColumns:
    return MemoryColumns(
        cols.seq[cut:], cols.cta[cut:], cols.warp_in_cta[cut:],
        cols.bits[cut:], cols.line[cut:], cols.col[cut:], cols.op[cut:],
        cols.call_path_id[cut:], cols.addresses[cut:], cols.mask[cut:],
    )


def _arith_tail(cols: ArithColumns, cut: int) -> ArithColumns:
    return ArithColumns(
        cols.seq[cut:], cols.cta[cut:], cols.warp_in_cta[cut:],
        cols.bits[cut:], cols.is_float[cut:], cols.line[cut:],
        cols.col[cut:], cols.active_lanes[cut:], cols.call_path_id[cut:],
        cols.opcodes[cut:],
    )


_TAILS = {"memory": _memory_tail, "arith": _arith_tail}
_VIEWS = {"memory": _memory_view, "block": _block_view, "arith": _arith_view}


class StreamDrain:
    """Drives one streaming kernel-exit drain into an analyzer bank."""

    def __init__(self, bank, sample_rate: int = 1,
                 capacity: Optional[int] = None,
                 on_corrupt: str = "drop"):
        self.bank = bank
        self.rate = sample_rate
        self.capacity = capacity
        self.on_corrupt = on_corrupt
        self.stats = StreamStats()
        #: rows dropped at drain time by the capacity cap.
        self.clipped = 0
        #: relayed-segment rows lost to corruption (shard streaming;
        #: a buffer streaming its own segments counts these itself).
        self.corrupt_rows = 0
        self._rank = 0  # running joint memory+arith stride rank
        self._kept = {"memory": 0, "block": 0, "arith": 0}
        self._resident = {"memory": 0, "block": 0, "arith": 0}

    # -- segment sources ----------------------------------------------------
    def feed_buffers(self, memory_buffer, block_buffer, arith_buffer) -> None:
        """Stream this process's own columnar buffers (serial drain)."""
        self._feed(
            memory_buffer.stream_segments(),
            arith_buffer.stream_segments(),
            block_buffer.stream_segments(),
        )

    def feed_shard_state(self, state: dict) -> None:
        """Stream a shard worker's relayed segment files + tails."""
        self._feed(
            self._relay(state["memory"], "memory"),
            self._relay(state["arith"], "arith"),
            self._relay(state["block"], "block"),
        )

    def _relay(self, part: dict, kind: str) -> Iterator:
        view = _VIEWS[kind]
        paths = list(part["paths"])
        try:
            while paths:
                path = paths.pop(0)
                try:
                    payload = read_segment(path)
                except TraceCorruptionError as exc:
                    if self.on_corrupt == "raise":
                        raise
                    self.corrupt_rows += exc.rows
                    continue
                finally:
                    discard_segment(path)
                yield view(payload)
        finally:
            for path in paths:
                discard_segment(path)
        tail = part.get("tail")
        if tail is not None and len(tail):
            yield tail

    # -- the drain loop -----------------------------------------------------
    def _pull(self, it, key: str):
        seg = next(it, None)
        if seg is None:
            self._resident[key] = 0
            return None
        self.stats.segments_streamed += 1
        self._resident[key] = len(seg)
        self.stats.peak_resident_rows = max(
            self.stats.peak_resident_rows, sum(self._resident.values())
        )
        return seg

    def _feed(self, mem_iter, arith_iter, block_iter) -> None:
        seg = self._pull(block_iter, "block")
        while seg is not None:
            self._emit(seg, None, "block")
            seg = self._pull(block_iter, "block")
        if self.rate == 1:
            for key, it in (("memory", mem_iter), ("arith", arith_iter)):
                seg = self._pull(it, key)
                while seg is not None:
                    self._emit(seg, None, key)
                    seg = self._pull(it, key)
        else:
            self._feed_sampled(mem_iter, arith_iter)

    def _feed_sampled(self, mem_iter, arith_iter) -> None:
        mem = self._pull(mem_iter, "memory")
        ari = self._pull(arith_iter, "arith")
        while mem is not None or ari is not None:
            if mem is not None and not len(mem):
                mem = self._pull(mem_iter, "memory")
                continue
            if ari is not None and not len(ari):
                ari = self._pull(arith_iter, "arith")
                continue
            if ari is None:
                m_cut, a_cut = len(mem), 0
            elif mem is None:
                m_cut, a_cut = 0, len(ari)
            else:
                # Everything up to the smaller stream's last seq is in
                # the two live segments (later segments of either
                # stream only hold larger seqs), so joint ranks over
                # this window -- offset by the running counter -- equal
                # the batch stride_sample's global ranks.
                boundary = min(int(mem.seq[-1]), int(ari.seq[-1]))
                m_cut = int(np.searchsorted(mem.seq, boundary, side="right"))
                a_cut = int(np.searchsorted(ari.seq, boundary, side="right"))
            m_seq = mem.seq[:m_cut] if m_cut else _EMPTY_SEQ
            a_seq = ari.seq[:a_cut] if a_cut else _EMPTY_SEQ
            seqs = np.concatenate([m_seq, a_seq])
            order = np.argsort(seqs, kind="stable")
            ranks = np.empty(seqs.size, dtype=np.int64)
            ranks[order] = np.arange(self._rank, self._rank + seqs.size)
            self._rank += seqs.size
            keep = ranks % self.rate == 0
            if m_cut:
                self._emit(mem, np.flatnonzero(keep[:m_cut]), "memory")
                mem = self._advance(mem, m_cut, mem_iter, "memory")
            if a_cut:
                self._emit(ari, np.flatnonzero(keep[m_cut:]), "arith")
                ari = self._advance(ari, a_cut, arith_iter, "arith")

    def _advance(self, cols, cut: int, it, key: str):
        if cut < len(cols):
            tail = _TAILS[key](cols, cut)
            self._resident[key] = len(tail)
            return tail
        return self._pull(it, key)

    def _emit(self, seg, idx, key: str) -> None:
        """Push (a kept subset of) one segment through the bank,
        enforcing the per-stream keep-first-capacity contract."""
        rows = len(seg) if idx is None else len(idx)
        if not rows:
            return
        if self.capacity is not None:
            allow = self.capacity - self._kept[key]
            if allow <= 0:
                self.clipped += rows
                return
            if rows > allow:
                self.clipped += rows - allow
                rows = allow
                idx = np.arange(allow) if idx is None else idx[:allow]
        if idx is not None and (len(idx) != len(seg)):
            seg = seg.take(idx)
        self._kept[key] += rows
        if key == "memory":
            self.stats.memory_rows += rows
            self.bank.update_memory(seg)
        elif key == "block":
            self.stats.block_rows += rows
            self.bank.update_block(seg)
        else:
            self.stats.arith_rows += rows
            self.bank.update_arith(seg)


class FusedSink:
    """Pushes kept rows into the analyzer bank *during* execution.

    The fused counterpart of the kernel-exit drain: the three columnar
    buffers flush into this sink whenever they reach segment size (see
    ``_ColumnarBase.sink``), so rows go straight from the hook dispatch
    into the aggregates -- no spill files, no drain pass, and resident
    trace memory stays O(segment) for the whole launch.

    Byte-identity with the streaming drain holds because all three
    buffers share one sequence counter: at any flush, the buffered
    memory+arith rows are exactly the *next contiguous window* of the
    joint event stream, so joint stride ranks assigned with the drain's
    running counter equal the global ranks of the batch
    :func:`~repro.profiler.buffers.stride_sample`. Capacity reuses the
    drain's keep-first cursors; block rows flush independently (each
    aggregate consumes a single stream, so cross-stream interleaving is
    invisible).
    """

    def __init__(self, drain: StreamDrain, memory_buffer, block_buffer,
                 arith_buffer, flush_rows: int):
        self.drain = drain
        self.memory_buffer = memory_buffer
        self.block_buffer = block_buffer
        self.arith_buffer = arith_buffer
        for buffer in (memory_buffer, arith_buffer):
            buffer.sink = self._flush_events
            buffer.sink_rows = flush_rows
        block_buffer.sink = self._flush_blocks
        block_buffer.sink_rows = flush_rows

    def detach(self) -> None:
        """Unhook from the buffers (fused mode disabled pre-launch)."""
        for buffer in (self.memory_buffer, self.block_buffer,
                       self.arith_buffer):
            buffer.sink = None
            buffer.sink_rows = 0

    def flush(self) -> None:
        """Push everything still buffered (called at kernel_end)."""
        self._flush_blocks()
        self._flush_events()

    def _flush_blocks(self, buffer=None) -> None:
        view = self.block_buffer.detach_rows()
        if view is None:
            return
        stats = self.drain.stats
        stats.segments_streamed += 1
        stats.peak_resident_rows = max(
            stats.peak_resident_rows, len(view)
        )
        self.drain._emit(view, None, "block")

    def _flush_events(self, buffer=None) -> None:
        # Memory and arith flush *together*: their buffered rows form
        # one complete seq-prefix window of the joint stream, which is
        # what makes the stride ranks below exact.
        mem = self.memory_buffer.detach_rows()
        ari = self.arith_buffer.detach_rows()
        if mem is None and ari is None:
            return
        drain = self.drain
        stats = drain.stats
        resident = (0 if mem is None else len(mem)) + (
            0 if ari is None else len(ari)
        )
        stats.peak_resident_rows = max(stats.peak_resident_rows, resident)
        stats.segments_streamed += (mem is not None) + (ari is not None)
        if drain.rate == 1:
            if mem is not None:
                drain._emit(mem, None, "memory")
            if ari is not None:
                drain._emit(ari, None, "arith")
            return
        m_seq = mem.seq if mem is not None else _EMPTY_SEQ
        a_seq = ari.seq if ari is not None else _EMPTY_SEQ
        seqs = np.concatenate([m_seq, a_seq])
        order = np.argsort(seqs, kind="stable")
        ranks = np.empty(seqs.size, dtype=np.int64)
        ranks[order] = np.arange(drain._rank, drain._rank + seqs.size)
        drain._rank += seqs.size
        keep = ranks % drain.rate == 0
        if mem is not None:
            drain._emit(mem, np.flatnonzero(keep[: m_seq.size]), "memory")
        if ari is not None:
            drain._emit(ari, np.flatnonzero(keep[m_seq.size:]), "arith")


# -- fork-parallel segment drain -------------------------------------------


def _sm_slice(seg, num_sms: int, lo: int, hi: int):
    """The rows of ``seg`` whose CTA runs on an SM in ``[lo, hi)``."""
    home = seg.cta.astype(np.int64) % num_sms
    sel = np.flatnonzero((home >= lo) & (home < hi))
    if sel.size == len(seg):
        return seg
    return seg.take(sel)


def _drain_partition(plan, paths: Dict[str, list], tails: Dict[str, object],
                     num_sms: int, lo: int, hi: int):
    """One worker's share: scan every segment, analyze one SM range.

    Segment files are read **without deleting** (the parent owns them;
    a failed worker must leave the serial fallback a complete stream)
    and corrupt segments are skipped with per-stream row accounting --
    the parent applies worker 0's counts once, exactly as the serial
    relay would.
    """
    bank = plan.create_bank()
    drain = StreamDrain(bank, 1, None, "drop")
    corrupt = {"memory": 0, "block": 0, "arith": 0}

    def filtered(kind: str):
        view = _VIEWS[kind]
        for path in paths[kind]:
            try:
                payload = read_segment(path)
            except TraceCorruptionError as exc:
                corrupt[kind] += exc.rows
                continue
            yield _sm_slice(view(payload), num_sms, lo, hi)
        tail = tails[kind]
        if tail is not None and len(tail):
            yield _sm_slice(tail, num_sms, lo, hi)

    drain._feed(filtered("memory"), filtered("arith"), filtered("block"))
    return {"bank": bank, "stats": drain.stats.as_dict(), "corrupt": corrupt}


def parallel_segment_drain(plan, memory_buffer, block_buffer, arith_buffer,
                           num_sms: int, workers: int,
                           on_corrupt: str = "drop") -> Optional[dict]:
    """Drain spilled segments through forked workers, bank-to-bank.

    The trace of any launch is SM-major (serial execution runs SMs in
    sorted order, and the batched backend replays byte-identically), so
    partitioning rows by contiguous SM ranges yields the same disjoint,
    concatenation-ordered partition the fork-parallel *launch* shards
    produce -- and the pinned shard bank-merge semantics make merging
    the workers' banks in range order byte-identical to the serial
    relay. Every worker scans all segment files but analyzes only its
    CTA slice: the analyzers, not the I/O, dominate drain time.

    Returns ``None`` -- with the buffers untouched, so the caller's
    serial drain still sees a complete stream -- when forking is
    unavailable, there is nothing on disk, or any worker fails (or
    reports corruption under ``on_corrupt="raise"``, which the serial
    relay must surface). On success the buffers are consumed: segment
    files deleted, tails released, corrupt rows accounted per buffer.
    """
    if ("fork" not in multiprocessing.get_all_start_methods()
            or not hasattr(os, "fork")):
        return None
    buffers = {
        "memory": memory_buffer, "block": block_buffer, "arith": arith_buffer,
    }
    paths = {kind: list(b._segments) for kind, b in buffers.items()}
    if not any(paths.values()):
        return None  # nothing spilled: the serial drain is already cheap
    # Peek at the in-memory tails without consuming them (fork shares
    # the views copy-on-write; on failure the buffers stay intact).
    tails = {
        kind: (
            b._view(b._spill_payload())
            if b._cols is not None and b._n else None
        )
        for kind, b in buffers.items()
    }
    nparts = max(2, min(int(workers), num_sms))
    bounds = [num_sms * i // nparts for i in range(nparts + 1)]
    children = []
    for part in range(nparts):
        rfd, wfd = os.pipe()
        pid = os.fork()
        if pid == 0:  # worker
            os.close(rfd)
            status = 1
            try:
                result = _drain_partition(
                    plan, paths, tails, num_sms,
                    bounds[part], bounds[part + 1],
                )
                blob = pickle.dumps(
                    result, protocol=pickle.HIGHEST_PROTOCOL
                )
                with os.fdopen(wfd, "wb") as f:
                    f.write(blob)
                status = 0
            except BaseException:
                pass
            finally:
                os._exit(status)
        os.close(wfd)
        children.append((pid, rfd))
    results = []
    ok = True
    for pid, rfd in children:
        blob = b""
        try:
            with os.fdopen(rfd, "rb") as f:
                blob = f.read()
        except OSError:
            blob = b""
        _, code = os.waitpid(pid, 0)
        if code != 0 or not blob:
            ok = False
            continue
        try:
            results.append(pickle.loads(blob))
        except Exception:
            ok = False
    if not ok or len(results) != nparts:
        return None
    corrupt = results[0]["corrupt"]  # every worker saw the same files
    if on_corrupt == "raise" and any(corrupt.values()):
        return None  # serial relay re-reads and raises properly
    bank = plan.create_bank()
    stats = StreamStats()
    for result in results:  # SM-range order == shard-merge order
        bank.merge(result["bank"])
        stats.absorb(result["stats"])
    # Consume the buffers: the accounting mirrors what the serial
    # relay's _stream_read_segments would have recorded.
    for kind, b in buffers.items():
        for path in paths[kind]:
            discard_segment(path)
        b._segments = []
        b._spilled_rows = 0
        b.corrupt_dropped += corrupt[kind]
        b.dropped += corrupt[kind]
        b._reset_memory()
        b._n = 0
        b._alloc = 0
    return {"bank": bank, "stats": stats}
