"""The profiling session: ties runtime, device and analyzers together.

A :class:`ProfilingSession` is attached to a :class:`CudaRuntime`; it
receives every allocation/transfer event (for the data-centric map) and
manufactures one :class:`HookRuntime` per kernel launch. Completed
:class:`KernelProfile` objects accumulate in ``profiles``, which is what
the offline analyzer (statistics across kernel instances, Section 3.3)
and every case-study analysis read.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.host.allocator import HostBuffer
from repro.host.runtime import DeviceAllocationRecord, MemcpyRecord
from repro.host.shadow_stack import HostFrame
from repro.profiler.datacentric import DataCentricMap
from repro.profiler.profiler import HookRuntime, KernelProfile
from repro.reliability.spill import SpillConfig

#: Process-local instrumentation counters.  ``sessions_created`` bumps
#: per :class:`ProfilingSession`, ``launches_profiled`` per hooked
#: kernel launch.  The service tier's "a warm cache hit performs zero
#: simulation work in this process" assertion reads these (see
#: docs/service.md); they are monotonic and never reset.
SESSION_COUNTERS = {"sessions_created": 0, "launches_profiled": 0}


class ProfilingSession:
    """Collects profiles and interposition records for one program run.

    ``spill_dir``/``spill_rows`` arm disk spill on the per-launch trace
    buffers: whenever a columnar buffer holds ``spill_rows`` rows they
    are written to a checksummed segment under ``spill_dir`` and read
    back transparently at kernel exit, so arbitrarily long launches
    never exhaust memory (see ``docs/reliability.md``). A prebuilt
    :class:`~repro.reliability.spill.SpillConfig` can be passed as
    ``spill`` instead.

    ``streaming`` takes an
    :class:`~repro.analysis.aggregates.AnalyzerPlan`: each launch then
    drains its trace *through* the plan's analyzer bank one spill
    segment at a time (O(segment) peak memory) and the resulting
    profiles carry ``aggregates`` instead of materialized records.

    ``fused`` takes the same kind of plan but analyzes rows *during*
    execution: buffered rows flush into the bank at segment granularity
    and the trace is never spilled or drained at all -- byte-identical
    results, minus the round-trip. ``drain_workers`` widens the
    kernel-exit drain of *streaming* (spill) launches across forked
    analyzer banks when no sampling/capacity is in play.
    """

    def __init__(self, buffer_capacity: Optional[int] = None,
                 sample_rate: int = 1,
                 spill_dir: Optional[str] = None,
                 spill_rows: int = 65536,
                 spill: Optional[SpillConfig] = None,
                 streaming=None,
                 fused=None,
                 drain_workers: Optional[int] = None):
        SESSION_COUNTERS["sessions_created"] += 1
        self.buffer_capacity = buffer_capacity
        self.sample_rate = sample_rate
        if spill is None and spill_dir is not None:
            spill = SpillConfig(directory=spill_dir, segment_rows=spill_rows)
        self.spill = spill
        self.streaming = streaming
        self.fused = fused
        self.drain_workers = drain_workers
        self.profiles: List[KernelProfile] = []
        self.host_buffers: List[HostBuffer] = []
        self.device_allocations: List[DeviceAllocationRecord] = []
        self.memcpys: List[MemcpyRecord] = []
        self.runtime = None

    # -- runtime event sinks ----------------------------------------------------
    def attach_runtime(self, runtime) -> None:
        self.runtime = runtime

    def on_host_malloc(self, buf: HostBuffer) -> None:
        self.host_buffers.append(buf)

    def on_cuda_malloc(self, record: DeviceAllocationRecord) -> None:
        self.device_allocations.append(record)

    def on_memcpy(self, record: MemcpyRecord) -> None:
        self.memcpys.append(record)

    def hook_runtime_for_launch(
        self,
        image,
        kernel: str,
        host_call_path: Tuple[HostFrame, ...],
        launch_site: str,
    ) -> HookRuntime:
        SESSION_COUNTERS["launches_profiled"] += 1
        hooks = HookRuntime(
            image,
            kernel,
            host_call_path,
            launch_site,
            buffer_capacity=self.buffer_capacity,
            sample_rate=self.sample_rate,
            spill=self.spill,
            streaming=self.streaming,
            fused=self.fused,
            drain_workers=self.drain_workers,
        )
        hooks.on_complete = self.profiles.append
        return hooks

    # -- analyzer-facing views -----------------------------------------------------
    def data_centric_map(self) -> DataCentricMap:
        return DataCentricMap(
            self.device_allocations, self.host_buffers, self.memcpys
        )

    def profiles_for_kernel(self, kernel: str) -> List[KernelProfile]:
        return [p for p in self.profiles if p.kernel == kernel]

    @property
    def last_profile(self) -> KernelProfile:
        if not self.profiles:
            raise IndexError("no kernel profiles collected yet")
        return self.profiles[-1]
