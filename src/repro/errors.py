"""Exception hierarchy shared across the CUDAAdvisor reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operand types, unterminated blocks, etc."""


class IRParseError(IRError):
    """The textual-IR parser rejected its input."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class VerifierError(IRError):
    """The IR verifier found a structural violation."""


class FrontendError(ReproError):
    """The kernel DSL compiler rejected the source."""

    def __init__(self, message: str, filename: str = "", line: int = 0):
        self.filename = filename
        self.line = line
        if filename or line:
            message = f"{filename}:{line}: {message}"
        super().__init__(message)


class PassError(ReproError):
    """An IR transformation pass failed."""


class BackendError(ReproError):
    """PTX lowering failed."""


class ExecutionError(ReproError):
    """The SIMT interpreter hit a runtime fault (bad address, trap...)."""


class LaunchError(ReproError):
    """A kernel launch was misconfigured (grid/block shape, arguments)."""


class LaunchDegradedError(LaunchError):
    """Strict failure policy: a launch needed to degrade and may not.

    Raised (instead of warning) when ``device.failure_policy ==
    "strict"`` and a launch would have to drop a rung of the
    degradation ladder (batched -> fork-parallel -> serial interpreter)
    or recover from a shard fault. Carries the same machine-readable
    ``reason`` code and ``context`` dict as
    :class:`LaunchDegradedWarning`.
    """

    def __init__(self, message: str, reason: str = "", context: dict = None):
        super().__init__(message)
        self.reason = reason
        self.context = dict(context or {})


class MemoryError_(ReproError):
    """Device/host memory-system fault (OOB access, double free...)."""


class ProfilerError(ReproError):
    """The profiler could not collect or attribute data."""


class TraceCorruptionError(ProfilerError):
    """A spilled trace segment failed its integrity check at drain time."""

    def __init__(self, message: str, path: str = "", rows: int = 0):
        super().__init__(message)
        self.path = path
        self.rows = rows


class LaunchDegradedWarning(RuntimeWarning):
    """A launch lost a requested fast path and fell back to a slower one.

    Emitted (never raised) when a configuration the user asked for --
    ``device.parallel_workers``, ``device.backend = "batched"`` -- cannot
    be honoured for this launch and execution silently degrading would
    hide the perf cliff: pc sampling forcing the serial interpreter,
    platforms without ``fork``, parallel shards whose CTAs wrote
    overlapping memory, or shard workers that crashed or hung and were
    re-executed serially. Results are unaffected; only speed is.

    Structured: ``reason`` is a stable machine-readable code (see
    :mod:`repro.reliability.supervisor`) and ``context`` a dict of
    details (kernel, shard index, attempts, ...). ``str(w)`` stays the
    human-readable message. The launch supervisor deduplicates these
    per (reason, kernel) on each device, so a long profiling session
    warns once instead of once per kernel instance.
    """

    def __init__(self, message: str, reason: str = "", context: dict = None):
        super().__init__(message)
        self.reason = reason
        self.context = dict(context or {})


class AnalysisError(ReproError):
    """An analyzer was fed inconsistent profiles."""
