"""syr2k -- Symmetric rank-2K update C = alpha*(A*B^T + B*A^T) + beta*C.

The two-matrix sibling of syrk (the paper notes "Syr2k ... resembles
Syrk" and excludes it from Figure 4 for that reason); same warp-level
access duality, twice the streaming volume. Paper input: Polybench
default; ours 64x64, 16x16 blocks (8 warps/CTA).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import ceil_div, random_matrix
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram


@kernel
def syr2k_kernel(A: ptr_f32, B: ptr_f32, C: ptr_f32, n: i32, m: i32,
                 alpha: f32, beta: f32):
    j = ctaid_x * ntid_x + tid_x
    i = ctaid_y * ntid_y + tid_y
    if i < n and j < n:
        acc = 0.0
        for k in range(m):
            acc += A[i * m + k] * B[j * m + k]
            acc += B[i * m + k] * A[j * m + k]
        C[i * n + j] = beta * C[i * n + j] + alpha * acc


class Syr2kProgram(GPUProgram):
    name = "syr2k"
    kernels = (syr2k_kernel,)
    warps_per_cta = 8  # 32x8 blocks (Polybench GPU shape; Table 2)

    def __init__(self, n: int = 64, m: int = 64, alpha: float = 1.5,
                 beta: float = 2.5, seed: int = 13):
        self.n = n
        self.m = m
        self.alpha = alpha
        self.beta = beta
        self.seed = seed

    @host_function
    def prepare(self, rt):
        a = random_matrix(self.n, self.m, self.seed)
        b = random_matrix(self.n, self.m, self.seed + 1)
        c = random_matrix(self.n, self.n, self.seed + 2)
        h_a = rt.host_wrap(a.reshape(-1), "h_A")
        h_b = rt.host_wrap(b.reshape(-1), "h_B")
        h_c = rt.host_wrap(c.reshape(-1).copy(), "h_C")
        d_a = rt.cuda_malloc(a.nbytes, "d_A")
        d_b = rt.cuda_malloc(b.nbytes, "d_B")
        d_c = rt.cuda_malloc(c.nbytes, "d_C")
        rt.cuda_memcpy_htod(d_a, h_a)
        rt.cuda_memcpy_htod(d_b, h_b)
        rt.cuda_memcpy_htod(d_c, h_c)
        return {"a": a, "b": b, "c": c, "d_a": d_a, "d_b": d_b, "d_c": d_c}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        grid = (ceil_div(self.n, 32), ceil_div(self.n, 8))
        result = rt.launch_kernel(
            image, "syr2k_kernel",
            grid=grid, block=(32, 8),
            args=[state["d_a"], state["d_b"], state["d_c"], self.n, self.m,
                  self.alpha, self.beta],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [result]

    def check(self, rt, state) -> bool:
        out = rt.device.memcpy_dtoh(
            state["d_c"], np.float32, self.n * self.n
        ).reshape(self.n, self.n)
        a, b = state["a"], state["b"]
        expected = self.beta * state["c"] + self.alpha * (a @ b.T + b @ a.T)
        return bool(np.allclose(out, expected, rtol=1e-3))
