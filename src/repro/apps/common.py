"""Shared input generators and helpers for the benchmark suite.

Inputs are synthetic, deterministic (seeded) and scaled down from the
paper's datasets so that the interpreted SIMT simulator finishes each
app in about a second; each app's module documents the paper's input ->
ours. Access-pattern structure (strides, tiling, degree distributions,
branch structure) is preserved, which is what every profiled metric
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


@dataclass
class CSRGraph:
    """A graph in the Rodinia BFS input format.

    ``graph1MW_6.txt`` is 1M nodes with ~6 edges each, uniformly random;
    :func:`synthetic_bfs_graph` generates the same structure at reduced
    scale.
    """

    starting: np.ndarray  # int32 (n,) first-edge index per node
    num_edges: np.ndarray  # int32 (n,) edge count per node
    edges: np.ndarray  # int32 (total_edges,) destination nodes
    source: int = 0

    @property
    def num_nodes(self) -> int:
        return len(self.starting)

    def cpu_bfs_costs(self) -> np.ndarray:
        """Reference BFS levels (for validating the GPU result)."""
        n = self.num_nodes
        cost = np.full(n, -1, dtype=np.int32)
        cost[self.source] = 0
        frontier = [self.source]
        while frontier:
            nxt = []
            for u in frontier:
                lo = self.starting[u]
                hi = lo + self.num_edges[u]
                for v in self.edges[lo:hi]:
                    if cost[v] < 0:
                        cost[v] = cost[u] + 1
                        nxt.append(int(v))
            frontier = nxt
        return cost


def synthetic_bfs_graph(
    num_nodes: int = 2048, degree: int = 6, seed: int = 7
) -> CSRGraph:
    """A degree-``degree`` uniform random graph (graph1MW_6 structure)."""
    r = rng(seed)
    counts = np.full(num_nodes, degree, dtype=np.int32)
    starting = np.zeros(num_nodes, dtype=np.int32)
    starting[1:] = np.cumsum(counts)[:-1].astype(np.int32)
    edges = r.integers(0, num_nodes, size=int(counts.sum()), dtype=np.int32)
    # Ensure connectivity along a ring so BFS reaches every node.
    for u in range(num_nodes):
        edges[starting[u]] = (u + 1) % num_nodes
    return CSRGraph(starting, counts, edges)


def random_matrix(n: int, m: int, seed: int, scale: float = 1.0) -> np.ndarray:
    return (rng(seed).random((n, m), dtype=np.float32) * scale).astype(
        np.float32
    )


def random_vector(n: int, seed: int, scale: float = 1.0) -> np.ndarray:
    return (rng(seed).random(n, dtype=np.float32) * scale).astype(np.float32)


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)
