"""The Table 2 benchmark suite, re-written in the kernel DSL.

Ten applications from Rodinia and Polybench with the paper's CTA shapes
and faithful (scaled) inputs; see each module's docstring for the
paper-input -> our-input substitution.
"""

from repro.apps.registry import APP_NAMES, AppInfo, TABLE2, app_info, build_app

__all__ = ["APP_NAMES", "AppInfo", "TABLE2", "app_info", "build_app"]
