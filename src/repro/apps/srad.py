"""srad_v2 -- Speckle Reducing Anisotropic Diffusion (Rodinia).

Two kernels per iteration: ``srad_cuda_1`` computes the four directional
derivatives and the diffusion coefficient; ``srad_cuda_2`` applies the
divergence update. Border clamping in both kernels causes the ~34%
divergent blocks of Table 3; the derivative arrays are written then
re-read next kernel, exercising the write-restart reuse-distance rule.

Paper input: ``2048 2048 0 127 0 127 0.5 2``; ours: 64x64, lambda 0.5,
2 iterations, 16x16 blocks (8 warps/CTA).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import random_matrix
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram

_TILE = 16


@kernel
def srad_cuda_1(J: ptr_f32, C: ptr_f32, dN: ptr_f32, dS: ptr_f32,
                dW: ptr_f32, dE: ptr_f32, cols: i32, rows: i32, q0sqr: f32):
    col = ctaid_x * 16 + tid_x
    row = ctaid_y * 16 + tid_y
    idx = row * cols + col

    jc = J[idx]
    if row > 0:
        n = J[idx - cols] - jc
    else:
        n = 0.0
    if row < rows - 1:
        s = J[idx + cols] - jc
    else:
        s = 0.0
    if col > 0:
        w = J[idx - 1] - jc
    else:
        w = 0.0
    if col < cols - 1:
        e = J[idx + 1] - jc
    else:
        e = 0.0

    g2 = (n * n + s * s + w * w + e * e) / (jc * jc)
    l = (n + s + w + e) / jc
    num = 0.5 * g2 - 0.0625 * (l * l)
    den = 1.0 + 0.25 * l
    qsqr = num / (den * den)
    den2 = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
    c = 1.0 / (1.0 + den2)
    if c < 0.0:
        c = 0.0
    if c > 1.0:
        c = 1.0
    C[idx] = c
    dN[idx] = n
    dS[idx] = s
    dW[idx] = w
    dE[idx] = e


@kernel
def srad_cuda_2(J: ptr_f32, C: ptr_f32, dN: ptr_f32, dS: ptr_f32,
                dW: ptr_f32, dE: ptr_f32, cols: i32, rows: i32, lam: f32):
    col = ctaid_x * 16 + tid_x
    row = ctaid_y * 16 + tid_y
    idx = row * cols + col

    cn = C[idx]
    cw = C[idx]
    if row < rows - 1:
        cs = C[idx + cols]
    else:
        cs = C[idx]
    if col < cols - 1:
        ce = C[idx + 1]
    else:
        ce = C[idx]
    d = cn * dN[idx] + cs * dS[idx] + cw * dW[idx] + ce * dE[idx]
    J[idx] = J[idx] + 0.25 * lam * d


class SradProgram(GPUProgram):
    name = "srad_v2"
    kernels = (srad_cuda_1, srad_cuda_2)
    warps_per_cta = 8  # 16x16 blocks (Table 2)

    def __init__(self, n: int = 64, iterations: int = 2, lam: float = 0.5,
                 seed: int = 23):
        if n % _TILE:
            raise ValueError("image size must be a multiple of 16")
        self.n = n
        self.iterations = iterations
        self.lam = lam
        self.seed = seed

    @host_function
    def prepare(self, rt):
        n = self.n
        image = np.exp(random_matrix(n, n, self.seed)).astype(np.float32)
        h_j = rt.host_wrap(image.reshape(-1).copy(), "h_J")
        nbytes = image.nbytes
        d = {"image": image}
        for name in ("J", "C", "dN", "dS", "dW", "dE"):
            d[name] = rt.cuda_malloc(nbytes, f"d_{name}")
        rt.cuda_memcpy_htod(d["J"], h_j)
        return d

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        n = self.n
        blocks = n // _TILE
        results = []
        j_host = np.empty(n * n, dtype=np.float32)
        for _ in range(self.iterations):
            # Rodinia computes q0sqr from the ROI statistics each sweep.
            rt.cuda_memcpy_dtoh(j_host, state["J"])
            mean = float(j_host.mean())
            var = float(j_host.var())
            q0sqr = var / (mean * mean)
            args1 = [state["J"], state["C"], state["dN"], state["dS"],
                     state["dW"], state["dE"], n, n, q0sqr]
            results.append(rt.launch_kernel(
                image, "srad_cuda_1", grid=(blocks, blocks),
                block=(_TILE, _TILE), args=args1,
                l1_warps_per_cta=l1_warps_per_cta,
            ))
            args2 = [state["J"], state["C"], state["dN"], state["dS"],
                     state["dW"], state["dE"], n, n, self.lam]
            results.append(rt.launch_kernel(
                image, "srad_cuda_2", grid=(blocks, blocks),
                block=(_TILE, _TILE), args=args2,
                l1_warps_per_cta=l1_warps_per_cta,
            ))
        return results

    def check(self, rt, state) -> bool:
        n = self.n
        out = rt.device.memcpy_dtoh(state["J"], np.float32, n * n)
        j = state["image"].astype(np.float32).copy()
        for _ in range(self.iterations):
            q0sqr = np.float32(j.var() / (j.mean() ** 2))
            padded = np.pad(j, 1, mode="constant")
            dn = np.where(np.arange(n)[:, None] > 0, padded[:-2, 1:-1] - j, 0)
            ds = np.where(np.arange(n)[:, None] < n - 1,
                          padded[2:, 1:-1] - j, 0)
            dw = np.where(np.arange(n)[None, :] > 0, padded[1:-1, :-2] - j, 0)
            de = np.where(np.arange(n)[None, :] < n - 1,
                          padded[1:-1, 2:] - j, 0)
            g2 = (dn**2 + ds**2 + dw**2 + de**2) / (j * j)
            l = (dn + ds + dw + de) / j
            num = 0.5 * g2 - 0.0625 * l * l
            den = 1.0 + 0.25 * l
            qsqr = num / (den * den)
            den2 = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
            c = np.clip(1.0 / (1.0 + den2), 0.0, 1.0).astype(np.float32)
            cs = np.vstack([c[1:, :], c[-1:, :]])
            ce = np.hstack([c[:, 1:], c[:, -1:]])
            d = c * dn + cs * ds + c * dw + ce * de
            j = (j + 0.25 * np.float32(self.lam) * d).astype(np.float32)
        return bool(np.allclose(out.reshape(n, n), j, rtol=1e-2, atol=1e-3))
