"""bfs -- Breadth-First Search (Rodinia).

The classic frontier-based two-kernel BFS: ``Kernel`` expands the
current frontier along CSR adjacency lists; ``Kernel2`` promotes the
updating mask into the next frontier and raises the host-polled "not
over" flag. Branch-heavy (the paper reports 31.6% divergent blocks),
near-zero reuse (excluded from Figure 4 for >99% no-reuse) and
irregular, data-dependent edge reads.

Paper input: ``graph1MW_6.txt`` (1M nodes, degree ~6); ours: a
synthetic 2048-node degree-6 uniform graph (same structure, see
``common.synthetic_bfs_graph``). 512 threads/CTA = 16 warps (Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import CSRGraph, ceil_div, synthetic_bfs_graph
from repro.frontend import i32, kernel, ptr_i8, ptr_i32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram


@kernel
def bfs_kernel(starting: ptr_i32, num_edges: ptr_i32, edges: ptr_i32,
               graph_mask: ptr_i8, updating_mask: ptr_i8,
               visited: ptr_i8, cost: ptr_i32, n: i32):
    tid = ctaid_x * ntid_x + tid_x
    if tid < n:
        if graph_mask[tid] != 0:
            graph_mask[tid] = 0
            first = starting[tid]
            count = num_edges[tid]
            for i in range(first, first + count):
                nid = edges[i]
                if visited[nid] == 0:
                    cost[nid] = cost[tid] + 1
                    updating_mask[nid] = 1


@kernel
def bfs_kernel2(graph_mask: ptr_i8, updating_mask: ptr_i8, visited: ptr_i8,
                over: ptr_i8, n: i32):
    tid = ctaid_x * ntid_x + tid_x
    if tid < n:
        if updating_mask[tid] != 0:
            graph_mask[tid] = 1
            visited[tid] = 1
            over[0] = 1
            updating_mask[tid] = 0


class BFSProgram(GPUProgram):
    name = "bfs"
    kernels = (bfs_kernel, bfs_kernel2)
    warps_per_cta = 16  # 512 threads/CTA (Table 2)

    def __init__(self, num_nodes: int = 2048, degree: int = 6, seed: int = 7):
        self.graph = synthetic_bfs_graph(num_nodes, degree, seed)

    @host_function
    def prepare(self, rt):
        g = self.graph
        n = g.num_nodes

        h_starting = rt.host_wrap(g.starting, "h_graph_nodes.starting")
        h_num_edges = rt.host_wrap(g.num_edges, "h_graph_nodes.no_of_edges")
        h_edges = rt.host_wrap(g.edges, "h_graph_edges")
        mask = np.zeros(n, dtype=np.int8)
        mask[g.source] = 1
        visited = np.zeros(n, dtype=np.int8)
        visited[g.source] = 1
        cost = np.full(n, -1, dtype=np.int32)
        cost[g.source] = 0
        h_mask = rt.host_wrap(mask, "h_graph_mask")
        h_updating = rt.host_wrap(np.zeros(n, dtype=np.int8),
                                  "h_updating_graph_mask")
        h_visited = rt.host_wrap(visited, "h_graph_visited")
        h_cost = rt.host_wrap(cost, "h_cost")

        d = {}
        d["starting"] = rt.cuda_malloc(g.starting.nbytes, "d_graph_nodes.starting")
        d["num_edges"] = rt.cuda_malloc(g.num_edges.nbytes, "d_graph_nodes.no_of_edges")
        d["edges"] = rt.cuda_malloc(g.edges.nbytes, "d_graph_edges")
        d["mask"] = rt.cuda_malloc(n, "d_graph_mask")
        d["updating"] = rt.cuda_malloc(n, "d_updating_graph_mask")
        d["visited"] = rt.cuda_malloc(n, "d_graph_visited")
        d["cost"] = rt.cuda_malloc(4 * n, "d_cost")
        d["over"] = rt.cuda_malloc(1, "d_over")
        rt.cuda_memcpy_htod(d["starting"], h_starting)
        rt.cuda_memcpy_htod(d["num_edges"], h_num_edges)
        rt.cuda_memcpy_htod(d["edges"], h_edges)
        rt.cuda_memcpy_htod(d["mask"], h_mask)
        rt.cuda_memcpy_htod(d["updating"], h_updating)
        rt.cuda_memcpy_htod(d["visited"], h_visited)
        rt.cuda_memcpy_htod(d["cost"], h_cost)
        return d

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        n = self.graph.num_nodes
        grid = ceil_div(n, 512)
        results = []
        h_over = np.zeros(1, dtype=np.int8)
        # The Rodinia host loop: expand until no node was updated.
        for _ in range(n):  # upper bound; exits via the flag
            h_over[0] = 0
            rt.cuda_memcpy_htod(state["over"], h_over)
            results.append(rt.launch_kernel(
                image, "bfs_kernel", grid=grid, block=512,
                args=[state["starting"], state["num_edges"], state["edges"],
                      state["mask"], state["updating"], state["visited"],
                      state["cost"], n],
                l1_warps_per_cta=l1_warps_per_cta,
            ))
            results.append(rt.launch_kernel(
                image, "bfs_kernel2", grid=grid, block=512,
                args=[state["mask"], state["updating"], state["visited"],
                      state["over"], n],
                l1_warps_per_cta=l1_warps_per_cta,
            ))
            rt.cuda_memcpy_dtoh(h_over, state["over"])
            if h_over[0] == 0:
                break
        return results

    def check(self, rt, state) -> bool:
        n = self.graph.num_nodes
        cost = rt.device.memcpy_dtoh(state["cost"], np.int32, n)
        return bool(np.array_equal(cost, self.graph.cpu_bfs_costs()))
