"""bicg -- BiCG sub-kernels of the BiCGStab solver (Polybench GPU).

Two matrix-vector products over the same matrix: ``s = A^T r`` (kernel
1: one thread per column, marching down rows -> column-strided, fully
divergent reads of A) and ``q = A p`` (kernel 2: one thread per row,
marching across columns -> the same element is read by all threads of a
warp... actually per-thread rows make A reads strided by N). This
row/column duality is why the paper reports bicg's memory-divergence
distribution as bimodal (~75% at 1 line, ~25% at 32 on Kepler).
Paper input 1024x1024; ours 128x128, 8 warps/CTA.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import ceil_div, random_matrix, random_vector
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram


@kernel
def bicg_kernel1(A: ptr_f32, r: ptr_f32, s: ptr_f32, nx: i32, ny: i32):
    # One thread per column j: s[j] = sum_i r[i] * A[i][j].
    j = ctaid_x * ntid_x + tid_x
    if j < ny:
        acc = 0.0
        for i in range(nx):
            acc += r[i] * A[i * ny + j]
        s[j] = acc


@kernel
def bicg_kernel2(A: ptr_f32, p: ptr_f32, q: ptr_f32, nx: i32, ny: i32):
    # One thread per row i: q[i] = sum_j A[i][j] * p[j].
    i = ctaid_x * ntid_x + tid_x
    if i < nx:
        acc = 0.0
        for j in range(ny):
            acc += A[i * ny + j] * p[j]
        q[i] = acc


class BicgProgram(GPUProgram):
    name = "bicg"
    kernels = (bicg_kernel1, bicg_kernel2)
    warps_per_cta = 8  # 256 threads/CTA (Table 2)

    def __init__(self, nx: int = 128, ny: int = 128, seed: int = 3):
        self.nx = nx
        self.ny = ny
        self.seed = seed

    @host_function
    def prepare(self, rt):
        nx, ny = self.nx, self.ny
        a = random_matrix(nx, ny, self.seed)
        r = random_vector(nx, self.seed + 1)
        p = random_vector(ny, self.seed + 2)

        h_a = rt.host_wrap(a.reshape(-1), "h_A")
        h_r = rt.host_wrap(r, "h_r")
        h_p = rt.host_wrap(p, "h_p")
        d_a = rt.cuda_malloc(a.nbytes, "d_A")
        d_r = rt.cuda_malloc(r.nbytes, "d_r")
        d_p = rt.cuda_malloc(p.nbytes, "d_p")
        d_s = rt.cuda_malloc(4 * ny, "d_s")
        d_q = rt.cuda_malloc(4 * nx, "d_q")
        rt.cuda_memcpy_htod(d_a, h_a)
        rt.cuda_memcpy_htod(d_r, h_r)
        rt.cuda_memcpy_htod(d_p, h_p)
        return {
            "a": a, "r": r, "p": p,
            "d_a": d_a, "d_r": d_r, "d_p": d_p, "d_s": d_s, "d_q": d_q,
        }

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        nx, ny = self.nx, self.ny
        r1 = rt.launch_kernel(
            image, "bicg_kernel1",
            grid=ceil_div(ny, 256), block=256,
            args=[state["d_a"], state["d_r"], state["d_s"], nx, ny],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        r2 = rt.launch_kernel(
            image, "bicg_kernel2",
            grid=ceil_div(nx, 256), block=256,
            args=[state["d_a"], state["d_p"], state["d_q"], nx, ny],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [r1, r2]

    def check(self, rt, state) -> bool:
        s = rt.device.memcpy_dtoh(state["d_s"], np.float32, self.ny)
        q = rt.device.memcpy_dtoh(state["d_q"], np.float32, self.nx)
        expect_s = state["a"].T @ state["r"]
        expect_q = state["a"] @ state["p"]
        return bool(
            np.allclose(s, expect_s, rtol=1e-3)
            and np.allclose(q, expect_q, rtol=1e-3)
        )
