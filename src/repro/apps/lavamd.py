"""lavaMD -- particle interactions within a 3D box grid (Rodinia).

One CTA per home box: neighbor-box particle positions and charges are
staged through shared memory, then every home particle accumulates a
cutoff-free DL_POLY-style two-body force against every neighbor
particle. The ``while wtx < par`` strip-mining loop (128 threads over
``par`` particles) leaves the tail warp partially active -- the source
of lavaMD's mild 13.8% branch divergence in Table 3.

Paper input: ``-boxes1d 10`` (1000 boxes, 100 particles/box); ours:
boxes1d=2 (8 boxes, full 3D neighbor structure), 72 particles/box
(like the paper's 100-of-128, the tail warp is only partially active),
128 threads/CTA = 4 warps (Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import random_vector
from repro.frontend import f32, i32, kernel, ptr_f32, ptr_i32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram

_THREADS = 128
_MAX_NEI = 27


@kernel
def lavamd_kernel(box_nnei: ptr_i32, box_nei: ptr_i32, rv: ptr_f32,
                  qv: ptr_f32, fv: ptr_f32, par: i32, a2: f32):
    bx = ctaid_x
    tx = tid_x

    rA = shared(f32, 4 * 72)
    rB = shared(f32, 4 * 72)
    qB = shared(f32, 72)

    # Stage the home box's particles.
    wtx = tx
    while wtx < par:
        rA[wtx * 4 + 0] = rv[(bx * par + wtx) * 4 + 0]
        rA[wtx * 4 + 1] = rv[(bx * par + wtx) * 4 + 1]
        rA[wtx * 4 + 2] = rv[(bx * par + wtx) * 4 + 2]
        rA[wtx * 4 + 3] = rv[(bx * par + wtx) * 4 + 3]
        wtx = wtx + ntid_x
    syncthreads()

    nn = box_nnei[bx]
    for k in range(nn):
        nei = box_nei[bx * 27 + k]
        # Stage the neighbor box.
        wtx = tx
        while wtx < par:
            rB[wtx * 4 + 0] = rv[(nei * par + wtx) * 4 + 0]
            rB[wtx * 4 + 1] = rv[(nei * par + wtx) * 4 + 1]
            rB[wtx * 4 + 2] = rv[(nei * par + wtx) * 4 + 2]
            rB[wtx * 4 + 3] = rv[(nei * par + wtx) * 4 + 3]
            qB[wtx] = qv[nei * par + wtx]
            wtx = wtx + ntid_x
        syncthreads()

        # Pairwise interactions. The home particle's coordinates are
        # loop-invariant and kept in registers (as Rodinia does).
        wtx = tx
        while wtx < par:
            ax = rA[wtx * 4 + 0]
            ay = rA[wtx * 4 + 1]
            az = rA[wtx * 4 + 2]
            av = rA[wtx * 4 + 3]
            fx = 0.0
            fy = 0.0
            fz = 0.0
            fw = 0.0
            for j in range(par):
                bx_ = rB[j * 4 + 0]
                by_ = rB[j * 4 + 1]
                bz_ = rB[j * 4 + 2]
                r2 = av + rB[j * 4 + 3] - (ax * bx_ + ay * by_ + az * bz_)
                u2 = a2 * r2
                vij = expf(0.0 - u2)
                fs = 2.0 * vij
                qj = qB[j]
                fx += qj * fs * (ax - bx_)
                fy += qj * fs * (ay - by_)
                fz += qj * fs * (az - bz_)
                fw += qj * vij
            fv[(bx * par + wtx) * 4 + 0] = fv[(bx * par + wtx) * 4 + 0] + fx
            fv[(bx * par + wtx) * 4 + 1] = fv[(bx * par + wtx) * 4 + 1] + fy
            fv[(bx * par + wtx) * 4 + 2] = fv[(bx * par + wtx) * 4 + 2] + fz
            fv[(bx * par + wtx) * 4 + 3] = fv[(bx * par + wtx) * 4 + 3] + fw
            wtx = wtx + ntid_x
        syncthreads()


def _neighbor_lists(boxes1d: int):
    """Full 3D adjacency (including self), the lavaMD box structure."""
    n_boxes = boxes1d ** 3
    nnei = np.zeros(n_boxes, dtype=np.int32)
    nei = np.zeros(n_boxes * _MAX_NEI, dtype=np.int32)
    for z in range(boxes1d):
        for y in range(boxes1d):
            for x in range(boxes1d):
                home = (z * boxes1d + y) * boxes1d + x
                count = 0
                for dz in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dx in (-1, 0, 1):
                            nz, ny, nx = z + dz, y + dy, x + dx
                            if (0 <= nz < boxes1d and 0 <= ny < boxes1d
                                    and 0 <= nx < boxes1d):
                                nei[home * _MAX_NEI + count] = (
                                    (nz * boxes1d + ny) * boxes1d + nx
                                )
                                count += 1
                nnei[home] = count
    return nnei, nei


class LavaMDProgram(GPUProgram):
    name = "lavaMD"
    kernels = (lavamd_kernel,)
    warps_per_cta = 4  # 128 threads/CTA (Table 2)

    def __init__(self, boxes1d: int = 2, par_per_box: int = 72,
                 alpha: float = 0.5, seed: int = 31):
        if par_per_box > 72:
            raise ValueError("shared staging arrays are sized for 72")
        self.boxes1d = boxes1d
        self.par = par_per_box
        self.alpha = alpha
        self.seed = seed

    @host_function
    def prepare(self, rt):
        n_boxes = self.boxes1d ** 3
        total = n_boxes * self.par
        nnei, nei = _neighbor_lists(self.boxes1d)
        rv = random_vector(total * 4, self.seed, scale=1.0)
        qv = random_vector(total, self.seed + 1, scale=1.0)
        fv = np.zeros(total * 4, dtype=np.float32)

        h_rv = rt.host_wrap(rv, "h_rv")
        h_qv = rt.host_wrap(qv, "h_qv")
        h_fv = rt.host_wrap(fv.copy(), "h_fv")
        h_nnei = rt.host_wrap(nnei, "h_box_nnei")
        h_nei = rt.host_wrap(nei, "h_box_nei")

        d = {"rv": rv, "qv": qv, "nnei": nnei, "nei": nei,
             "n_boxes": n_boxes}
        d["d_nnei"] = rt.cuda_malloc(nnei.nbytes, "d_box_nnei")
        d["d_nei"] = rt.cuda_malloc(nei.nbytes, "d_box_nei")
        d["d_rv"] = rt.cuda_malloc(rv.nbytes, "d_rv")
        d["d_qv"] = rt.cuda_malloc(qv.nbytes, "d_qv")
        d["d_fv"] = rt.cuda_malloc(fv.nbytes, "d_fv")
        rt.cuda_memcpy_htod(d["d_nnei"], h_nnei)
        rt.cuda_memcpy_htod(d["d_nei"], h_nei)
        rt.cuda_memcpy_htod(d["d_rv"], h_rv)
        rt.cuda_memcpy_htod(d["d_qv"], h_qv)
        rt.cuda_memcpy_htod(d["d_fv"], h_fv)
        return d

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        result = rt.launch_kernel(
            image, "lavamd_kernel",
            grid=state["n_boxes"], block=_THREADS,
            args=[state["d_nnei"], state["d_nei"], state["d_rv"],
                  state["d_qv"], state["d_fv"], self.par,
                  self.alpha * self.alpha],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [result]

    def check(self, rt, state) -> bool:
        par, n_boxes = self.par, state["n_boxes"]
        rv = state["rv"].reshape(-1, 4).astype(np.float64)
        qv = state["qv"].astype(np.float64)
        a2 = float(self.alpha) ** 2
        expect = np.zeros((n_boxes * par, 4))
        for home in range(n_boxes):
            count = state["nnei"][home]
            homes = slice(home * par, (home + 1) * par)
            ra = rv[homes]
            for k in range(count):
                nei = state["nei"][home * _MAX_NEI + k]
                rb = rv[nei * par:(nei + 1) * par]
                qb = qv[nei * par:(nei + 1) * par]
                r2 = ra[:, 3:4] + rb[None, :, 3] - (ra[:, :3] @ rb[:, :3].T)
                vij = np.exp(-a2 * r2)
                fs = 2.0 * vij
                d = ra[:, None, :3] - rb[None, :, :3]
                expect[homes, :3] += np.einsum("ij,ijk->ik", qb[None, :] * fs, d)
                expect[homes, 3] += (qb[None, :] * vij).sum(axis=1)
        got = rt.device.memcpy_dtoh(
            state["d_fv"], np.float32, n_boxes * par * 4
        ).reshape(-1, 4)
        return bool(np.allclose(got, expect, rtol=1e-2, atol=1e-3))
