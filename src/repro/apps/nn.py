"""nn -- Nearest Neighbor (Rodinia).

Finds the nearest hurricanes to a target (lat, lng): the ``euclid``
kernel computes one Euclidean distance per record; the host selects the
minimum. Paper input: ``filelist_4 -r 5 -lat 30 -lng 90`` (~42k records,
8 warps/CTA); ours: 4096 synthetic records, same kernel structure
(interleaved lat/lng pairs -> stride-2 global reads, one short
bounds-check branch, essentially zero reuse -- the paper excludes nn
from Figure 4 for >99% no-reuse and reports 4.05% branch divergence).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import ceil_div, random_vector
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram


@kernel
def euclid(locations: ptr_f32, distances: ptr_f32, n: i32, lat: f32, lng: f32):
    gid = ntid_x * ctaid_x + tid_x
    if gid < n:
        latitude = locations[gid * 2]
        longitude = locations[gid * 2 + 1]
        dx = lat - latitude
        dy = lng - longitude
        distances[gid] = sqrtf(dx * dx + dy * dy)


class NNProgram(GPUProgram):
    name = "nn"
    kernels = (euclid,)
    warps_per_cta = 8  # 256 threads/CTA (Table 2)

    def __init__(self, num_records: int = 4096, lat: float = 30.0,
                 lng: float = 90.0, seed: int = 11):
        self.num_records = num_records
        self.lat = lat
        self.lng = lng
        self.seed = seed

    @host_function
    def prepare(self, rt):
        n = self.num_records
        coords = np.empty(2 * n, dtype=np.float32)
        coords[0::2] = random_vector(n, self.seed, scale=180.0)
        coords[1::2] = random_vector(n, self.seed + 1, scale=360.0)

        h_locations = rt.host_wrap(coords, "h_locations")
        d_locations = rt.cuda_malloc(coords.nbytes, "d_locations")
        d_distances = rt.cuda_malloc(4 * n, "d_distances")
        rt.cuda_memcpy_htod(d_locations, h_locations)
        return {
            "coords": coords,
            "d_locations": d_locations,
            "d_distances": d_distances,
        }

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        n = self.num_records
        result = rt.launch_kernel(
            image,
            "euclid",
            grid=ceil_div(n, 256),
            block=256,
            args=[state["d_locations"], state["d_distances"], n,
                  self.lat, self.lng],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [result]

    def check(self, rt, state) -> bool:
        n = self.num_records
        out = rt.device.memcpy_dtoh(state["d_distances"], np.float32, n)
        coords = state["coords"]
        expected = np.sqrt(
            (self.lat - coords[0::2]) ** 2 + (self.lng - coords[1::2]) ** 2
        ).astype(np.float32)
        return bool(np.allclose(out, expected, rtol=1e-5, atol=1e-5))
