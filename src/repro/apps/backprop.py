"""backprop -- back-propagation training (Rodinia).

Two kernels: ``bpnn_layerforward`` (16x16 blocks reduce input x weight
products through shared memory into per-block partial sums for each
hidden unit) and ``bpnn_adjust_weights`` (the weight-update sweep).
The shared-memory tree reduction's ``ty % 2^i == 0`` guard is the
source of backprop's 27.6% divergent blocks in Table 3.

Paper input: 65536 input units; ours 1024 (64 blocks), hidden layer 16,
16x16 blocks (8 warps/CTA).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import random_vector
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram

_HEIGHT = 16
ETA = 0.3
MOMENTUM = 0.3


@kernel
def bpnn_layerforward(input_units: ptr_f32, input_weights: ptr_f32,
                      partial_sums: ptr_f32, hid: i32):
    by = ctaid_y
    tx = tid_x
    ty = tid_y
    index = (hid + 1) * 16 * by + (hid + 1) * ty + tx + 1 + (hid + 1)
    index_in = 16 * by + ty + 1

    input_node = shared(f32, 16)
    weight_matrix = shared(f32, 256)

    if tx == 0:
        input_node[ty] = input_units[index_in]
    syncthreads()
    weight_matrix[ty * 16 + tx] = input_weights[index]
    syncthreads()
    weight_matrix[ty * 16 + tx] = weight_matrix[ty * 16 + tx] * input_node[ty]
    syncthreads()

    power_two = 2
    while power_two <= 16:
        if ty % power_two == 0:
            weight_matrix[ty * 16 + tx] = (
                weight_matrix[ty * 16 + tx]
                + weight_matrix[(ty + power_two // 2) * 16 + tx]
            )
        syncthreads()
        power_two = power_two * 2

    if ty == 0:
        partial_sums[by * hid + tx] = weight_matrix[tx]


@kernel
def bpnn_adjust_weights(delta: ptr_f32, hid: i32, ly: ptr_f32,
                        w: ptr_f32, oldw: ptr_f32):
    by = ctaid_y
    tx = tid_x
    ty = tid_y
    index = (hid + 1) * 16 * by + (hid + 1) * ty + tx + 1 + (hid + 1)
    index_y = 16 * by + ty + 1
    index_x = tx + 1
    adjust = 0.3 * delta[index_x] * ly[index_y] + 0.3 * oldw[index]
    w[index] = w[index] + adjust
    oldw[index] = adjust


class BackpropProgram(GPUProgram):
    name = "backprop"
    kernels = (bpnn_layerforward, bpnn_adjust_weights)
    warps_per_cta = 8  # 16x16 blocks (Table 2)

    def __init__(self, input_units: int = 1024, hidden: int = 16,
                 seed: int = 29):
        if input_units % _HEIGHT:
            raise ValueError("input layer must be a multiple of 16")
        if hidden != 16:
            raise ValueError("this kernel shape fixes the hidden layer at 16")
        self.n_in = input_units
        self.hid = hidden
        self.seed = seed

    @host_function
    def prepare(self, rt):
        n_in, hid = self.n_in, self.hid
        num_blocks = n_in // _HEIGHT
        # Layouts follow Rodinia: unit 0 is the bias, hence the +1s.
        units = np.zeros(n_in + 1, dtype=np.float32)
        units[1:] = random_vector(n_in, self.seed)
        weights = random_vector((n_in + 1) * (hid + 1), self.seed + 1)
        weights = weights.astype(np.float32)
        delta = random_vector(hid + 1, self.seed + 2)
        oldw = np.zeros((n_in + 1) * (hid + 1), dtype=np.float32)

        h_units = rt.host_wrap(units, "h_input_units")
        h_weights = rt.host_wrap(weights.copy(), "h_input_weights")
        h_delta = rt.host_wrap(delta, "h_hidden_delta")
        h_oldw = rt.host_wrap(oldw.copy(), "h_input_prev_weights")

        d = {
            "units": units, "weights": weights, "delta": delta, "oldw": oldw,
            "num_blocks": num_blocks,
        }
        d["d_units"] = rt.cuda_malloc(units.nbytes, "d_input_units")
        d["d_weights"] = rt.cuda_malloc(weights.nbytes, "d_input_weights")
        d["d_partial"] = rt.cuda_malloc(4 * num_blocks * hid,
                                        "d_hidden_partial_sum")
        d["d_delta"] = rt.cuda_malloc(delta.nbytes, "d_hidden_delta")
        d["d_oldw"] = rt.cuda_malloc(oldw.nbytes, "d_input_prev_weights")
        rt.cuda_memcpy_htod(d["d_units"], h_units)
        rt.cuda_memcpy_htod(d["d_weights"], h_weights)
        rt.cuda_memcpy_htod(d["d_delta"], h_delta)
        rt.cuda_memcpy_htod(d["d_oldw"], h_oldw)
        return d

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        num_blocks = state["num_blocks"]
        r1 = rt.launch_kernel(
            image, "bpnn_layerforward",
            grid=(1, num_blocks), block=(16, 16),
            args=[state["d_units"], state["d_weights"], state["d_partial"],
                  self.hid],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        r2 = rt.launch_kernel(
            image, "bpnn_adjust_weights",
            grid=(1, num_blocks), block=(16, 16),
            args=[state["d_delta"], self.hid, state["d_units"],
                  state["d_weights"], state["d_oldw"]],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [r1, r2]

    def check(self, rt, state) -> bool:
        n_in, hid = self.n_in, self.hid
        num_blocks = state["num_blocks"]
        units, weights = state["units"], state["weights"]
        delta, oldw = state["delta"], state["oldw"]

        # Reference partial sums: per block, sum over its 16 input rows.
        w2d = weights.reshape(n_in + 1, hid + 1)
        prods = w2d[1:, 1:] * units[1:, None]  # (n_in, hid)
        expect_partial = prods.reshape(num_blocks, _HEIGHT, hid).sum(axis=1)

        partial = rt.device.memcpy_dtoh(
            state["d_partial"], np.float32, num_blocks * hid
        ).reshape(num_blocks, hid)
        if not np.allclose(partial, expect_partial, rtol=1e-3):
            return False

        adjust = (ETA * delta[None, 1:] * units[1:, None]
                  + MOMENTUM * oldw.reshape(n_in + 1, hid + 1)[1:, 1:])
        expect_w = w2d.copy()
        expect_w[1:, 1:] += adjust
        got_w = rt.device.memcpy_dtoh(
            state["d_weights"], np.float32, (n_in + 1) * (hid + 1)
        ).reshape(n_in + 1, hid + 1)
        return bool(np.allclose(got_w[1:, 1:], expect_w[1:, 1:], rtol=1e-3))
