"""hotspot -- thermal simulation stencil (Rodinia).

Iterative 5-point stencil over a temperature grid driven by a power
map: each step reads the four neighbours (from a shared-memory tile
where possible, global memory at tile borders -- the Rodinia kernel's
halo structure) and integrates. Border clamping produces the moderate
branch divergence the paper reports (32.7%), and the tile reuse gives
hotspot its "long reuse distance + very high no-reuse" Figure 4 profile
that makes it insensitive to L1 optimizations.

Paper input: ``temp_512 power_512`` (512x512); ours 64x64, 4 steps,
16x16 blocks (8 warps/CTA).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import ceil_div, random_matrix
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram

_TILE = 16


@kernel
def hotspot_kernel(power: ptr_f32, temp_src: ptr_f32, temp_dst: ptr_f32,
                   n: i32, step_div_cap: f32, rx: f32, ry: f32, rz: f32,
                   amb: f32):
    tile = shared(f32, 256)
    tx = tid_x
    ty = tid_y
    col = ctaid_x * 16 + tx
    row = ctaid_y * 16 + ty
    idx = row * n + col
    tile[ty * 16 + tx] = temp_src[idx]
    syncthreads()

    center = tile[ty * 16 + tx]
    if row > 0:
        if ty > 0:
            north = tile[(ty - 1) * 16 + tx]
        else:
            north = temp_src[idx - n]
    else:
        north = center
    if row < n - 1:
        if ty < 15:
            south = tile[(ty + 1) * 16 + tx]
        else:
            south = temp_src[idx + n]
    else:
        south = center
    if col > 0:
        if tx > 0:
            west = tile[ty * 16 + tx - 1]
        else:
            west = temp_src[idx - 1]
    else:
        west = center
    if col < n - 1:
        if tx < 15:
            east = tile[ty * 16 + tx + 1]
        else:
            east = temp_src[idx + 1]
    else:
        east = center

    delta = step_div_cap * (
        power[idx]
        + (east + west - 2.0 * center) / rx
        + (north + south - 2.0 * center) / ry
        + (amb - center) / rz
    )
    temp_dst[idx] = center + delta


class HotspotProgram(GPUProgram):
    name = "hotspot"
    kernels = (hotspot_kernel,)
    warps_per_cta = 8  # 16x16 blocks (Table 2)

    def __init__(self, n: int = 64, steps: int = 4, seed: int = 17):
        if n % _TILE:
            raise ValueError("grid size must be a multiple of 16")
        self.n = n
        self.steps = steps
        self.seed = seed
        self.step_div_cap = 0.001
        self.rx, self.ry, self.rz = 10.0, 10.0, 4.0
        self.amb = 80.0

    @host_function
    def prepare(self, rt):
        n = self.n
        temp = (random_matrix(n, n, self.seed) * 40.0 + 50.0).astype(np.float32)
        power = random_matrix(n, n, self.seed + 1).astype(np.float32)
        h_temp = rt.host_wrap(temp.reshape(-1).copy(), "h_temp")
        h_power = rt.host_wrap(power.reshape(-1), "h_power")
        d_power = rt.cuda_malloc(power.nbytes, "d_power")
        d_t0 = rt.cuda_malloc(temp.nbytes, "d_temp0")
        d_t1 = rt.cuda_malloc(temp.nbytes, "d_temp1")
        rt.cuda_memcpy_htod(d_power, h_power)
        rt.cuda_memcpy_htod(d_t0, h_temp)
        return {"temp": temp, "power": power,
                "d_power": d_power, "d_t0": d_t0, "d_t1": d_t1}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        n = self.n
        blocks = n // _TILE
        results = []
        src, dst = state["d_t0"], state["d_t1"]
        for _ in range(self.steps):
            results.append(rt.launch_kernel(
                image, "hotspot_kernel",
                grid=(blocks, blocks), block=(_TILE, _TILE),
                args=[state["d_power"], src, dst, n, self.step_div_cap,
                      self.rx, self.ry, self.rz, self.amb],
                l1_warps_per_cta=l1_warps_per_cta,
            ))
            src, dst = dst, src
        state["final"] = src
        return results

    def check(self, rt, state) -> bool:
        n = self.n
        out = rt.device.memcpy_dtoh(state["final"], np.float32, n * n)
        temp = state["temp"].astype(np.float64).copy()
        power = state["power"].astype(np.float64)
        for _ in range(self.steps):
            padded = np.pad(temp, 1, mode="edge")
            north = padded[:-2, 1:-1]
            south = padded[2:, 1:-1]
            west = padded[1:-1, :-2]
            east = padded[1:-1, 2:]
            delta = self.step_div_cap * (
                power
                + (east + west - 2 * temp) / self.rx
                + (north + south - 2 * temp) / self.ry
                + (self.amb - temp) / self.rz
            )
            temp = temp + delta
        return bool(np.allclose(out.reshape(n, n), temp, rtol=1e-3, atol=1e-3))
