"""nw -- Needleman-Wunsch sequence alignment (Rodinia).

The DP score matrix is processed in 16x16 tiles along anti-diagonals;
within a tile, 16 threads sweep the forward and backward internal
diagonals with a ``tx <= m`` guard -- which is why nw tops Table 3 at
~69% divergent blocks. One 16-thread CTA = 1 warp (Table 2's single
warp/CTA entry). The in-tile max-of-three is a ``@device`` function,
exercising GPU-side call-path profiling.

Paper input: ``2048 10`` (2048x2048, penalty 10); ours: 128x128 in 8x8
tiles, penalty 10.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import rng
from repro.frontend import device, i32, kernel, ptr_i32
from repro.host.shadow_stack import host_function
from repro.optim.advisor import GPUProgram

_BLOCK = 16


@device
def maximum3(a: i32, b: i32, c: i32) -> i32:
    k = a
    if b > k:
        k = b
    if c > k:
        k = c
    return k


@kernel
def needle_kernel_1(reference: ptr_i32, itemsets: ptr_i32, cols: i32,
                    penalty: i32, blk: i32):
    bx = ctaid_x
    tx = tid_x
    b_index_x = bx
    b_index_y = blk - 1 - bx
    base = cols * 16 * b_index_y + 16 * b_index_x

    temp = shared(i32, 289)  # 17 x 17
    ref_s = shared(i32, 256)

    # North halo row and west halo column of the tile.
    temp[tx + 1] = itemsets[base + tx + 1]
    if tx == 0:
        temp[0] = itemsets[base]
    temp[(tx + 1) * 17] = itemsets[base + cols * (tx + 1)]
    for ty in range(16):
        ref_s[ty * 16 + tx] = reference[base + cols + 1 + cols * ty + tx]
    syncthreads()

    # Forward internal anti-diagonals.
    for m in range(16):
        if tx <= m:
            t_x = tx + 1
            t_y = m - tx + 1
            temp[t_y * 17 + t_x] = maximum3(
                temp[(t_y - 1) * 17 + t_x - 1]
                + ref_s[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty,
            )
        syncthreads()
    # Backward anti-diagonals.
    for m in range(14, -1, -1):
        if tx <= m:
            t_x = tx + 16 - m
            t_y = 16 - tx
            temp[t_y * 17 + t_x] = maximum3(
                temp[(t_y - 1) * 17 + t_x - 1]
                + ref_s[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty,
            )
        syncthreads()

    for ty in range(16):
        itemsets[base + cols + 1 + cols * ty + tx] = temp[(ty + 1) * 17 + tx + 1]


@kernel
def needle_kernel_2(reference: ptr_i32, itemsets: ptr_i32, cols: i32,
                    penalty: i32, blk: i32, block_width: i32):
    bx = ctaid_x
    tx = tid_x
    b_index_x = bx + block_width - blk
    b_index_y = block_width - bx - 1
    base = cols * 16 * b_index_y + 16 * b_index_x

    temp = shared(i32, 289)
    ref_s = shared(i32, 256)

    temp[tx + 1] = itemsets[base + tx + 1]
    if tx == 0:
        temp[0] = itemsets[base]
    temp[(tx + 1) * 17] = itemsets[base + cols * (tx + 1)]
    for ty in range(16):
        ref_s[ty * 16 + tx] = reference[base + cols + 1 + cols * ty + tx]
    syncthreads()

    for m in range(16):
        if tx <= m:
            t_x = tx + 1
            t_y = m - tx + 1
            temp[t_y * 17 + t_x] = maximum3(
                temp[(t_y - 1) * 17 + t_x - 1]
                + ref_s[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty,
            )
        syncthreads()
    for m in range(14, -1, -1):
        if tx <= m:
            t_x = tx + 16 - m
            t_y = 16 - tx
            temp[t_y * 17 + t_x] = maximum3(
                temp[(t_y - 1) * 17 + t_x - 1]
                + ref_s[(t_y - 1) * 16 + t_x - 1],
                temp[t_y * 17 + t_x - 1] - penalty,
                temp[(t_y - 1) * 17 + t_x] - penalty,
            )
        syncthreads()

    for ty in range(16):
        itemsets[base + cols + 1 + cols * ty + tx] = temp[(ty + 1) * 17 + tx + 1]


class NWProgram(GPUProgram):
    name = "nw"
    kernels = (needle_kernel_1, needle_kernel_2)
    warps_per_cta = 1  # 16-thread CTAs (Table 2)

    def __init__(self, n: int = 128, penalty: int = 10, seed: int = 37):
        if n % _BLOCK:
            raise ValueError("sequence length must be a multiple of 16")
        self.n = n
        self.penalty = penalty
        self.seed = seed

    @host_function
    def prepare(self, rt):
        n = self.n
        cols = n + 1
        r = rng(self.seed)
        # Rodinia builds reference[i][j] = blosum62[seq1[i]][seq2[j]];
        # a random similarity matrix preserves the access structure.
        reference = r.integers(-4, 10, size=(cols, cols)).astype(np.int32)
        itemsets = np.zeros((cols, cols), dtype=np.int32)
        itemsets[0, :] = -np.arange(cols, dtype=np.int32) * self.penalty
        itemsets[:, 0] = -np.arange(cols, dtype=np.int32) * self.penalty

        h_ref = rt.host_wrap(reference.reshape(-1), "h_reference")
        h_items = rt.host_wrap(itemsets.reshape(-1).copy(), "h_input_itemsets")
        d_ref = rt.cuda_malloc(reference.nbytes, "d_reference")
        d_items = rt.cuda_malloc(itemsets.nbytes, "d_input_itemsets")
        rt.cuda_memcpy_htod(d_ref, h_ref)
        rt.cuda_memcpy_htod(d_items, h_items)
        return {"reference": reference, "itemsets": itemsets,
                "d_ref": d_ref, "d_items": d_items, "cols": cols}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        cols = state["cols"]
        block_width = self.n // _BLOCK
        results = []
        for blk in range(1, block_width + 1):
            results.append(rt.launch_kernel(
                image, "needle_kernel_1", grid=blk, block=_BLOCK,
                args=[state["d_ref"], state["d_items"], cols,
                      self.penalty, blk],
                l1_warps_per_cta=l1_warps_per_cta,
            ))
        for blk in range(block_width - 1, 0, -1):
            results.append(rt.launch_kernel(
                image, "needle_kernel_2", grid=blk, block=_BLOCK,
                args=[state["d_ref"], state["d_items"], cols,
                      self.penalty, blk, block_width],
                l1_warps_per_cta=l1_warps_per_cta,
            ))
        return results

    def check(self, rt, state) -> bool:
        cols = state["cols"]
        ref = state["reference"]
        expect = state["itemsets"].astype(np.int64).copy()
        for i in range(1, cols):
            for j in range(1, cols):
                expect[i, j] = max(
                    expect[i - 1, j - 1] + ref[i, j],
                    expect[i, j - 1] - self.penalty,
                    expect[i - 1, j] - self.penalty,
                )
        got = rt.device.memcpy_dtoh(
            state["d_items"], np.int32, cols * cols
        ).reshape(cols, cols)
        return bool(np.array_equal(got[1:, 1:], expect[1:, 1:]))
