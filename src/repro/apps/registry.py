"""The benchmark registry (Table 2 of the paper).

Maps application names to builders plus the Table 2 metadata (warps per
CTA, the paper's input, our scaled input). ``build_app(name)`` returns
a ready-to-profile :class:`~repro.optim.advisor.GPUProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ReproError
from repro.apps.backprop import BackpropProgram
from repro.apps.bfs import BFSProgram
from repro.apps.bicg import BicgProgram
from repro.apps.hotspot import HotspotProgram
from repro.apps.lavamd import LavaMDProgram
from repro.apps.nn import NNProgram
from repro.apps.nw import NWProgram
from repro.apps.srad import SradProgram
from repro.apps.syr2k import Syr2kProgram
from repro.apps.syrk import SyrkProgram


@dataclass(frozen=True)
class AppInfo:
    """One Table 2 row."""

    name: str
    description: str
    warps_per_cta: int
    paper_input: str
    our_input: str
    source: str
    builder: Callable


TABLE2: Tuple[AppInfo, ...] = (
    AppInfo("backprop", "Back Propagation", 8, "65536",
            "1024 inputs, 16 hidden", "Rodinia", BackpropProgram),
    AppInfo("bfs", "Breadth First Search", 16, "graph1MW_6.txt",
            "synthetic 2048-node degree-6 graph", "Rodinia", BFSProgram),
    AppInfo("hotspot", "Temperature Simulation", 8, "temp_512 power_512",
            "64x64 grid, 4 steps", "Rodinia", HotspotProgram),
    AppInfo("lavaMD", "Molecular Dynamics", 4, "-boxes1d 10",
            "boxes1d=2, 72 particles/box", "Rodinia", LavaMDProgram),
    AppInfo("nn", "Nearest Neighbor", 8,
            "filelist_4 -r 5 -lat 30 -lng 90",
            "4096 records, lat 30 lng 90", "Rodinia", NNProgram),
    AppInfo("nw", "Needleman-Wunsch", 1, "2048 10",
            "128x128, penalty 10", "Rodinia", NWProgram),
    AppInfo("srad_v2", "Speckle Reducing Anisotropic Diffusion", 8,
            "2048 2048 0 127 0 127 0.5 2", "64x64, lambda 0.5, 2 iters",
            "Rodinia", SradProgram),
    AppInfo("bicg", "BiCGStab Linear Solver kernels", 8, "1024*1024",
            "128x128", "Polybench", BicgProgram),
    AppInfo("syrk", "Symmetric Rank-K Operations", 8, "default",
            "64x64", "Polybench", SyrkProgram),
    AppInfo("syr2k", "Symmetric Rank-2K Operations", 8, "default",
            "64x64", "Polybench", Syr2kProgram),
)

_BY_NAME: Dict[str, AppInfo] = {info.name: info for info in TABLE2}

APP_NAMES: Tuple[str, ...] = tuple(info.name for info in TABLE2)


def app_info(name: str) -> AppInfo:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown app {name!r}; available: {', '.join(APP_NAMES)}"
        ) from None


def build_app(name: str, **kwargs):
    """Instantiate one of the Table 2 benchmarks."""
    return app_info(name).builder(**kwargs)
