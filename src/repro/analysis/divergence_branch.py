"""Branch-divergence analysis (case study C, Table 3).

From the basic-block instrumentation: every ``passBasicBlock`` event is
one dynamic basic-block execution by one warp; it is **divergent** when
its active mask is a proper subset of the warp's resident threads (the
warp entered the block with some threads masked off). Table 3 reports,
per application, the number of divergent block executions, the total
number of block executions and their ratio. The analysis also breaks
the counts down per static block, which tells the programmer *which*
branch diverges (the paper: "how often a certain branch causes a warp
to diverge").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.profiler.records import BlockRecord


@dataclass
class _BlockSiteStats:
    executions: int = 0
    divergent: int = 0
    line: int = 0

    @property
    def divergence_rate(self) -> float:
        return self.divergent / self.executions if self.executions else 0.0


@dataclass
class BranchDivergenceProfile:
    """Table 3 row plus per-block breakdown for one kernel/app."""

    total_blocks: int = 0
    divergent_blocks: int = 0
    per_block: Dict[str, _BlockSiteStats] = field(default_factory=dict)

    def add(self, record: BlockRecord) -> None:
        self.total_blocks += 1
        stats = self.per_block.get(record.block_name)
        if stats is None:
            stats = _BlockSiteStats(line=record.line)
            self.per_block[record.block_name] = stats
        stats.executions += 1
        if record.divergent:
            self.divergent_blocks += 1
            stats.divergent += 1

    def merge(self, other: "BranchDivergenceProfile") -> None:
        self.total_blocks += other.total_blocks
        self.divergent_blocks += other.divergent_blocks
        for name, stats in other.per_block.items():
            mine = self.per_block.setdefault(name, _BlockSiteStats(line=stats.line))
            mine.executions += stats.executions
            mine.divergent += stats.divergent

    @property
    def divergence_percent(self) -> float:
        """The Table 3 "% divergence" column."""
        if not self.total_blocks:
            return 0.0
        return 100.0 * self.divergent_blocks / self.total_blocks

    def worst_blocks(self, n: int = 5) -> List[Tuple[str, _BlockSiteStats]]:
        """The most-divergent static blocks, for optimization targeting."""
        ranked = sorted(
            self.per_block.items(), key=lambda kv: -kv[1].divergent
        )
        return ranked[:n]


def branch_divergence_analysis(profile) -> BranchDivergenceProfile:
    """Run over one :class:`KernelProfile` (requires "blocks" mode)."""
    result = BranchDivergenceProfile()
    for record in profile.block_records:
        result.add(record)
    return result
