"""Text renderings of analysis results (the tool's terminal output).

Formats every case-study result the way the artifact's
``showoutput.sh`` presents them: reuse-distance histograms (Figure 4),
memory-divergence distributions (Figure 5), the branch-divergence table
(Table 3) and bypass-evaluation tables (Figures 6-7).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.divergence_branch import BranchDivergenceProfile
from repro.analysis.divergence_memory import MemoryDivergenceProfile
from repro.analysis.reuse_distance import PAPER_BUCKETS, ReuseDistanceHistogram

_BAR_WIDTH = 40


def _bar(fraction: float) -> str:
    filled = int(round(fraction * _BAR_WIDTH))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def render_reuse_histogram(app: str, hist: ReuseDistanceHistogram) -> str:
    lines = [
        f"Reuse distance ({hist.model.value} model) -- {app}, "
        f"{hist.samples} samples, avg finite R.D. = {hist.average_distance:.1f}"
    ]
    freqs = hist.frequencies
    for label, _, _ in PAPER_BUCKETS:
        f = freqs[label]
        lines.append(f"  {label:>7} | {_bar(f)} {100 * f:5.1f}%")
    f = freqs["inf"]
    lines.append(f"  {'inf':>7} | {_bar(f)} {100 * f:5.1f}%")
    return "\n".join(lines)


def render_divergence_distribution(
    app: str, profile: MemoryDivergenceProfile
) -> str:
    lines = [
        f"Memory divergence ({profile.line_size}B lines) -- {app}, "
        f"{profile.instructions} warp instructions, "
        f"degree = {profile.divergence_degree:.2f}"
    ]
    for lines_touched, fraction in profile.distribution.items():
        lines.append(
            f"  {lines_touched:>3} lines | {_bar(fraction)} {100 * fraction:5.1f}%"
        )
    return "\n".join(lines)


def render_branch_table(
    rows: Mapping[str, BranchDivergenceProfile]
) -> str:
    """The Table 3 layout."""
    lines = [
        f"{'Application':<12} {'# divergent blocks':>20} "
        f"{'# total blocks':>16} {'% divergence':>14}"
    ]
    for app, profile in rows.items():
        lines.append(
            f"{app:<12} {profile.divergent_blocks:>20} "
            f"{profile.total_blocks:>16} {profile.divergence_percent:>13.2f}%"
        )
    return "\n".join(lines)


def render_buffer_accounting(app: str, profiles: Sequence) -> str:
    """Per-launch trace-buffer accounting (drops, spill, corruption).

    Only meaningful when a launch overflowed its buffer capacity or
    spilled segments to disk (see docs/reliability.md); the CLI prints
    it only in that case.
    """
    lines = [
        f"Trace buffers -- {app}",
        f"{'kernel':<20} {'kept':>10} {'dropped':>9} "
        f"{'spilled':>9} {'corrupt':>9}",
    ]
    for p in profiles:
        kept = (
            len(p.memory_records) + len(p.block_records)
            + len(p.arith_records)
        )
        lines.append(
            f"{p.kernel:<20} {kept:>10} {p.dropped_records:>9} "
            f"{p.spilled_records:>9} {p.corrupt_records:>9}"
        )
    return "\n".join(lines)


def render_heatmap(app: str, heatmap) -> str:
    """The CUTHERMO-style terminal heat map (``repro profile --heatmap``).

    One row per device allocation, one character per display time
    bucket; character density encodes the bucket's access count scaled
    to the hottest cell of the whole map (space = untouched). Row
    totals (accesses, distinct bytes touched) follow each strip --
    ``heatmap`` is a resolved
    :class:`~repro.analysis.heatmap.MemoryHeatmap`.
    """
    shades = " .:-=+*#%@"
    lines = [
        f"Memory heat map -- {app}: {len(heatmap.rows)} allocations x "
        f"{heatmap.time_buckets} time buckets "
        f"({heatmap.granule_bytes}B granules, "
        f"{heatmap.cell_rows} accesses/CTA per cell)",
        f"  intensity: '{shades[1]}' low .. '{shades[-1]}' hot "
        f"(accesses per bucket, scaled to the hottest cell)",
    ]
    if not heatmap.time_buckets:
        lines.append("  (no memory accesses recorded)")
        return "\n".join(lines)
    peak = max(
        (r + w for row in heatmap.rows
         for r, w in zip(row.reads, row.writes)),
        default=0,
    )
    name_width = max(
        [len(row.name) for row in heatmap.rows] + [len("allocation")]
    )
    header = (
        f"  {'allocation':<{name_width}} |{'time ->':<{heatmap.time_buckets}}"
        f"| {'accesses':>9} {'bytes touched':>14}"
    )
    lines.append(header)
    for row in heatmap.rows:
        strip = []
        for r, w in zip(row.reads, row.writes):
            total = r + w
            if not total:
                strip.append(" ")
            else:
                # ceil-scale so any activity gets at least the faintest
                # shade and only the peak cell gets the hottest.
                idx = 1 + (total * (len(shades) - 2)) // max(peak, 1)
                strip.append(shades[min(idx, len(shades) - 1)])
        touched = sum(row.unique_bytes)
        lines.append(
            f"  {row.name:<{name_width}} |{''.join(strip)}| "
            f"{row.accesses:>9} {touched:>13}B"
        )
    return "\n".join(lines)


def render_jit_cache(app: str, stats: Optional[dict]) -> str:
    """JIT trace-cache counters for one profiled run (batched backend).

    ``stats`` is ``JitCacheStats.snapshot()``: specialization hits and
    misses plus decode-stream reuses. A healthy multi-launch run shows
    hits dominating misses (each kernel is specialized once, then every
    later launch of the same module is a cache hit). ``None`` (the
    interpreter backend keeps no JIT cache) renders an explicit
    placeholder so verbose output always shows the section.
    """
    if stats is None:
        return (
            f"JIT trace cache -- {app}\n"
            f"  (none: the JIT trace cache only runs under "
            f"--backend batched)"
        )
    total = stats.get("hits", 0) + stats.get("misses", 0)
    rate = stats.get("hits", 0) / total if total else 0.0
    lines = [
        f"JIT trace cache -- {app}",
        f"{'hits':>8} {'misses':>8} {'specialized':>12} "
        f"{'decode reuses':>14} {'hit rate':>9}",
        f"{stats.get('hits', 0):>8} {stats.get('misses', 0):>8} "
        f"{stats.get('specializations', 0):>12} "
        f"{stats.get('decode_reuses', 0):>14} {rate:>8.0%}",
    ]
    return "\n".join(lines)


def render_stream_stats(app: str, profiles: Sequence) -> str:
    """Streaming-drain counters for one profiled run (--streaming-drain).

    One row per kernel instance that drained through the analyzer bank:
    segments streamed, the peak number of trace rows resident during
    the drain (the O(segment) guarantee, vs total kept rows), and the
    rows dropped (capacity, sampling clip, corrupt segments). Without
    any streamed launch the section renders an explicit placeholder so
    verbose output always shows it.
    """
    if not any(p.stream_stats is not None for p in profiles):
        return (
            f"Streaming drain -- {app}\n"
            f"  (none: traces were drained in RAM; enable with "
            f"--streaming-drain)"
        )
    lines = [
        f"Streaming drain -- {app}",
        f"{'kernel':<20} {'segments':>9} {'peak rows':>10} "
        f"{'kept rows':>10} {'dropped':>9}",
    ]
    for p in profiles:
        if p.stream_stats is None:
            continue
        s = p.stream_stats
        kept = s["memory_rows"] + s["block_rows"] + s["arith_rows"]
        lines.append(
            f"{p.kernel:<20} {s['segments_streamed']:>9} "
            f"{s['peak_resident_rows']:>10} {kept:>10} "
            f"{p.dropped_records:>9}"
        )
    return "\n".join(lines)


def render_bypass_table(
    arch_label: str,
    rows: Sequence[Tuple[str, float, float, int, int]],
) -> str:
    """Figures 6/7 as a table.

    ``rows`` entries: (app, oracle_norm_time, predicted_norm_time,
    oracle_warps, predicted_warps); times normalized to the no-bypass
    baseline (1.0).
    """
    lines = [
        f"Horizontal bypassing on {arch_label} (normalized exec time, "
        f"baseline = 1.0)",
        f"{'Application':<12} {'oracle':>8} {'pred':>8} "
        f"{'oracle warps':>13} {'pred warps':>11}",
    ]
    for app, oracle_t, pred_t, oracle_w, pred_w in rows:
        lines.append(
            f"{app:<12} {oracle_t:>8.3f} {pred_t:>8.3f} "
            f"{oracle_w:>13} {pred_w:>11}"
        )
    return "\n".join(lines)
