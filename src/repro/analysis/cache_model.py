"""Reuse-distance-theoretic cache modelling.

The paper motivates reuse distance as the tool for cache-design studies
("combined with other detailed information ... it can be used to help
architects predict optimal cache design such as size and
associativity", citing Nugteren et al.'s reuse-distance GPU cache
model). This module implements that use case:

* :func:`stack_distances` -- exact LRU **stack** distances for a
  per-CTA line trace under GPU write semantics (write-evict /
  write-no-allocate). Unlike plain reuse distances, intervening writes
  are handled the way the cache handles them: a write drops its line
  but leaves a *hole* in the stack (the freed way cannot undo a
  capacity eviction that already happened deeper in the stack); a cold
  fill consumes the topmost hole, and a re-reference from below a hole
  sinks that hole to the referenced depth. With that accounting the
  classic theorem holds exactly: *a read hits a fully-associative LRU
  cache of capacity C iff its stack distance is < C*.
* :func:`hit_rate_curve` -- predicted hit rate for every candidate
  capacity from one pass over the trace.
* :func:`recommend_l1_size` -- the smallest capacity within a tolerance
  of the best achievable hit rate (the "optimal cache size" question).
"""

from __future__ import annotations

import bisect
import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reuse_distance import (
    _Fenwick,
    _column_event_streams,
    INFINITE,
    ReuseDistanceModel,
)
from repro.profiler.buffers import MemoryColumns
from repro.profiler.records import MemoryAccessRecord, MemoryOp


def stack_distances(events: Sequence[Tuple[int, bool]]) -> List[int]:
    """LRU stack distance per read of a (line, is_write) stream.

    Returns one entry per *read*: the number of occupied stack slots
    (distinct lines plus write-evict holes) above the accessed line in
    the LRU stack (INFINITE when the line is not resident -- first touch
    or killed by a write).
    """
    n = len(events)
    tree = _Fenwick(n)
    position: Dict[int, int] = {}  # line -> time of its stack slot
    holes: List[int] = []  # max-heap (negated) of write-evict hole slots
    samples: List[int] = []

    for t, (line, is_write) in enumerate(events):
        prev = position.get(line)
        if is_write:
            # Write-evict / write-no-allocate: the line is dropped but
            # its slot stays as a hole -- the freed way cannot undo a
            # capacity eviction that already happened below this depth.
            if prev is not None:
                heapq.heappush(holes, -prev)
                del position[line]
            continue
        if prev is None:
            samples.append(INFINITE)
            # A cold fill occupies the freed way of every cache deep
            # enough to see the topmost hole; consume it.
            if holes:
                tree.add(-heapq.heappop(holes), -1)
        else:
            samples.append(tree.range_sum(prev + 1, t - 1))
            if holes and -holes[0] > prev:
                # Caches too small to hold the line (hole above it in
                # their LRU window) fill the free way; caches that hit
                # keep their hole at the same count. Both are captured
                # by sinking the topmost hole to the line's old slot:
                # the hole's slot empties, the line's old slot becomes
                # the hole.
                hole = -heapq.heapreplace(holes, -prev)
                tree.add(hole, -1)
            else:
                tree.add(prev, -1)
        tree.add(t, +1)
        position[line] = t
    return samples


@dataclass
class HitRateCurve:
    """Predicted read-hit rate as a function of capacity (in lines)."""

    capacities: List[int]
    hit_rates: List[float]
    reads: int
    line_size: int

    def rate_at(self, capacity: int) -> float:
        best = 0.0
        for c, r in zip(self.capacities, self.hit_rates):
            if c <= capacity:
                best = r
        return best

    @property
    def max_rate(self) -> float:
        return self.hit_rates[-1] if self.hit_rates else 0.0

    def render(self, label: str = "") -> str:
        lines = [f"Predicted L1 hit rate vs capacity {label}".rstrip()]
        for c, r in zip(self.capacities, self.hit_rates):
            kb = c * self.line_size / 1024
            lines.append(f"  {kb:7.1f} KB ({c:5d} lines): {100 * r:5.1f}%")
        return "\n".join(lines)


@dataclass
class StackDistanceSummary:
    """Exact stack-distance histogram: distance -> number of reads.

    The streaming drain's compact replacement for the raw sample list
    (:class:`~repro.analysis.aggregates.StackDistanceAggregate` emits
    one): it holds every finite distance with its multiplicity plus the
    ∞ count, which is all :func:`hit_rate_curve` ever consumes -- so
    the derived curve is float-for-float identical to the in-RAM path,
    at O(distinct distances) memory instead of O(reads).
    """

    counts: Counter  # finite stack distance -> read count
    infinite: int = 0
    line_size: int = 128

    @property
    def reads(self) -> int:
        return self.infinite + sum(self.counts.values())

    def curve(self, capacities: Sequence[int],
              line_size: Optional[int] = None) -> HitRateCurve:
        """Same mapping as :func:`hit_rate_curve` over the raw samples:
        a read with finite distance d hits the first capacity > d."""
        capacities = sorted(capacities)
        counts = [0] * len(capacities)
        reads = self.reads
        for d, c in sorted(self.counts.items()):
            i = bisect.bisect_right(capacities, d)
            if i < len(capacities):
                counts[i] += c
        running = 0
        rates: List[float] = []
        for count in counts:
            running += count
            rates.append(running / reads if reads else 0.0)
        return HitRateCurve(
            list(capacities), rates, reads,
            self.line_size if line_size is None else line_size,
        )


def hit_rate_curve(
    distance_samples: Iterable[int],
    capacities: Sequence[int],
    line_size: int = 128,
) -> HitRateCurve:
    """Evaluate every candidate capacity from precomputed distances.

    Accepts either an iterable of raw distance samples or a
    :class:`StackDistanceSummary` (the streaming drain's histogram).
    """
    if isinstance(distance_samples, StackDistanceSummary):
        return distance_samples.curve(capacities, line_size)
    capacities = sorted(capacities)
    counts = [0] * len(capacities)
    reads = 0
    for d in distance_samples:
        reads += 1
        if d == INFINITE:
            continue
        for i, c in enumerate(capacities):
            if d < c:
                counts[i] += 1
                break
    # Prefix-sum: capacity c captures every distance below it.
    running = 0
    rates = []
    for count in counts:
        running += count
        rates.append(running / reads if reads else 0.0)
    return HitRateCurve(list(capacities), rates, reads, line_size)


def profile_stack_distances(
    profile, line_size: int = 128
) -> List[int]:
    """Per-CTA line-granular stack distances for one kernel profile."""
    samples: List[int] = []
    records = profile.memory_records
    if isinstance(records, MemoryColumns):
        for lines, writes in _column_event_streams(
            records, ReuseDistanceModel.CACHE_LINE, line_size
        ):
            samples.extend(
                stack_distances(list(zip(lines.tolist(), writes.tolist())))
            )
        return samples
    for cta, cta_records in sorted(profile.memory_records_by_cta().items()):
        events: List[Tuple[int, bool]] = []
        for record in cta_records:
            is_write = record.op in (MemoryOp.STORE, MemoryOp.ATOMIC)
            for addr in record.active_addresses():
                events.append((int(addr) // line_size, is_write))
        samples.extend(stack_distances(events))
    return samples


@dataclass
class CacheSizeRecommendation:
    curve: HitRateCurve
    recommended_lines: int
    recommended_bytes: int
    achieved_rate: float
    tolerance: float

    def render(self) -> str:
        return (
            f"smallest L1 within {100 * self.tolerance:.0f}% of the best "
            f"achievable hit rate: {self.recommended_bytes // 1024} KB "
            f"({self.recommended_lines} lines, predicted "
            f"{100 * self.achieved_rate:.1f}% hits)"
        )


def recommend_l1_size(
    profile,
    line_size: int = 128,
    capacities: Optional[Sequence[int]] = None,
    tolerance: float = 0.02,
) -> CacheSizeRecommendation:
    """The architect's question: how much L1 does this kernel want?"""
    if capacities is None:
        capacities = [2 ** k for k in range(4, 13)]  # 16 .. 4096 lines
    distances = profile_stack_distances(profile, line_size)
    curve = hit_rate_curve(distances, capacities, line_size)
    target = curve.max_rate - tolerance
    chosen = curve.capacities[-1]
    achieved = curve.max_rate
    for c, r in zip(curve.capacities, curve.hit_rates):
        if r >= target:
            chosen, achieved = c, r
            break
    return CacheSizeRecommendation(
        curve=curve,
        recommended_lines=chosen,
        recommended_bytes=chosen * line_size,
        achieved_rate=achieved,
        tolerance=tolerance,
    )
