"""CUTHERMO-style memory heat maps: per-allocation x time intensity.

Aggregate metrics (reuse histograms, divergence degrees) answer *how
much* inefficiency a kernel has; a heat map answers *where* and *when*.
This module bins every instrumented memory access into
``(address granule, time cell)`` intensity cells -- lane-level read and
write counts plus the exact set of distinct bytes touched -- and
resolves the granules against the data-centric allocation map
(:mod:`repro.profiler.datacentric`) into one intensity matrix per data
object, the per-allocation x time view of CUTHERMO (PAPERS.md).

Two coordinate choices make the result identical across every drain
and execution configuration the profiler supports:

* **Space** is the fixed-size *address granule* (``granule_bytes``,
  default 256 -- the device allocator's alignment, so a granule never
  straddles two allocations). Granules are resolved to allocations
  only at :meth:`HeatmapTable.resolve` time; the aggregate itself
  never needs the allocation table, so the analyzer plan can be built
  before the program has allocated anything.
* **Time** is the *per-CTA event phase*: a CTA's k-th kept memory
  instruction lands in time cell ``k // cell_rows``. Each CTA's stream
  appears in trace order in every drain path, and CTA partitions are
  disjoint across fork shards, so the phase of every event -- unlike a
  raw global sequence number, which shard-local streaming banks do not
  preserve -- is invariant under segment boundaries, shard merges, and
  backend choice. Aligning CTAs by phase also reads naturally: for
  SIMT kernels the phase axis is "how far through its work each CTA
  is", which is the execution-time axis CUTHERMO plots.

:class:`HeatmapAggregate` follows the ``update`` / ``merge`` /
``finalize`` contract of :mod:`repro.analysis.aggregates`, so heat maps
stream through the out-of-core drain, merge across fork shards, and
respect stride sampling and capacity exactly like every other analysis
-- byte-identity is pinned by ``tests/test_heatmap.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reuse_distance import _cta_row_segments
from repro.errors import AnalysisError
from repro.profiler.buffers import MemoryColumns
from repro.profiler.records import MemoryOp

#: Default bytes per address granule. Matches the device allocator's
#: 256-byte alignment so one granule maps to at most one allocation.
DEFAULT_GRANULE = 256

#: Default kept memory instructions per CTA per time cell.
DEFAULT_CELL_ROWS = 256


class _Cell:
    """One (granule, time-cell) intensity cell."""

    __slots__ = ("reads", "writes", "bits")

    def __init__(self, nbits: int):
        self.reads = 0
        self.writes = 0
        #: bitmap over the granule's bytes (distinct-byte tracking).
        self.bits = np.zeros(nbits, dtype=np.uint8)

    def merge(self, other: "_Cell") -> None:
        self.reads += other.reads
        self.writes += other.writes
        np.bitwise_or(self.bits, other.bits, out=self.bits)

    @property
    def unique_bytes(self) -> int:
        return int(np.unpackbits(self.bits).sum())


class HeatmapAggregate:
    """Streaming heat-map builder (``update``/``merge``/``finalize``).

    Duck-typed to :class:`repro.analysis.aggregates.SegmentAggregate`
    (kept import-light so the aggregates module stays the single place
    that wires plans together); consumes the ``memory`` stream.
    """

    stream = "memory"

    def __init__(self, cell_rows: int = DEFAULT_CELL_ROWS,
                 granule_bytes: int = DEFAULT_GRANULE):
        if cell_rows < 1:
            raise AnalysisError("heat-map cell_rows must be >= 1")
        if granule_bytes < 8 or granule_bytes & (granule_bytes - 1):
            raise AnalysisError(
                "heat-map granule_bytes must be a power of two >= 8"
            )
        self.cell_rows = cell_rows
        self.granule_bytes = granule_bytes
        #: per-CTA kept-row phase cursor, carried across segments.
        self._phase: Dict[int, int] = {}
        self._cells: Dict[Tuple[int, int], _Cell] = {}

    # -- the SegmentAggregate contract --------------------------------------
    def update(self, cols: MemoryColumns) -> None:
        granule = self.granule_bytes
        nbits = granule // 8
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            base = self._phase.get(cta, 0)
            n = len(rows)
            self._phase[cta] = base + n
            cells = (base + np.arange(n, dtype=np.int64)) // self.cell_rows
            mask = cols.mask[rows]
            addrs = cols.addresses[rows]
            widths = np.maximum(cols.bits[rows].astype(np.int64) >> 3, 1)
            is_write = cols.op[rows] != int(MemoryOp.LOAD)
            lane_cell = np.broadcast_to(cells[:, None], mask.shape)[mask]
            lane_addr = addrs[mask]
            lane_width = np.broadcast_to(widths[:, None], mask.shape)[mask]
            lane_write = np.broadcast_to(is_write[:, None], mask.shape)[mask]
            if not lane_addr.size:
                continue
            self._count(lane_addr, lane_cell, lane_write)
            self._mark_bytes(lane_addr, lane_cell, lane_width, nbits)

    def _count(self, lane_addr, lane_cell, lane_write) -> None:
        """Accumulate lane-level read/write counts per (granule, cell)."""
        keys = np.stack([lane_addr // self.granule_bytes, lane_cell], axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        k = len(uniq)
        writes = np.bincount(inverse[lane_write], minlength=k)
        totals = np.bincount(inverse, minlength=k)
        nbits = self.granule_bytes // 8
        for j in range(k):
            key = (int(uniq[j, 0]), int(uniq[j, 1]))
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _Cell(nbits)
            cell.writes += int(writes[j])
            cell.reads += int(totals[j] - writes[j])

    def _mark_bytes(self, lane_addr, lane_cell, lane_width, nbits) -> None:
        """Set the bitmap bit of every byte each lane access touches.

        Expanded one byte-offset at a time (widths are <= 16), so the
        temporary arrays stay O(lanes) per step; an access whose last
        byte crosses a granule boundary marks bytes in both granules.
        """
        positions: List[np.ndarray] = []
        cells: List[np.ndarray] = []
        for k in range(int(lane_width.max())):
            sel = lane_width > k
            positions.append(lane_addr[sel] + k)
            cells.append(lane_cell[sel])
        pos = np.concatenate(positions)
        cell = np.concatenate(cells)
        keys = np.stack([pos // self.granule_bytes, cell], axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        order = np.argsort(inverse, kind="stable")
        bounds = np.cumsum(np.bincount(inverse))[:-1]
        groups = np.split((pos % self.granule_bytes)[order], bounds)
        bitval = np.left_shift(
            np.uint8(1), np.arange(8, dtype=np.uint8)
        )
        for j in range(len(uniq)):
            key = (int(uniq[j, 0]), int(uniq[j, 1]))
            target = self._cells.get(key)
            if target is None:
                target = self._cells[key] = _Cell(nbits)
            bits = groups[j]
            np.bitwise_or.at(target.bits, bits >> 3, bitval[bits & 7])

    def merge(self, other: "HeatmapAggregate") -> None:
        if (other.cell_rows != self.cell_rows
                or other.granule_bytes != self.granule_bytes):
            raise AnalysisError(
                "cannot merge heat-map aggregates with different binning"
            )
        overlap = self._phase.keys() & other._phase.keys()
        if overlap:
            raise AnalysisError(
                f"cannot merge heat-map aggregates with overlapping CTAs "
                f"(e.g. {sorted(overlap)[:3]}): shard partitions must be "
                f"disjoint"
            )
        self._phase.update(other._phase)
        for key, cell in other._cells.items():
            mine = self._cells.get(key)
            if mine is None:
                self._cells[key] = cell
            else:
                mine.merge(cell)

    def finalize(self) -> "HeatmapTable":
        return HeatmapTable(
            granule_bytes=self.granule_bytes,
            cell_rows=self.cell_rows,
            cells=self._cells,
        )


@dataclass
class HeatmapTable:
    """Finalized granule-resolution heat map of one or more launches.

    ``cells`` maps ``(granule, time_cell)`` to intensity; ``merge``
    *concatenates timelines* (a session's launches run one after
    another), shifting the peer's time cells past this table's span --
    so a multi-kernel app reads as one continuous execution, exactly
    the CUTHERMO presentation. Allocation names enter only at
    :meth:`resolve`.
    """

    granule_bytes: int = DEFAULT_GRANULE
    cell_rows: int = DEFAULT_CELL_ROWS
    cells: Dict[Tuple[int, int], _Cell] = field(default_factory=dict)

    @property
    def time_cells(self) -> int:
        """Cells along the time axis (max occupied cell + 1)."""
        if not self.cells:
            return 0
        return max(cell for _, cell in self.cells) + 1

    def merge(self, other: "HeatmapTable") -> None:
        """Append ``other``'s timeline after this one (launch order)."""
        if (other.cell_rows != self.cell_rows
                or other.granule_bytes != self.granule_bytes):
            raise AnalysisError(
                "cannot merge heat-map tables with different binning"
            )
        shift = self.time_cells
        for (granule, cell), data in other.cells.items():
            key = (granule, cell + shift)
            mine = self.cells.get(key)
            if mine is None:
                self.cells[key] = data
            else:  # pragma: no cover - shift guarantees fresh keys
                mine.merge(data)

    def resolve(self, allocations: Sequence, time_buckets: int = 64
                ) -> "MemoryHeatmap":
        """Join granules against the allocation map; re-bin time.

        ``allocations`` is a sequence of objects with ``name``, ``base``,
        ``end`` and ``site`` attributes
        (:class:`~repro.host.runtime.DeviceAllocationRecord`); accesses
        outside every allocation fall into one trailing ``(unmapped)``
        row. The time axis is re-binned from ``time_cells`` physical
        cells to at most ``time_buckets`` display buckets; distinct-byte
        bitmaps are unioned *before* counting, so ``unique_bytes`` stays
        exact under re-binning.
        """
        if time_buckets < 1:
            raise AnalysisError("time_buckets must be >= 1")
        granule = self.granule_bytes
        by_granule: Dict[int, int] = {}
        rows: List[AllocationHeatmap] = []
        for record in allocations:
            rows.append(AllocationHeatmap(
                name=record.name,
                base=int(record.base),
                nbytes=int(record.end - record.base),
                site=getattr(record, "site", ""),
            ))
            for g in range(int(record.base) // granule,
                           (int(record.end) - 1) // granule + 1):
                by_granule[g] = len(rows) - 1
        unmapped = AllocationHeatmap(
            name="(unmapped)", base=0, nbytes=0, site="")
        span = self.time_cells
        buckets = min(time_buckets, span) if span else 0
        for row in rows + [unmapped]:
            row.reads = [0] * buckets
            row.writes = [0] * buckets
            row._bits = {}
        for (g, cell), data in sorted(self.cells.items()):
            row = rows[by_granule[g]] if g in by_granule else unmapped
            b = cell * buckets // span
            row.reads[b] += data.reads
            row.writes[b] += data.writes
            union = row._bits.get((g, b))
            if union is None:
                row._bits[(g, b)] = data.bits.copy()
            else:
                np.bitwise_or(union, data.bits, out=union)
        for row in rows + [unmapped]:
            counts = [0] * buckets
            for (_, b), bits in row._bits.items():
                counts[b] += int(np.unpackbits(bits).sum())
            row.unique_bytes = counts
            del row._bits
        if unmapped.accesses:
            rows.append(unmapped)
        return MemoryHeatmap(
            granule_bytes=granule,
            cell_rows=self.cell_rows,
            time_cells=span,
            time_buckets=buckets,
            rows=rows,
        )


@dataclass
class AllocationHeatmap:
    """One allocation's intensity series (a row of the heat map)."""

    name: str
    base: int
    nbytes: int
    site: str
    reads: List[int] = field(default_factory=list)
    writes: List[int] = field(default_factory=list)
    unique_bytes: List[int] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        return sum(self.reads) + sum(self.writes)


@dataclass
class MemoryHeatmap:
    """The resolved per-allocation x time heat map."""

    granule_bytes: int
    cell_rows: int
    time_cells: int
    time_buckets: int
    rows: List[AllocationHeatmap]

    @property
    def total_accesses(self) -> int:
        return sum(row.accesses for row in self.rows)


def _columns_from_records(records) -> MemoryColumns:
    """Materialize columns from a plain record list (hand-built tests)."""
    n = len(records)
    warp = len(records[0].mask) if n else 1
    cols = MemoryColumns(
        np.array([r.seq for r in records], dtype=np.int64),
        np.array([r.cta for r in records], dtype=np.int32),
        np.array([r.warp_in_cta for r in records], dtype=np.int32),
        np.array([r.bits for r in records], dtype=np.int32),
        np.array([r.line for r in records], dtype=np.int32),
        np.array([r.col for r in records], dtype=np.int32),
        np.array([int(r.op) for r in records], dtype=np.int8),
        np.array([r.call_path_id for r in records], dtype=np.int64),
        np.array([r.addresses for r in records], dtype=np.int64).reshape(n, warp),
        np.array([r.mask for r in records], dtype=bool).reshape(n, warp),
    )
    return cols


def heatmap_analysis(profile, cell_rows: int = DEFAULT_CELL_ROWS,
                     granule_bytes: int = DEFAULT_GRANULE) -> HeatmapTable:
    """Batch heat map of one :class:`KernelProfile` (in-RAM drain).

    Feeds the whole materialized trace through one
    :class:`HeatmapAggregate` as a single segment, so the result is
    definitionally identical to the streaming drain's.
    """
    records = profile.memory_records
    if not isinstance(records, MemoryColumns):
        records = _columns_from_records(list(records))
    aggregate = HeatmapAggregate(cell_rows, granule_bytes)
    if len(records):
        aggregate.update(records)
    return aggregate.finalize()
