"""Offline cross-instance aggregation (Section 3.3).

"CUDAAdvisor's analyzer has an offline component that merges the
analysis results of kernel instances in the same call path. It provides
an aggregate statistical view, such as mean, min, max, and standard
deviation across all these instances." -- this module.

Instances are grouped by (kernel name, host call path); any numeric
metric extractable from a :class:`KernelProfile` can be aggregated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.host.shadow_stack import HostFrame
from repro.profiler.profiler import KernelProfile


@dataclass
class InstanceStatistics:
    """Aggregate view of one metric across instances of one call path."""

    kernel: str
    call_path: Tuple[HostFrame, ...]
    instances: int
    mean: float
    minimum: float
    maximum: float
    stddev: float

    def render(self) -> str:
        path = " -> ".join(f.function for f in self.call_path)
        return (
            f"{self.kernel} [{path}] x{self.instances}: "
            f"mean={self.mean:.4g} min={self.minimum:.4g} "
            f"max={self.maximum:.4g} std={self.stddev:.4g}"
        )


def _stats(values: Sequence[float]) -> Tuple[float, float, float, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, min(values), max(values), math.sqrt(var)


def aggregate_instances(
    profiles: Sequence[KernelProfile],
    metric: Callable[[KernelProfile], float],
) -> List[InstanceStatistics]:
    """Group by (kernel, host call path) and aggregate ``metric``."""
    groups: Dict[Tuple, List[KernelProfile]] = {}
    for profile in profiles:
        key = (profile.kernel, profile.host_call_path)
        groups.setdefault(key, []).append(profile)

    results: List[InstanceStatistics] = []
    for (kernel, path), members in groups.items():
        values = [float(metric(p)) for p in members]
        if not values:
            raise AnalysisError("metric produced no values")
        mean, lo, hi, std = _stats(values)
        results.append(
            InstanceStatistics(
                kernel=kernel,
                call_path=path,
                instances=len(values),
                mean=mean,
                minimum=lo,
                maximum=hi,
                stddev=std,
            )
        )
    results.sort(key=lambda s: (s.kernel, -s.instances))
    return results


# Ready-made metrics ---------------------------------------------------------
def metric_cycles(profile: KernelProfile) -> float:
    if profile.launch_result is None:
        raise AnalysisError("profile has no launch result attached")
    return float(profile.launch_result.cycles)


def metric_memory_events(profile: KernelProfile) -> float:
    return float(len(profile.memory_records))


def metric_divergent_block_fraction(profile: KernelProfile) -> float:
    total = len(profile.block_records)
    if not total:
        return 0.0
    return sum(1 for r in profile.block_records if r.divergent) / total
