"""The CUDAAdvisor analyzer (Section 3.3 and the Section 4 case studies).

Online analyses over one kernel instance's profile:

* :mod:`repro.analysis.reuse_distance`     -- case study (A), Figure 4
* :mod:`repro.analysis.divergence_memory`  -- case study (B), Figure 5
* :mod:`repro.analysis.divergence_branch`  -- case study (C), Table 3
* :mod:`repro.analysis.arithmetic`         -- FLOP / op-mix metrics

Offline analysis:

* :mod:`repro.analysis.statistics` -- aggregation (mean/min/max/stddev)
  across kernel instances sharing a call path
* :mod:`repro.analysis.overhead`   -- instrumentation overhead (Fig. 10)
* :mod:`repro.analysis.report`     -- text renderings of all of the above
"""

from repro.analysis.reuse_distance import (
    PAPER_BUCKETS,
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    reuse_distance_analysis,
    reuse_distances_of_trace,
    site_reuse_analysis,
)
from repro.analysis.divergence_memory import (
    MemoryDivergenceProfile,
    memory_divergence_analysis,
)
from repro.analysis.divergence_branch import (
    BranchDivergenceProfile,
    branch_divergence_analysis,
)
from repro.analysis.arithmetic import ArithmeticProfile, arithmetic_analysis
from repro.analysis.statistics import InstanceStatistics, aggregate_instances
from repro.analysis.overhead import OverheadReport, overhead_report
from repro.analysis.cache_model import (
    CacheSizeRecommendation,
    HitRateCurve,
    hit_rate_curve,
    profile_stack_distances,
    recommend_l1_size,
    stack_distances,
)

__all__ = [
    "CacheSizeRecommendation",
    "HitRateCurve",
    "hit_rate_curve",
    "profile_stack_distances",
    "recommend_l1_size",
    "stack_distances",
    "ArithmeticProfile",
    "BranchDivergenceProfile",
    "InstanceStatistics",
    "MemoryDivergenceProfile",
    "OverheadReport",
    "PAPER_BUCKETS",
    "ReuseDistanceHistogram",
    "ReuseDistanceModel",
    "aggregate_instances",
    "arithmetic_analysis",
    "branch_divergence_analysis",
    "memory_divergence_analysis",
    "overhead_report",
    "reuse_distance_analysis",
    "reuse_distances_of_trace",
    "site_reuse_analysis",
]
