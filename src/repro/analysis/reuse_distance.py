"""Reuse-distance analysis (case study A, Figure 4).

Definitions follow Section 4.2-(A) exactly:

* The trace is regrouped **per CTA** (each CTA's accesses form one
  sequential reference stream, lanes serialized in lane order within a
  warp access).
* Reuse distance of an access = number of **distinct** data elements
  accessed between two consecutive uses of the same element.
* **Write restart**: "once an address A is written, we restart its reuse
  distance counting as another address A'" -- modelling the write-evict,
  write-no-allocate GPU L1. Concretely, a read whose element was last
  touched by a write (or never touched) samples the ∞ bucket, matching
  the paper's "∞ = never reused ... or before the next write to it".
* Two granularities: **element-based** (one element per distinct
  address/width) and **cache-line-based** (elements are cache lines).
* **Streaming accesses** (never reused by the same CTA) are counted --
  they are exactly the ∞ samples.

Distances are computed online with a Fenwick tree over access times
(O(N log N)), the standard stack-distance algorithm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.profiler.buffers import MemoryColumns
from repro.profiler.records import MemoryAccessRecord, MemoryOp

#: Figure 4's x-axis buckets: (label, lo, hi) inclusive; ∞ kept separate.
PAPER_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("0", 0, 0),
    ("1-2", 1, 2),
    ("3-8", 3, 8),
    ("9-32", 9, 32),
    ("33-128", 33, 128),
    ("129-512", 129, 512),
    (">512", 513, 1 << 62),
)


class ReuseDistanceModel(str, enum.Enum):
    """The two models CUDAAdvisor offers (Section 4.2-A)."""

    ELEMENT = "element"
    CACHE_LINE = "cache_line"


#: Lower bucket edges for vectorized bucketing (searchsorted).
_BUCKET_LOWS = np.array([lo for _, lo, _ in PAPER_BUCKETS], dtype=np.int64)


class _Fenwick:
    """Fenwick (binary indexed) tree for prefix sums over access times.

    int32 cells: every count is bounded by the number of marked time
    slots, which is bounded by the trace length of one CTA — far below
    2^31. The streaming drain keeps one tree per (CTA, model) alive
    for a whole kernel, so cell width is a real memory term.
    """

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int32)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> int:
        """Sum of [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


#: An "infinite" distance marker (never reused / killed by a write).
INFINITE = -1


def reuse_distances_of_trace(
    events: Sequence[Tuple[int, bool]],
    write_restart: bool = True,
    reads_only: bool = True,
) -> List[int]:
    """Distances for a single sequential stream of (element, is_write).

    Returns one sample per read (per access if ``reads_only`` is False):
    the reuse distance, or :data:`INFINITE`.

    ``write_restart=False`` gives the classic definition (an ablation
    the benchmarks exercise).
    """
    n = len(events)
    tree = _Fenwick(n)
    last_time: Dict[int, int] = {}
    last_was_write: Dict[int, bool] = {}
    samples: List[int] = []

    for t, (element, is_write) in enumerate(events):
        prev = last_time.get(element)
        sampling = (not is_write) or (not reads_only)
        if sampling:
            if prev is None:
                samples.append(INFINITE)
            elif write_restart and last_was_write.get(element, False):
                samples.append(INFINITE)
            else:
                samples.append(tree.range_sum(prev + 1, t - 1))
        # Update the "most recent access" marker for distinct counting.
        if prev is not None:
            tree.add(prev, -1)
        tree.add(t, +1)
        last_time[element] = t
        last_was_write[element] = is_write
    return samples


@dataclass
class ReuseDistanceHistogram:
    """Aggregated result of the analysis over an entire kernel/app."""

    model: ReuseDistanceModel
    samples: int = 0
    infinite: int = 0  # the ∞ / no-reuse (streaming) bucket
    bucket_counts: List[int] = field(
        default_factory=lambda: [0] * len(PAPER_BUCKETS)
    )
    finite_sum: int = 0
    finite_count: int = 0

    def add_sample(self, distance: int) -> None:
        self.samples += 1
        if distance == INFINITE:
            self.infinite += 1
            return
        self.finite_sum += distance
        self.finite_count += 1
        for i, (_, lo, hi) in enumerate(PAPER_BUCKETS):
            if lo <= distance <= hi:
                self.bucket_counts[i] += 1
                return

    def add_samples(self, distances) -> None:
        """Vectorized :meth:`add_sample` over an array of distances."""
        d = np.asarray(distances, dtype=np.int64)
        if d.size == 0:
            return
        finite = d[d != INFINITE]
        self.samples += int(d.size)
        self.infinite += int(d.size - finite.size)
        self.finite_sum += int(finite.sum())
        self.finite_count += int(finite.size)
        if finite.size:
            idx = np.searchsorted(_BUCKET_LOWS, finite, side="right") - 1
            for i, c in enumerate(
                np.bincount(idx, minlength=len(PAPER_BUCKETS)).tolist()
            ):
                self.bucket_counts[i] += c

    def merge(self, other: "ReuseDistanceHistogram") -> None:
        if other.model != self.model:
            raise AnalysisError("cannot merge histograms of different models")
        self.samples += other.samples
        self.infinite += other.infinite
        self.finite_sum += other.finite_sum
        self.finite_count += other.finite_count
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c

    # -- derived metrics ----------------------------------------------------
    @property
    def frequencies(self) -> Dict[str, float]:
        """Fraction per bucket (paper's y-axis), ∞ included."""
        if self.samples == 0:
            return {label: 0.0 for label, _, _ in PAPER_BUCKETS} | {"inf": 0.0}
        result = {
            label: count / self.samples
            for (label, _, _), count in zip(PAPER_BUCKETS, self.bucket_counts)
        }
        result["inf"] = self.infinite / self.samples
        return result

    @property
    def no_reuse_fraction(self) -> float:
        return self.infinite / self.samples if self.samples else 0.0

    @property
    def average_distance(self) -> float:
        """Mean over finite samples (the paper's conservative plain mean,
        used as R.D. in the Eq.(1) bypass model)."""
        if self.finite_count == 0:
            return 0.0
        return self.finite_sum / self.finite_count

    def fraction_beyond(self, distance: int) -> float:
        """Fraction of samples whose reuse a cache holding ``distance``
        elements likely cannot capture: ∞ samples plus every bucket that
        reaches the capacity (bucket-granular; set associativity makes
        distances *near* capacity miss too, so a bucket counts as soon
        as its upper edge touches the limit)."""
        if self.samples == 0:
            return 0.0
        count = self.infinite
        for (_, lo, hi), c in zip(PAPER_BUCKETS, self.bucket_counts):
            if hi >= distance:
                count += c
        return count / self.samples


def _cta_row_segments(ctas: np.ndarray) -> List[np.ndarray]:
    """Row indices grouped per CTA, ascending CTA id, trace order kept."""
    order = np.argsort(ctas, kind="stable")
    if order.size == 0:
        return []
    bounds = np.flatnonzero(np.diff(ctas[order])) + 1
    return np.split(order, bounds)


def _column_flat_events(
    columns: MemoryColumns,
    rows: np.ndarray,
    model: ReuseDistanceModel,
    line_size: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lane-serialized (elements, writes) for a set of trace rows.

    Active lanes are flattened in row-major order, i.e. record order
    then lane order -- the same serialization the per-record path uses.
    """
    addrs = columns.addresses[rows]
    mask = columns.mask[rows]
    if model == ReuseDistanceModel.CACHE_LINE:
        elements = addrs // line_size
    else:
        widths = np.maximum(
            columns.bits[rows].astype(np.int64) >> 3, 1
        )
        elements = addrs // widths[:, None]
    is_write = columns.op[rows] != int(MemoryOp.LOAD)
    writes = np.broadcast_to(is_write[:, None], mask.shape)[mask]
    return elements[mask], writes


def _column_event_streams(
    columns: MemoryColumns,
    model: ReuseDistanceModel,
    line_size: int,
):
    """Yield per-CTA (elements, writes) arrays, ascending CTA id."""
    for rows in _cta_row_segments(columns.cta):
        yield _column_flat_events(columns, rows, model, line_size)


def _trace_events(
    records: Iterable[MemoryAccessRecord],
    model: ReuseDistanceModel,
    line_size: int,
) -> List[Tuple[int, bool]]:
    events: List[Tuple[int, bool]] = []
    for record in records:
        is_write = record.op in (MemoryOp.STORE, MemoryOp.ATOMIC)
        width = max(record.bytes_per_lane, 1)
        for addr in record.active_addresses():
            if model == ReuseDistanceModel.CACHE_LINE:
                element = int(addr) // line_size
            else:
                element = int(addr) // width
            events.append((element, is_write))
    return events


def reuse_distance_analysis(
    profile,
    model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
    line_size: int = 128,
    write_restart: bool = True,
) -> ReuseDistanceHistogram:
    """Run the analysis over one :class:`KernelProfile` (all CTAs).

    The trace is regrouped by CTA ID first, exactly as the paper does,
    then each CTA's stream is analyzed independently and the histograms
    are merged.
    """
    histogram = ReuseDistanceHistogram(model=model)
    records = profile.memory_records
    if isinstance(records, MemoryColumns):
        for elements, writes in _column_event_streams(
            records, model, line_size
        ):
            events = list(zip(elements.tolist(), writes.tolist()))
            histogram.add_samples(
                reuse_distances_of_trace(events, write_restart=write_restart)
            )
        return histogram
    for cta, cta_records in sorted(profile.memory_records_by_cta().items()):
        events = _trace_events(cta_records, model, line_size)
        for distance in reuse_distances_of_trace(
            events, write_restart=write_restart
        ):
            histogram.add_sample(distance)
    return histogram


def site_reuse_analysis(
    profile,
    model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
    line_size: int = 128,
    write_restart: bool = True,
) -> Dict[Tuple[int, int], ReuseDistanceHistogram]:
    """Per-source-site reuse histograms: (line, col) -> histogram.

    This is the per-load view that *vertical* cache bypassing needs
    (Xie et al. [55], discussed in the paper's Section 4.2-D): a load
    whose accesses are mostly never reused should bypass L1, one with
    short reuse should cache.
    """
    sites: Dict[Tuple[int, int], ReuseDistanceHistogram] = {}
    records = profile.memory_records
    if isinstance(records, MemoryColumns):
        for rows in _cta_row_segments(records.cta):
            elements, writes = _column_flat_events(
                records, rows, model, line_size
            )
            mask = records.mask[rows]
            events = list(zip(elements.tolist(), writes.tolist()))
            distances = np.asarray(
                reuse_distances_of_trace(
                    events, write_restart=write_restart, reads_only=False
                ),
                dtype=np.int64,
            )
            reads = ~writes
            if not reads.any():
                continue
            lanes_line = np.broadcast_to(
                records.line[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            lanes_col = np.broadcast_to(
                records.col[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            d_reads = distances[reads]
            pairs = np.stack([lanes_line, lanes_col], axis=1)
            uniq, first, inverse = np.unique(
                pairs, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            by_site = np.argsort(inverse, kind="stable")
            bounds = np.cumsum(np.bincount(inverse))[:-1]
            groups = np.split(d_reads[by_site], bounds)
            # First-encounter order, matching the per-record path.
            for j in np.argsort(first, kind="stable").tolist():
                key = (int(uniq[j, 0]), int(uniq[j, 1]))
                hist = sites.get(key)
                if hist is None:
                    hist = ReuseDistanceHistogram(model=model)
                    sites[key] = hist
                hist.add_samples(groups[j])
        return sites
    for cta, records_list in sorted(profile.memory_records_by_cta().items()):
        events: List[Tuple[int, bool]] = []
        tags: List[Tuple[int, int]] = []
        for record in records_list:
            is_write = record.op in (MemoryOp.STORE, MemoryOp.ATOMIC)
            width = max(record.bytes_per_lane, 1)
            site = (record.line, record.col)
            for addr in record.active_addresses():
                if model == ReuseDistanceModel.CACHE_LINE:
                    element = int(addr) // line_size
                else:
                    element = int(addr) // width
                events.append((element, is_write))
                tags.append(site)
        distances = reuse_distances_of_trace(
            events, write_restart=write_restart, reads_only=False
        )
        for (element_event, tag, distance) in zip(events, tags, distances):
            if element_event[1]:
                continue  # writes carry no reuse sample
            hist = sites.get(tag)
            if hist is None:
                hist = ReuseDistanceHistogram(model=model)
                sites[tag] = hist
            hist.add_sample(distance)
    return sites
