"""Memory-divergence analysis (case study B, Figure 5).

Per instrumented warp memory instruction, the number of **unique cache
lines touched** by the active lanes (1 = fully coalesced ... 32 = fully
divergent; the x-axis of Figure 5). The per-application distribution and
the weighted-average **memory divergence degree** (used as M.D. in the
Eq.(1) bypass model) are computed from the trace -- the line size is an
analysis parameter, so one trace yields both the Kepler (128 B) and
Pascal (32 B) views.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.gpu.coalescing import divergence_degree
from repro.profiler.buffers import MemoryColumns
from repro.profiler.records import MemoryAccessRecord

#: Row-chunk size for the vectorized unique-line pass (bounds the
#: temporary (rows, 2*warp_size) matrices to a few MB).
_CHUNK_ROWS = 32768


def _column_unique_line_counts(
    columns: MemoryColumns, line_size: int
) -> np.ndarray:
    """Unique cache lines touched per trace row, vectorized.

    Equivalent to ``len(coalesce(addresses, mask, width, line_size))``
    per record: both the first and last line of every active lane's
    access are collected, inactive lanes become a sentinel, and distinct
    non-sentinel values are counted per row-sorted row.
    """
    n = len(columns)
    out = np.empty(n, dtype=np.int64)
    for lo in range(0, n, _CHUNK_ROWS):
        hi = min(lo + _CHUNK_ROWS, n)
        addrs = columns.addresses[lo:hi]
        mask = columns.mask[lo:hi]
        widths = np.maximum(columns.bits[lo:hi].astype(np.int64) >> 3, 1)
        first = addrs // line_size
        last = (addrs + widths[:, None] - 1) // line_size
        vals = np.where(
            np.concatenate([mask, mask], axis=1),
            np.concatenate([first, last], axis=1),
            -1,
        )
        vals.sort(axis=1)
        out[lo:hi] = (vals[:, 0] != -1).astype(np.int64) + (
            (vals[:, 1:] != vals[:, :-1]) & (vals[:, 1:] != -1)
        ).sum(axis=1)
    return out


@dataclass
class MemoryDivergenceProfile:
    """Distribution of unique-cache-lines-touched per warp instruction."""

    line_size: int
    warp_size: int = 32
    counts: Counter = field(default_factory=Counter)

    def add(self, unique_lines: int) -> None:
        self.counts[unique_lines] += 1

    def merge(self, other: "MemoryDivergenceProfile") -> None:
        self.counts.update(other.counts)

    @property
    def instructions(self) -> int:
        return sum(self.counts.values())

    @property
    def distribution(self) -> Dict[int, float]:
        """Fraction of instructions per unique-line count (Figure 5)."""
        total = self.instructions
        if not total:
            return {}
        return {k: v / total for k, v in sorted(self.counts.items())}

    @property
    def divergence_degree(self) -> float:
        """Average of the weighted sum of the distribution (the paper's
        summary metric; 1.0 means perfectly coalesced)."""
        total = self.instructions
        if not total:
            return 0.0
        return sum(k * v for k, v in self.counts.items()) / total

    def fraction_at(self, unique_lines: int) -> float:
        total = self.instructions
        return self.counts.get(unique_lines, 0) / total if total else 0.0

    def top_sites(self) -> List[Tuple[int, int]]:
        """(unique_lines, count) sorted by divergence, worst first."""
        return sorted(self.counts.items(), key=lambda kv: -kv[0])


def memory_divergence_analysis(
    profile,
    line_size: int,
    per_line_sources: bool = False,
) -> MemoryDivergenceProfile:
    """Distribution over all instrumented accesses of one kernel profile."""
    result = MemoryDivergenceProfile(line_size=line_size)
    records = profile.memory_records
    if isinstance(records, MemoryColumns):
        counts = _column_unique_line_counts(records, line_size)
        if counts.size:
            for k, c in enumerate(np.bincount(counts).tolist()):
                if c:
                    result.counts[k] += c
        return result
    for record in records:
        result.add(_unique_lines(record, line_size))
    return result


def divergent_sites(
    profile, line_size: int, threshold: int = 2
) -> Dict[Tuple[int, int], int]:
    """Source locations (line, col) with divergent accesses and their
    event counts -- the lookup behind the Figure 8 debugging view."""
    sites: Dict[Tuple[int, int], int] = {}
    records = profile.memory_records
    if isinstance(records, MemoryColumns):
        counts = _column_unique_line_counts(records, line_size)
        sel = np.flatnonzero(counts >= threshold)
        if sel.size:
            pairs = np.stack(
                [
                    records.line[sel].astype(np.int64),
                    records.col[sel].astype(np.int64),
                ],
                axis=1,
            )
            uniq, first, cnt = np.unique(
                pairs, axis=0, return_index=True, return_counts=True
            )
            # First-encounter order, matching the per-record path.
            for j in np.argsort(first, kind="stable").tolist():
                sites[(int(uniq[j, 0]), int(uniq[j, 1]))] = int(cnt[j])
        return sites
    for record in records:
        if _unique_lines(record, line_size) >= threshold:
            key = (record.line, record.col)
            sites[key] = sites.get(key, 0) + 1
    return sites


def _unique_lines(record: MemoryAccessRecord, line_size: int) -> int:
    return divergence_degree(
        record.addresses, record.mask, max(record.bytes_per_lane, 1), line_size
    )
