"""Instrumentation-overhead measurement (Section 5, Figure 10).

Overhead is the ratio of instrumented to baseline execution cost of the
same kernels on the same inputs. The paper measures wall-clock on
hardware; here the primary metric is the simulated cycle count, whose
cost model charges the paper's three overhead sources (hook call,
per-lane trace formatting, atomic buffer bump -- see
:class:`repro.gpu.timing.TimingParams`). Dynamic instruction counts and
wall-clock are reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class OverheadReport:
    """Baseline-vs-instrumented comparison for one app on one arch."""

    app: str
    arch: str
    modes: Sequence[str]
    baseline_cycles: float
    instrumented_cycles: float
    baseline_instructions: int
    instrumented_instructions: int
    baseline_wall: float
    instrumented_wall: float

    @property
    def cycle_overhead(self) -> float:
        """The Figure 10 metric: instrumented time / baseline time."""
        if self.baseline_cycles <= 0:
            return 0.0
        return self.instrumented_cycles / self.baseline_cycles

    @property
    def instruction_overhead(self) -> float:
        if self.baseline_instructions <= 0:
            return 0.0
        return self.instrumented_instructions / self.baseline_instructions

    @property
    def wall_overhead(self) -> float:
        if self.baseline_wall <= 0:
            return 0.0
        return self.instrumented_wall / self.baseline_wall

    def render(self) -> str:
        return (
            f"{self.app:>10} on {self.arch:<7} "
            f"[{'+'.join(self.modes)}]: "
            f"{self.cycle_overhead:6.1f}x cycles, "
            f"{self.instruction_overhead:5.1f}x instructions"
        )


def overhead_report(
    app: str,
    arch: str,
    modes: Sequence[str],
    baseline_results: Sequence,
    instrumented_results: Sequence,
) -> OverheadReport:
    """Combine LaunchResults of the two runs (summing across launches)."""
    return OverheadReport(
        app=app,
        arch=arch,
        modes=tuple(modes),
        baseline_cycles=sum(r.cycles for r in baseline_results),
        instrumented_cycles=sum(r.cycles for r in instrumented_results),
        baseline_instructions=sum(r.instructions for r in baseline_results),
        instrumented_instructions=sum(
            r.instructions for r in instrumented_results
        ),
        baseline_wall=sum(r.wall_seconds for r in baseline_results),
        instrumented_wall=sum(r.wall_seconds for r in instrumented_results),
    )
