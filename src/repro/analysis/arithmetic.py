"""Arithmetic-instrumentation analysis.

The third optional instrumentation category (Section 3.1-II): per-warp
records of every binary operation. The analyzer derives FLOP counts,
the integer/float mix, the per-opcode histogram and per-source-line
arithmetic intensity (lane-operations per byte accessed), which is a
standard roofline-style metric built by combining the arithmetic and
memory traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class ArithmeticProfile:
    """Aggregated arithmetic activity of one kernel instance."""

    lane_flops: int = 0
    lane_intops: int = 0
    by_opcode: Counter = field(default_factory=Counter)
    by_line: Counter = field(default_factory=Counter)

    @property
    def lane_operations(self) -> int:
        return self.lane_flops + self.lane_intops

    @property
    def float_fraction(self) -> float:
        total = self.lane_operations
        return self.lane_flops / total if total else 0.0

    def arithmetic_intensity(self, bytes_accessed: int) -> float:
        """Lane operations per byte of instrumented global traffic."""
        if bytes_accessed <= 0:
            return 0.0
        return self.lane_operations / bytes_accessed


def arithmetic_analysis(profile) -> ArithmeticProfile:
    """Run over one :class:`KernelProfile` (requires "arith" mode)."""
    result = ArithmeticProfile()
    for record in profile.arith_records:
        lanes = record.active_lanes
        if record.is_float:
            result.lane_flops += lanes
        else:
            result.lane_intops += lanes
        result.by_opcode[record.opcode] += lanes
        result.by_line[record.line] += lanes
    return result


def bytes_accessed(profile) -> int:
    """Total instrumented global-memory bytes (for intensity metrics)."""
    total = 0
    for record in profile.memory_records:
        total += record.active_lanes * record.bytes_per_lane
    return total
