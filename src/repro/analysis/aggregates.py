"""Streaming per-segment analyzer aggregates (the out-of-core drain).

The paper's analyzers are *online* consumers: reuse distance,
divergence and cache behaviour are computed incrementally as
instrumentation callbacks fire, never holding a full trace. This module
restores that property for the columnar pipeline: each analysis becomes
a :class:`SegmentAggregate` with an ``update(segment_columns)`` /
``merge(other)`` / ``finalize()`` contract, and the streaming drain
(:mod:`repro.profiler.streamdrain`) pushes one spill segment at a time
through an :class:`AnalyzerBank` of them -- peak drain memory is
O(segment), not O(trace).

Results are **byte-identical** to running the batch analyzers over a
fully materialized trace (pinned by ``tests/test_streaming_drain.py``):

* Per-CTA analyses (reuse distance, stack distance, site reuse) carry
  per-CTA cursor state across segment boundaries -- a CTA's events
  appear in trace order within every segment, so concatenating its
  per-segment slices reproduces the exact per-CTA stream the batch
  path regroups. The Fenwick trees behind the distance algorithms are
  **compacting**: when the time axis fills, live (marked) slots are
  renumbered 0..k-1 in order, which preserves every range count and
  keeps state O(distinct elements) instead of O(events).
* Histogram-shaped results are integer sums, so per-segment
  accumulation order cannot change them.
* Dict-ordered results (per-site tables) record a canonical
  first-encounter key per site and sort at ``finalize()``, reproducing
  the batch insertion order exactly -- including across shard merges.

``merge()`` combines aggregates computed over *disjoint CTA/row
partitions* (fork-parallel shards): shard partials merge
aggregate-to-aggregate instead of trace-to-trace.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache_model import StackDistanceSummary
from repro.analysis.divergence_branch import (
    BranchDivergenceProfile,
    _BlockSiteStats,
)
from repro.analysis.divergence_memory import (
    MemoryDivergenceProfile,
    _column_unique_line_counts,
)
from repro.analysis.arithmetic import ArithmeticProfile
from repro.analysis.reuse_distance import (
    INFINITE,
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    _column_flat_events,
    _cta_row_segments,
    _Fenwick,
)
from repro.errors import AnalysisError

#: Initial (and minimum) time-axis capacity of an online Fenwick tree.
#: Small on purpose: one cursor lives per (CTA, model) for the whole
#: drain, and compaction resizes to 2x the live-slot count anyway.
_INITIAL_SLOTS = 128


class _OnlineReuse:
    """Per-CTA reuse-distance cursor carried across segment boundaries.

    Implements exactly the recurrence of
    :func:`repro.analysis.reuse_distance.reuse_distances_of_trace`, but
    over an unbounded stream: the Fenwick tree compacts its time axis
    whenever it fills, so memory stays proportional to the number of
    *distinct* elements the CTA has touched, not its event count.

    The carry state is held in two parallel numpy arrays (sorted
    element keys, packed ``slot << 1 | last_was_write`` values) rather
    than per-element dicts: with one cursor alive per (CTA, model) for
    the whole drain, boxed-int dict tables were the dominant term of
    streaming peak RSS. Each ``feed`` resolves every event's previous
    occurrence *vectorized* up front (stable argsort for within-segment
    repeats, ``searchsorted`` into the carry map for firsts), so the
    sequential part of the loop is only the Fenwick updates the batch
    algorithm does anyway.
    """

    __slots__ = ("write_restart", "_tree", "_cap", "_t", "_marked",
                 "_keys", "_vals", "reads_seen")

    def __init__(self, write_restart: bool = True,
                 initial_slots: int = _INITIAL_SLOTS):
        self.write_restart = write_restart
        self._cap = initial_slots
        self._tree = _Fenwick(self._cap)
        self._t = 0
        #: which time slots are live (= last occurrence of an element).
        self._marked = np.zeros(self._cap, dtype=bool)
        #: sorted distinct elements seen so far.
        self._keys = np.empty(0, dtype=np.int64)
        #: per key: last slot << 1 | last access was a write.
        self._vals = np.empty(0, dtype=np.int64)
        #: total read events fed so far (site ordering keys use this).
        self.reads_seen = 0

    def _compact(self, slot_of_event: List[int], upto: int,
                 carry_slot: List[int]) -> None:
        # Renumber the marked (live) time slots to 0..k-1 in order.
        # Range counts between live slots only ever count live slots,
        # so an order-preserving renumbering changes no distance. Any
        # slot still referenced by pending state is live: carry values
        # are elements' last occurrences, and a within-segment prev is
        # only read while it is still its element's latest access.
        live = np.flatnonzero(self._marked[: self._t])
        k = int(live.size)
        self._cap = max(_INITIAL_SLOTS, 2 * k)
        self._tree = _Fenwick(self._cap)
        for i in range(k):
            self._tree.add(i, 1)
        marked = np.zeros(self._cap, dtype=bool)
        marked[:k] = True
        self._marked = marked
        self._t = k
        if self._vals.size:
            slots = np.searchsorted(live, self._vals >> 1)
            self._vals = (slots << 1) | (self._vals & 1)
        if upto:
            prefix = np.asarray(slot_of_event[:upto], dtype=np.int64)
            slot_of_event[:upto] = np.searchsorted(live, prefix).tolist()
        if carry_slot:
            pending = np.asarray(carry_slot, dtype=np.int64)
            valid = pending >= 0
            pending[valid] = np.searchsorted(live, pending[valid])
            carry_slot[:] = pending.tolist()

    def feed(self, elements: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Advance the stream; returns the distance of every *read*."""
        n = len(elements)
        if not n:
            return np.empty(0, dtype=np.int64)
        elements = np.asarray(elements, dtype=np.int64)
        w_int = np.asarray(writes, dtype=np.int64)
        # Previous occurrence of each event's element, segment-local:
        # a stable sort by element keeps equal elements in trace order.
        order = np.argsort(elements, kind="stable")
        sorted_el = elements[order]
        same = np.empty(n, dtype=bool)
        same[0] = False
        np.equal(sorted_el[1:], sorted_el[:-1], out=same[1:])
        prev_idx = np.full(n, -1, dtype=np.int64)
        rep = np.flatnonzero(same)
        prev_idx[order[rep]] = order[rep - 1]
        # First occurrences look up the carry map instead.
        firsts = order[~same]
        fe = sorted_el[~same]
        carry_slot = np.full(n, -1, dtype=np.int64)
        carry_write = np.zeros(n, dtype=bool)
        if self._keys.size:
            pos = np.searchsorted(self._keys, fe)
            hit = pos < self._keys.size
            hit[hit] = self._keys[pos[hit]] == fe[hit]
            packed = self._vals[pos[hit]]
            carry_slot[firsts[hit]] = packed >> 1
            carry_write[firsts[hit]] = (packed & 1).astype(bool)

        out: List[int] = []
        slot_of_event = [0] * n
        prev_idx_l = prev_idx.tolist()
        writes_l = w_int.tolist()
        carry_slot_l = carry_slot.tolist()
        carry_write_l = carry_write.tolist()
        restart = self.write_restart
        marked = self._marked
        for i in range(n):
            if self._t >= self._cap:
                self._compact(slot_of_event, i, carry_slot_l)
                marked = self._marked
            t = self._t
            tree = self._tree
            j = prev_idx_l[i]
            if j >= 0:
                prev = slot_of_event[j]
                prev_write = writes_l[j]
            else:
                prev = carry_slot_l[i]
                prev_write = carry_write_l[i]
            if not writes_l[i]:
                if prev < 0 or (restart and prev_write):
                    out.append(INFINITE)
                else:
                    out.append(tree.range_sum(prev + 1, t - 1))
            if prev >= 0:
                tree.add(prev, -1)
                marked[prev] = False
            tree.add(t, +1)
            marked[t] = True
            slot_of_event[i] = t
            self._t = t + 1
        self.reads_seen += len(out)

        # Write back each distinct element's final (slot, was_write);
        # stable sort keeps old entries first, so "keep the last of
        # each duplicate run" prefers this segment's value.
        ends = np.flatnonzero(np.append(~same[1:], True))
        last_events = order[ends]
        soe = np.asarray(slot_of_event, dtype=np.int64)
        new_packed = (soe[last_events] << 1) | w_int[last_events]
        keys = np.concatenate([self._keys, fe])
        vals = np.concatenate([self._vals, new_packed])
        mo = np.argsort(keys, kind="stable")
        keys = keys[mo]
        vals = vals[mo]
        keep = np.append(keys[1:] != keys[:-1], True)
        self._keys = keys[keep]
        self._vals = vals[keep]
        return np.asarray(out, dtype=np.int64)


class _OnlineStack:
    """Per-CTA LRU stack-distance cursor (write-evict holes included).

    The streaming counterpart of
    :func:`repro.analysis.cache_model.stack_distances`. Live slots are
    resident lines *plus* write-evict holes; compaction renumbers both
    together, preserving slot order (which the hole-sinking comparisons
    depend on) and every range count.
    """

    __slots__ = ("_tree", "_cap", "_t", "_position", "_holes")

    def __init__(self):
        self._cap = _INITIAL_SLOTS
        self._tree = _Fenwick(self._cap)
        self._t = 0
        self._position: Dict[int, int] = {}
        self._holes: List[int] = []  # max-heap (negated slot numbers)

    def _compact(self) -> None:
        slots = sorted(
            [(t, line) for line, t in self._position.items()]
            + [(-h, None) for h in self._holes],
            key=lambda s: s[0],
        )
        k = len(slots)
        self._cap = max(_INITIAL_SLOTS, 2 * k)
        self._tree = _Fenwick(self._cap)
        holes: List[int] = []
        for i, (_, line) in enumerate(slots):
            self._tree.add(i, 1)
            if line is None:
                holes.append(-i)
            else:
                self._position[line] = i
        heapq.heapify(holes)
        self._holes = holes
        self._t = k

    def feed(self, lines: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Advance the stream; returns the stack distance per *read*."""
        out: List[int] = []
        position = self._position
        holes = self._holes
        for line, is_write in zip(lines.tolist(), writes.tolist()):
            prev = position.get(line)
            if is_write:
                # Write-evict / write-no-allocate: drop the line, keep
                # its slot as a hole (see cache_model.stack_distances).
                if prev is not None:
                    heapq.heappush(holes, -prev)
                    del position[line]
                continue
            if self._t >= self._cap:
                self._compact()
                holes = self._holes
                prev = position.get(line)
            t = self._t
            tree = self._tree
            if prev is None:
                out.append(INFINITE)
                if holes:
                    tree.add(-heapq.heappop(holes), -1)
            else:
                out.append(tree.range_sum(prev + 1, t - 1))
                if holes and -holes[0] > prev:
                    hole = -heapq.heapreplace(holes, -prev)
                    tree.add(hole, -1)
                else:
                    tree.add(prev, -1)
            tree.add(t, +1)
            position[line] = t
            self._t = t + 1
        return np.asarray(out, dtype=np.int64)


class SegmentAggregate:
    """One streaming analysis: consumes column segments, merges, finalizes.

    ``stream`` names the trace stream the aggregate consumes
    ("memory", "block" or "arith"); the :class:`AnalyzerBank` routes
    segments accordingly. ``update`` sees each kept segment exactly
    once, in trace order; ``merge`` combines a peer computed over a
    disjoint CTA partition (fork-parallel shards, in shard order);
    ``finalize`` returns the batch-identical analysis result.
    """

    stream = "memory"

    def update(self, cols) -> None:
        raise NotImplementedError

    def merge(self, other: "SegmentAggregate") -> None:
        raise NotImplementedError

    def finalize(self):
        raise NotImplementedError


def _merge_cta_states(mine: dict, theirs: dict, what: str) -> None:
    overlap = mine.keys() & theirs.keys()
    if overlap:
        raise AnalysisError(
            f"cannot merge {what} aggregates with overlapping CTAs "
            f"(e.g. {sorted(overlap)[:3]}): shard partitions must be disjoint"
        )
    mine.update(theirs)


class ReuseDistanceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.reuse_distance.reuse_distance_analysis`."""

    stream = "memory"

    def __init__(self, model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
                 line_size: int = 128, write_restart: bool = True):
        self.model = model
        self.line_size = line_size
        self.write_restart = write_restart
        self._states: Dict[int, _OnlineReuse] = {}
        self.histogram = ReuseDistanceHistogram(model=model)

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            elements, writes = _column_flat_events(
                cols, rows, self.model, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineReuse(self.write_restart)
            self.histogram.add_samples(state.feed(elements, writes))

    def merge(self, other: "ReuseDistanceAggregate") -> None:
        _merge_cta_states(self._states, other._states, "reuse-distance")
        self.histogram.merge(other.histogram)

    def finalize(self) -> ReuseDistanceHistogram:
        return self.histogram


class SiteReuseAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.reuse_distance.site_reuse_analysis`.

    The batch result is a dict in first-encounter order: CTAs ascending,
    then first read position within the first CTA that reads the site.
    Each site records its minimal ``(cta, read_position)`` key and
    ``finalize`` sorts by it, reproducing that order exactly.
    """

    stream = "memory"

    def __init__(self, model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
                 line_size: int = 128, write_restart: bool = True):
        self.model = model
        self.line_size = line_size
        self.write_restart = write_restart
        self._states: Dict[int, _OnlineReuse] = {}
        self._hists: Dict[Tuple[int, int], ReuseDistanceHistogram] = {}
        self._order: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            elements, writes = _column_flat_events(
                cols, rows, self.model, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineReuse(self.write_restart)
            distances = state.feed(elements, writes)
            if not distances.size:
                continue
            reads = ~writes
            mask = cols.mask[rows]
            lanes_line = np.broadcast_to(
                cols.line[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            lanes_col = np.broadcast_to(
                cols.col[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            pairs = np.stack([lanes_line, lanes_col], axis=1)
            uniq, first, inverse = np.unique(
                pairs, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            by_site = np.argsort(inverse, kind="stable")
            bounds = np.cumsum(np.bincount(inverse))[:-1]
            groups = np.split(distances[by_site], bounds)
            base = state.reads_seen - distances.size
            for j in range(len(uniq)):
                key = (int(uniq[j, 0]), int(uniq[j, 1]))
                hist = self._hists.get(key)
                if hist is None:
                    hist = ReuseDistanceHistogram(model=self.model)
                    self._hists[key] = hist
                order_key = (cta, base + int(first[j]))
                known = self._order.get(key)
                if known is None or order_key < known:
                    self._order[key] = order_key
                hist.add_samples(groups[j])

    def merge(self, other: "SiteReuseAggregate") -> None:
        _merge_cta_states(self._states, other._states, "site-reuse")
        for key, hist in other._hists.items():
            mine = self._hists.get(key)
            if mine is None:
                self._hists[key] = hist
            else:
                mine.merge(hist)
            known = self._order.get(key)
            if known is None or other._order[key] < known:
                self._order[key] = other._order[key]

    def finalize(self) -> Dict[Tuple[int, int], ReuseDistanceHistogram]:
        ordered = sorted(self._hists, key=lambda key: self._order[key])
        return {key: self._hists[key] for key in ordered}


class StackDistanceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.cache_model.profile_stack_distances`.

    The batch path returns the raw sample list; out of core that would
    defeat the point, so this aggregate folds the samples into a
    :class:`~repro.analysis.cache_model.StackDistanceSummary` -- an
    exact distance->count table that reproduces the same
    :class:`~repro.analysis.cache_model.HitRateCurve` float-for-float.
    """

    stream = "memory"

    def __init__(self, line_size: int = 128):
        self.line_size = line_size
        self._states: Dict[int, _OnlineStack] = {}
        self._counts: Counter = Counter()
        self._infinite = 0

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            lines, writes = _column_flat_events(
                cols, rows, ReuseDistanceModel.CACHE_LINE, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineStack()
            distances = state.feed(lines, writes)
            if not distances.size:
                continue
            finite = distances[distances != INFINITE]
            self._infinite += int(distances.size - finite.size)
            if finite.size:
                vals, counts = np.unique(finite, return_counts=True)
                for v, c in zip(vals.tolist(), counts.tolist()):
                    self._counts[v] += c

    def merge(self, other: "StackDistanceAggregate") -> None:
        _merge_cta_states(self._states, other._states, "stack-distance")
        self._counts.update(other._counts)
        self._infinite += other._infinite

    def finalize(self) -> StackDistanceSummary:
        return StackDistanceSummary(
            counts=self._counts,
            infinite=self._infinite,
            line_size=self.line_size,
        )


class MemoryDivergenceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_memory.memory_divergence_analysis`."""

    stream = "memory"

    def __init__(self, line_size: int):
        self.profile = MemoryDivergenceProfile(line_size=line_size)

    def update(self, cols) -> None:
        counts = _column_unique_line_counts(cols, self.profile.line_size)
        if counts.size:
            for k, c in enumerate(np.bincount(counts).tolist()):
                if c:
                    self.profile.counts[k] += c

    def merge(self, other: "MemoryDivergenceAggregate") -> None:
        self.profile.merge(other.profile)

    def finalize(self) -> MemoryDivergenceProfile:
        return self.profile


class DivergentSitesAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_memory.divergent_sites`.

    First-encounter dict order is reproduced via the global row index of
    each site's first divergent access (a running row offset makes the
    per-segment indices global; ``merge`` shifts the peer's offsets past
    this shard's rows, matching the concatenated trace).
    """

    stream = "memory"

    def __init__(self, line_size: int, threshold: int = 2):
        self.line_size = line_size
        self.threshold = threshold
        self._counts: Dict[Tuple[int, int], int] = {}
        self._first: Dict[Tuple[int, int], int] = {}
        self._rows_seen = 0

    def update(self, cols) -> None:
        counts = _column_unique_line_counts(cols, self.line_size)
        sel = np.flatnonzero(counts >= self.threshold)
        if sel.size:
            pairs = np.stack(
                [
                    cols.line[sel].astype(np.int64),
                    cols.col[sel].astype(np.int64),
                ],
                axis=1,
            )
            uniq, first, cnt = np.unique(
                pairs, axis=0, return_index=True, return_counts=True
            )
            for j in range(len(uniq)):
                key = (int(uniq[j, 0]), int(uniq[j, 1]))
                row = self._rows_seen + int(sel[first[j]])
                known = self._first.get(key)
                if known is None or row < known:
                    self._first[key] = row
                self._counts[key] = self._counts.get(key, 0) + int(cnt[j])
        self._rows_seen += len(cols)

    def merge(self, other: "DivergentSitesAggregate") -> None:
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
            row = self._rows_seen + other._first[key]
            known = self._first.get(key)
            if known is None or row < known:
                self._first[key] = row
        self._rows_seen += other._rows_seen

    def finalize(self) -> Dict[Tuple[int, int], int]:
        ordered = sorted(self._counts, key=lambda key: self._first[key])
        return {key: self._counts[key] for key in ordered}


class BranchDivergenceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_branch.branch_divergence_analysis`.

    ``per_block`` insertion order is trace first-encounter order; the
    segments arrive in trace order (and shards merge in shard order),
    so plain sequential insertion reproduces it.
    """

    stream = "block"

    def __init__(self):
        self.profile = BranchDivergenceProfile()

    def update(self, cols) -> None:
        n = len(cols)
        if not n:
            return
        profile = self.profile
        profile.total_blocks += n
        divergent = np.asarray(cols.active_lanes) < np.asarray(
            cols.resident_lanes
        )
        profile.divergent_blocks += int(divergent.sum())
        per_block = profile.per_block
        lines = cols.line
        flags = divergent.tolist()
        for i, name in enumerate(cols.block_names):
            stats = per_block.get(name)
            if stats is None:
                stats = _BlockSiteStats(line=int(lines[i]))
                per_block[name] = stats
            stats.executions += 1
            if flags[i]:
                stats.divergent += 1

    def merge(self, other: "BranchDivergenceAggregate") -> None:
        self.profile.merge(other.profile)

    def finalize(self) -> BranchDivergenceProfile:
        return self.profile


class ArithmeticAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.arithmetic.arithmetic_analysis`."""

    stream = "arith"

    def __init__(self):
        self.profile = ArithmeticProfile()

    def update(self, cols) -> None:
        if not len(cols):
            return
        lanes = np.asarray(cols.active_lanes, dtype=np.int64)
        is_float = np.asarray(cols.is_float, dtype=bool)
        self.profile.lane_flops += int(lanes[is_float].sum())
        self.profile.lane_intops += int(lanes[~is_float].sum())
        by_opcode = self.profile.by_opcode
        by_line = self.profile.by_line
        for opcode, line, n in zip(
            cols.opcodes, cols.line.tolist(), lanes.tolist()
        ):
            by_opcode[opcode] += n
            by_line[line] += n

    def merge(self, other: "ArithmeticAggregate") -> None:
        self.profile.lane_flops += other.profile.lane_flops
        self.profile.lane_intops += other.profile.lane_intops
        self.profile.by_opcode.update(other.profile.by_opcode)
        self.profile.by_line.update(other.profile.by_line)

    def finalize(self) -> ArithmeticProfile:
        return self.profile


class AnalyzerBank:
    """A named set of aggregates fed by one streaming drain.

    The drain calls ``update_memory`` / ``update_block`` /
    ``update_arith`` once per kept segment; shard banks merge with
    :meth:`merge` (in shard order); :meth:`result` finalizes lazily and
    caches, so analyses can be read repeatedly.
    """

    def __init__(self, aggregates: Dict[str, SegmentAggregate]):
        self.aggregates = dict(aggregates)
        self._finalized: Dict[str, object] = {}
        self._by_stream: Dict[str, List[SegmentAggregate]] = {
            "memory": [], "block": [], "arith": [],
        }
        for agg in self.aggregates.values():
            self._by_stream[agg.stream].append(agg)

    def update_memory(self, cols) -> None:
        for agg in self._by_stream["memory"]:
            agg.update(cols)

    def update_block(self, cols) -> None:
        for agg in self._by_stream["block"]:
            agg.update(cols)

    def update_arith(self, cols) -> None:
        for agg in self._by_stream["arith"]:
            agg.update(cols)

    def merge(self, other: "AnalyzerBank") -> None:
        if self._finalized or other._finalized:
            raise AnalysisError("cannot merge a finalized analyzer bank")
        if self.aggregates.keys() != other.aggregates.keys():
            raise AnalysisError(
                "cannot merge analyzer banks with different aggregate sets: "
                f"{sorted(self.aggregates)} vs {sorted(other.aggregates)}"
            )
        for name, agg in self.aggregates.items():
            agg.merge(other.aggregates[name])

    def result(self, name: str):
        if name in self._finalized:
            return self._finalized[name]
        if name not in self.aggregates:
            raise AnalysisError(
                f"no {name!r} aggregate in this streaming plan "
                f"(have: {', '.join(sorted(self._names()))})"
            )
        self._finalized[name] = self.aggregates[name].finalize()
        return self._finalized[name]

    def _names(self) -> List[str]:
        return sorted(set(self.aggregates) | set(self._finalized))

    def results(self) -> Dict[str, object]:
        return {name: self.result(name) for name in self._names()}

    def seal(self) -> None:
        """Finalize every result and release the cursor state.

        A profile retains its bank for the lifetime of the session, and
        the drain-time cursor state (per-CTA Fenwick trees, carry maps)
        is much larger than the finalized results (histograms,
        counters). Nothing reads aggregate internals after the drain --
        cross-profile combination happens on finalized results
        (``ReuseDistanceHistogram.merge`` etc.), never bank-to-bank --
        so ``kernel_end`` seals the bank once streaming completes and
        only one launch's cursors are ever alive at a time.
        """
        for name in list(self.aggregates):
            self.result(name)
        self.aggregates = {}
        self._by_stream = {"memory": [], "block": [], "arith": []}


class AnalyzerPlan:
    """A recipe for the aggregates a streaming drain instantiates.

    A plan is shared across launches (and inherited by forked shard
    workers); every ``kernel_end`` creates a fresh bank from it.
    """

    def __init__(self, factories: Dict[str, Callable[[], SegmentAggregate]]):
        self.factories = dict(factories)

    def create_bank(self) -> AnalyzerBank:
        return AnalyzerBank(
            {name: make() for name, make in self.factories.items()}
        )


def advisor_plan(
    line_size: int,
    modes: Sequence[str] = ("memory", "blocks"),
    write_restart: bool = True,
    heatmap_cell_rows: Optional[int] = None,
) -> AnalyzerPlan:
    """The aggregates :class:`~repro.optim.advisor.CUDAAdvisor` needs.

    ``heatmap_cell_rows`` (when set, and "memory" is instrumented) adds
    the :class:`~repro.analysis.heatmap.HeatmapAggregate` so streaming
    drains build the per-allocation x time heat map as they go.
    """
    factories: Dict[str, Callable[[], SegmentAggregate]] = {}
    if "memory" in modes and heatmap_cell_rows is not None:
        from repro.analysis.heatmap import HeatmapAggregate

        factories["heatmap"] = lambda: HeatmapAggregate(heatmap_cell_rows)
    if "memory" in modes:
        factories["reuse_element"] = lambda: ReuseDistanceAggregate(
            ReuseDistanceModel.ELEMENT, line_size, write_restart
        )
        factories["reuse_cache_line"] = lambda: ReuseDistanceAggregate(
            ReuseDistanceModel.CACHE_LINE, line_size, write_restart
        )
        factories["memory_divergence"] = lambda: MemoryDivergenceAggregate(
            line_size
        )
    if "blocks" in modes:
        factories["branch_divergence"] = BranchDivergenceAggregate
    if "arith" in modes:
        factories["arithmetic"] = ArithmeticAggregate
    return AnalyzerPlan(factories)


def full_plan(
    line_size: int,
    modes: Sequence[str] = ("memory", "blocks", "arith"),
    write_restart: bool = True,
    divergence_threshold: int = 2,
    heatmap_cell_rows: Optional[int] = None,
) -> AnalyzerPlan:
    """Every streaming analysis, including the per-site debugging views."""
    plan = advisor_plan(line_size, modes, write_restart, heatmap_cell_rows)
    if "memory" in modes:
        plan.factories["site_reuse_element"] = lambda: SiteReuseAggregate(
            ReuseDistanceModel.ELEMENT, line_size, write_restart
        )
        plan.factories["site_reuse_cache_line"] = lambda: SiteReuseAggregate(
            ReuseDistanceModel.CACHE_LINE, line_size, write_restart
        )
        plan.factories["divergent_sites"] = lambda: DivergentSitesAggregate(
            line_size, divergence_threshold
        )
        plan.factories["stack_distance"] = lambda: StackDistanceAggregate(
            line_size
        )
    return plan
