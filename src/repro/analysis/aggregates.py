"""Streaming per-segment analyzer aggregates (the out-of-core drain).

The paper's analyzers are *online* consumers: reuse distance,
divergence and cache behaviour are computed incrementally as
instrumentation callbacks fire, never holding a full trace. This module
restores that property for the columnar pipeline: each analysis becomes
a :class:`SegmentAggregate` with an ``update(segment_columns)`` /
``merge(other)`` / ``finalize()`` contract, and the streaming drain
(:mod:`repro.profiler.streamdrain`) pushes one spill segment at a time
through an :class:`AnalyzerBank` of them -- peak drain memory is
O(segment), not O(trace).

Results are **byte-identical** to running the batch analyzers over a
fully materialized trace (pinned by ``tests/test_streaming_drain.py``):

* Per-CTA analyses (reuse distance, stack distance, site reuse) carry
  per-CTA cursor state across segment boundaries -- a CTA's events
  appear in trace order within every segment, so concatenating its
  per-segment slices reproduces the exact per-CTA stream the batch
  path regroups. The reuse cursor answers a whole segment at once with
  an offline dominance count (:func:`_prefix_rank_gt`) instead of a
  per-event Fenwick walk, carrying only each distinct element's last
  global position -- O(distinct elements) state, no per-event Python
  loop. The stack-distance cursor keeps the classic compacting Fenwick
  (its hole-sinking semantics are inherently sequential).
* Histogram-shaped results are integer sums, so per-segment
  accumulation order cannot change them.
* Dict-ordered results (per-site tables) record a canonical
  first-encounter key per site and sort at ``finalize()``, reproducing
  the batch insertion order exactly -- including across shard merges.

``merge()`` combines aggregates computed over *disjoint CTA/row
partitions* (fork-parallel shards): shard partials merge
aggregate-to-aggregate instead of trace-to-trace.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache_model import StackDistanceSummary
from repro.analysis.divergence_branch import (
    BranchDivergenceProfile,
    _BlockSiteStats,
)
from repro.analysis.divergence_memory import (
    MemoryDivergenceProfile,
    _column_unique_line_counts,
)
from repro.analysis.arithmetic import ArithmeticProfile
from repro.analysis.reuse_distance import (
    INFINITE,
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    _column_flat_events,
    _cta_row_segments,
    _Fenwick,
)
from repro.errors import AnalysisError

#: Initial (and minimum) time-axis capacity of an online Fenwick tree.
#: Small on purpose: one cursor lives per (CTA, model) for the whole
#: drain, and compaction resizes to 2x the live-slot count anyway.
_INITIAL_SLOTS = 128

#: Largest event batch :class:`_OnlineReuse` processes at once; larger
#: feeds are split so transient numpy scratch stays bounded.
_FEED_CHUNK = 2048


def _prefix_rank_gt(values: np.ndarray, prefix_len: np.ndarray,
                    thresholds: np.ndarray) -> np.ndarray:
    """``out[i] = #{k < prefix_len[i] : values[k] > thresholds[i]}``.

    The fully vectorized offline form of a merge-sort tree: every query
    prefix decomposes into at most ``log2(n)`` power-of-two blocks, and
    at each level the blocks are sorted once so a batched
    ``searchsorted`` ranks all thresholds against all blocks at once
    (block index packed into the key's high bits). Both ``values`` and
    ``thresholds`` are rank-compressed first, so rank comparison is
    value comparison and the packed keys stay far below 2**63.
    """
    n = int(values.size)
    q = int(prefix_len.size)
    out = np.zeros(q, dtype=np.int64)
    if n == 0 or q == 0 or not prefix_len.size:
        return out
    maxp = int(prefix_len.max())
    if maxp == 0:
        return out
    # Hand-rolled unique: np.unique lazily imports numpy.ma, which
    # alone costs ~1 MB of RSS -- real money against the streaming
    # drain's O(segment) memory budget.
    uniq = np.sort(np.concatenate([values, thresholds]))
    keep = np.empty(uniq.size, dtype=bool)
    keep[:1] = True
    np.not_equal(uniq[1:], uniq[:-1], out=keep[1:])
    uniq = uniq[keep]
    del keep
    v = np.searchsorted(uniq, values)
    t = np.searchsorted(uniq, thresholds)
    m = int(uniq.size)
    shift = int(m + 1).bit_length()
    for level in range(maxp.bit_length()):
        size = 1 << level
        has = (prefix_len & size) != 0
        if not np.any(has):
            continue
        if size == 1:
            # Level 0 blocks are single elements: compare directly.
            base = (prefix_len & ~1)[has]
            out[has] += v[base] > t[has]
            continue
        nb = (n + size - 1) // size
        # The sentinel rank m never lands inside a queried block: every
        # block used by some query ends at base+size <= prefix_len <= n.
        padded = np.full(nb * size, m, dtype=np.int64)
        padded[:n] = v
        blocks = padded.reshape(nb, size)
        blocks.sort(axis=1)  # in place: no second n-sized copy
        keys = (
            (np.arange(nb, dtype=np.int64)[:, None] << shift) | blocks
        ).ravel()
        del padded, blocks
        blk = ((prefix_len & ~((size << 1) - 1)) >> level)[has]
        qk = (blk << shift) | t[has]
        pos = np.searchsorted(keys, qk, side="right")
        del keys
        out[has] += size - (pos - blk * size)
    return out


class _OnlineReuse:
    """Per-CTA reuse-distance cursor carried across segment boundaries.

    Implements exactly the recurrence of
    :func:`repro.analysis.reuse_distance.reuse_distances_of_trace`, but
    over an unbounded stream -- with **no per-event loop**. The cursor
    carries each distinct element's last *global* event position (and
    whether that access was a write) in two sorted parallel numpy
    arrays; a whole segment is then answered at once:

    For a read at segment offset ``tau`` whose previous occurrence sits
    at global position ``p``, the reuse distance (distinct elements
    accessed strictly between the two occurrences) decomposes into

    ``distance = M + U - R``

    where ``M`` counts carried-in last-occurrence marks at positions
    ``> p`` (zero automatically when ``p`` is in-segment), ``U`` counts
    the event positions inside the window (positions are dense, so this
    is arithmetic), and ``R`` counts *removals*: events ``j`` before
    ``tau`` whose own previous occurrence lies at a position ``> p`` --
    each such event re-accessed (and thus un-counts) a mark that ``M``
    or ``U`` included. ``R`` is a 2-D dominance count over (prev
    position, segment offset) pairs, computed for all reads at once by
    :func:`_prefix_rank_gt`.

    State stays O(distinct elements); there is no time axis to compact
    because positions are global and never renumbered.
    """

    __slots__ = ("write_restart", "_t", "_keys", "_vals", "reads_seen")

    def __init__(self, write_restart: bool = True,
                 initial_slots: int = _INITIAL_SLOTS):
        self.write_restart = write_restart
        #: total events fed so far = next global event position.
        self._t = 0
        #: sorted distinct elements seen so far.
        self._keys = np.empty(0, dtype=np.int64)
        #: per key: last global position << 1 | last access was a write.
        self._vals = np.empty(0, dtype=np.int64)
        #: total read events fed so far (site ordering keys use this).
        self.reads_seen = 0

    def feed(self, elements: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Advance the stream; returns the distance of every *read*."""
        n = len(elements)
        if not n:
            return np.empty(0, dtype=np.int64)
        if n > _FEED_CHUNK:
            # Segmentation is free for this cursor -- the carry state
            # is exact across any boundary -- so bound the transient
            # working set (roughly twenty n-sized arrays live during a
            # feed) by our own chunk size, not the caller's segment
            # size. Peak RSS of a streaming drain is set right here.
            return np.concatenate([
                self.feed(elements[i:i + _FEED_CHUNK],
                          writes[i:i + _FEED_CHUNK])
                for i in range(0, n, _FEED_CHUNK)
            ])
        elements = np.asarray(elements, dtype=np.int64)
        w_int = np.asarray(writes, dtype=np.int64)
        base = self._t
        # Previous occurrence of each event's element, segment-local:
        # a stable sort by element keeps equal elements in trace order.
        order = np.argsort(elements, kind="stable")
        sorted_el = elements[order]
        same = np.empty(n, dtype=bool)
        same[0] = False
        np.equal(sorted_el[1:], sorted_el[:-1], out=same[1:])
        prev_idx = np.full(n, -1, dtype=np.int64)
        rep = np.flatnonzero(same)
        prev_idx[order[rep]] = order[rep - 1]
        # First occurrences look up the carry map instead.
        firsts = order[~same]
        fe = sorted_el[~same]
        del sorted_el, rep
        carry_pos = np.full(n, -1, dtype=np.int64)
        carry_write = np.zeros(n, dtype=bool)
        if self._keys.size:
            pos = np.searchsorted(self._keys, fe)
            hit = pos < self._keys.size
            hit[hit] = self._keys[pos[hit]] == fe[hit]
            packed = self._vals[pos[hit]]
            carry_pos[firsts[hit]] = packed >> 1
            carry_write[firsts[hit]] = (packed & 1).astype(bool)
            del pos, hit, packed
        del firsts

        # Every event's previous occurrence as a global position.
        # Scratch arrays are dropped the moment they are consumed:
        # peak streaming RSS is the widest set of live n-sized arrays
        # in this function.
        has_seg_prev = prev_idx >= 0
        prev_pos = np.where(has_seg_prev, base + prev_idx, carry_pos)
        prev_write = np.where(
            has_seg_prev, w_int[prev_idx] != 0, carry_write
        )
        del has_seg_prev, prev_idx, carry_pos, carry_write
        is_read = w_int == 0
        out = np.full(n, INFINITE, dtype=np.int64)
        finite = is_read & (prev_pos >= 0)
        if self.write_restart:
            finite &= ~prev_write
        del prev_write
        # An event's tau (segment offset) is its own index, so q_idx
        # doubles as the query taus.
        q_idx = np.flatnonzero(finite)
        del finite
        if q_idx.size:
            q_prev = prev_pos[q_idx]
            # U: event positions strictly inside (p, base + tau).
            in_seg = q_prev >= base
            window = np.where(in_seg, base + q_idx - q_prev - 1, q_idx)
            del in_seg
            # M: carried marks past p (all carries sit below base, so
            # this is zero whenever p is in-segment).
            if self._vals.size:
                marks = np.sort(self._vals >> 1)
                m_gt = marks.size - np.searchsorted(
                    marks, q_prev, side="right"
                )
                del marks
            else:
                m_gt = 0
            # R: removals before tau of marks past p. Arc events are
            # every event with *any* previous occurrence, in segment
            # order (their tau values are ascending by construction).
            arc_idx = np.flatnonzero(prev_pos >= 0)
            arc_prev = prev_pos[arc_idx]
            plen = np.searchsorted(arc_idx, q_idx, side="left")
            removals = _prefix_rank_gt(arc_prev, plen, q_prev)
            del arc_idx, arc_prev, plen, q_prev
            out[q_idx] = window + m_gt - removals
            del window, removals
        del prev_pos, q_idx
        result = out[is_read]
        del out, is_read
        self.reads_seen += int(result.size)

        # Write back each distinct element's final (position, was_write);
        # stable sort keeps old entries first, so "keep the last of
        # each duplicate run" prefers this segment's value.
        ends = np.flatnonzero(np.append(~same[1:], True))
        last_events = order[ends]
        new_packed = ((base + last_events) << 1) | w_int[last_events]
        keys = np.concatenate([self._keys, fe])
        vals = np.concatenate([self._vals, new_packed])
        mo = np.argsort(keys, kind="stable")
        keys = keys[mo]
        vals = vals[mo]
        keep = np.append(keys[1:] != keys[:-1], True)
        self._keys = keys[keep]
        self._vals = vals[keep]
        self._t = base + n
        return result


class _OnlineStack:
    """Per-CTA LRU stack-distance cursor (write-evict holes included).

    The streaming counterpart of
    :func:`repro.analysis.cache_model.stack_distances`. Live slots are
    resident lines *plus* write-evict holes; compaction renumbers both
    together, preserving slot order (which the hole-sinking comparisons
    depend on) and every range count.
    """

    __slots__ = ("_tree", "_cap", "_t", "_position", "_holes")

    def __init__(self):
        self._cap = _INITIAL_SLOTS
        self._tree = _Fenwick(self._cap)
        self._t = 0
        self._position: Dict[int, int] = {}
        self._holes: List[int] = []  # max-heap (negated slot numbers)

    def _compact(self) -> None:
        slots = sorted(
            [(t, line) for line, t in self._position.items()]
            + [(-h, None) for h in self._holes],
            key=lambda s: s[0],
        )
        k = len(slots)
        self._cap = max(_INITIAL_SLOTS, 2 * k)
        self._tree = _Fenwick(self._cap)
        holes: List[int] = []
        for i, (_, line) in enumerate(slots):
            self._tree.add(i, 1)
            if line is None:
                holes.append(-i)
            else:
                self._position[line] = i
        heapq.heapify(holes)
        self._holes = holes
        self._t = k

    def feed(self, lines: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Advance the stream; returns the stack distance per *read*."""
        out: List[int] = []
        position = self._position
        holes = self._holes
        for line, is_write in zip(lines.tolist(), writes.tolist()):
            prev = position.get(line)
            if is_write:
                # Write-evict / write-no-allocate: drop the line, keep
                # its slot as a hole (see cache_model.stack_distances).
                if prev is not None:
                    heapq.heappush(holes, -prev)
                    del position[line]
                continue
            if self._t >= self._cap:
                self._compact()
                holes = self._holes
                prev = position.get(line)
            t = self._t
            tree = self._tree
            if prev is None:
                out.append(INFINITE)
                if holes:
                    tree.add(-heapq.heappop(holes), -1)
            else:
                out.append(tree.range_sum(prev + 1, t - 1))
                if holes and -holes[0] > prev:
                    hole = -heapq.heapreplace(holes, -prev)
                    tree.add(hole, -1)
                else:
                    tree.add(prev, -1)
            tree.add(t, +1)
            position[line] = t
            self._t = t + 1
        return np.asarray(out, dtype=np.int64)


class SegmentAggregate:
    """One streaming analysis: consumes column segments, merges, finalizes.

    ``stream`` names the trace stream the aggregate consumes
    ("memory", "block" or "arith"); the :class:`AnalyzerBank` routes
    segments accordingly. ``update`` sees each kept segment exactly
    once, in trace order; ``merge`` combines a peer computed over a
    disjoint CTA partition (fork-parallel shards, in shard order);
    ``finalize`` returns the batch-identical analysis result.
    """

    stream = "memory"

    def update(self, cols) -> None:
        raise NotImplementedError

    def merge(self, other: "SegmentAggregate") -> None:
        raise NotImplementedError

    def finalize(self):
        raise NotImplementedError


def _merge_cta_states(mine: dict, theirs: dict, what: str) -> None:
    overlap = mine.keys() & theirs.keys()
    if overlap:
        raise AnalysisError(
            f"cannot merge {what} aggregates with overlapping CTAs "
            f"(e.g. {sorted(overlap)[:3]}): shard partitions must be disjoint"
        )
    mine.update(theirs)


class ReuseDistanceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.reuse_distance.reuse_distance_analysis`."""

    stream = "memory"

    def __init__(self, model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
                 line_size: int = 128, write_restart: bool = True):
        self.model = model
        self.line_size = line_size
        self.write_restart = write_restart
        self._states: Dict[int, _OnlineReuse] = {}
        self.histogram = ReuseDistanceHistogram(model=model)

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            elements, writes = _column_flat_events(
                cols, rows, self.model, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineReuse(self.write_restart)
            self.histogram.add_samples(state.feed(elements, writes))

    def merge(self, other: "ReuseDistanceAggregate") -> None:
        _merge_cta_states(self._states, other._states, "reuse-distance")
        self.histogram.merge(other.histogram)

    def finalize(self) -> ReuseDistanceHistogram:
        return self.histogram


class SiteReuseAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.reuse_distance.site_reuse_analysis`.

    The batch result is a dict in first-encounter order: CTAs ascending,
    then first read position within the first CTA that reads the site.
    Each site records its minimal ``(cta, read_position)`` key and
    ``finalize`` sorts by it, reproducing that order exactly.
    """

    stream = "memory"

    def __init__(self, model: ReuseDistanceModel = ReuseDistanceModel.ELEMENT,
                 line_size: int = 128, write_restart: bool = True):
        self.model = model
        self.line_size = line_size
        self.write_restart = write_restart
        self._states: Dict[int, _OnlineReuse] = {}
        self._hists: Dict[Tuple[int, int], ReuseDistanceHistogram] = {}
        self._order: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            elements, writes = _column_flat_events(
                cols, rows, self.model, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineReuse(self.write_restart)
            distances = state.feed(elements, writes)
            if not distances.size:
                continue
            reads = ~writes
            mask = cols.mask[rows]
            lanes_line = np.broadcast_to(
                cols.line[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            lanes_col = np.broadcast_to(
                cols.col[rows].astype(np.int64)[:, None], mask.shape
            )[mask][reads]
            pairs = np.stack([lanes_line, lanes_col], axis=1)
            uniq, first, inverse = np.unique(
                pairs, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            by_site = np.argsort(inverse, kind="stable")
            bounds = np.cumsum(np.bincount(inverse))[:-1]
            groups = np.split(distances[by_site], bounds)
            base = state.reads_seen - distances.size
            for j in range(len(uniq)):
                key = (int(uniq[j, 0]), int(uniq[j, 1]))
                hist = self._hists.get(key)
                if hist is None:
                    hist = ReuseDistanceHistogram(model=self.model)
                    self._hists[key] = hist
                order_key = (cta, base + int(first[j]))
                known = self._order.get(key)
                if known is None or order_key < known:
                    self._order[key] = order_key
                hist.add_samples(groups[j])

    def merge(self, other: "SiteReuseAggregate") -> None:
        _merge_cta_states(self._states, other._states, "site-reuse")
        for key, hist in other._hists.items():
            mine = self._hists.get(key)
            if mine is None:
                self._hists[key] = hist
            else:
                mine.merge(hist)
            known = self._order.get(key)
            if known is None or other._order[key] < known:
                self._order[key] = other._order[key]

    def finalize(self) -> Dict[Tuple[int, int], ReuseDistanceHistogram]:
        ordered = sorted(self._hists, key=lambda key: self._order[key])
        return {key: self._hists[key] for key in ordered}


class StackDistanceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.cache_model.profile_stack_distances`.

    The batch path returns the raw sample list; out of core that would
    defeat the point, so this aggregate folds the samples into a
    :class:`~repro.analysis.cache_model.StackDistanceSummary` -- an
    exact distance->count table that reproduces the same
    :class:`~repro.analysis.cache_model.HitRateCurve` float-for-float.
    """

    stream = "memory"

    def __init__(self, line_size: int = 128):
        self.line_size = line_size
        self._states: Dict[int, _OnlineStack] = {}
        self._counts: Counter = Counter()
        self._infinite = 0

    def update(self, cols) -> None:
        for rows in _cta_row_segments(cols.cta):
            cta = int(cols.cta[rows[0]])
            lines, writes = _column_flat_events(
                cols, rows, ReuseDistanceModel.CACHE_LINE, self.line_size
            )
            state = self._states.get(cta)
            if state is None:
                state = self._states[cta] = _OnlineStack()
            distances = state.feed(lines, writes)
            if not distances.size:
                continue
            finite = distances[distances != INFINITE]
            self._infinite += int(distances.size - finite.size)
            if finite.size:
                vals, counts = np.unique(finite, return_counts=True)
                for v, c in zip(vals.tolist(), counts.tolist()):
                    self._counts[v] += c

    def merge(self, other: "StackDistanceAggregate") -> None:
        _merge_cta_states(self._states, other._states, "stack-distance")
        self._counts.update(other._counts)
        self._infinite += other._infinite

    def finalize(self) -> StackDistanceSummary:
        return StackDistanceSummary(
            counts=self._counts,
            infinite=self._infinite,
            line_size=self.line_size,
        )


class MemoryDivergenceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_memory.memory_divergence_analysis`."""

    stream = "memory"

    def __init__(self, line_size: int):
        self.profile = MemoryDivergenceProfile(line_size=line_size)

    def update(self, cols) -> None:
        counts = _column_unique_line_counts(cols, self.profile.line_size)
        if counts.size:
            for k, c in enumerate(np.bincount(counts).tolist()):
                if c:
                    self.profile.counts[k] += c

    def merge(self, other: "MemoryDivergenceAggregate") -> None:
        self.profile.merge(other.profile)

    def finalize(self) -> MemoryDivergenceProfile:
        return self.profile


class DivergentSitesAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_memory.divergent_sites`.

    First-encounter dict order is reproduced via the global row index of
    each site's first divergent access (a running row offset makes the
    per-segment indices global; ``merge`` shifts the peer's offsets past
    this shard's rows, matching the concatenated trace).
    """

    stream = "memory"

    def __init__(self, line_size: int, threshold: int = 2):
        self.line_size = line_size
        self.threshold = threshold
        self._counts: Dict[Tuple[int, int], int] = {}
        self._first: Dict[Tuple[int, int], int] = {}
        self._rows_seen = 0

    def update(self, cols) -> None:
        counts = _column_unique_line_counts(cols, self.line_size)
        sel = np.flatnonzero(counts >= self.threshold)
        if sel.size:
            pairs = np.stack(
                [
                    cols.line[sel].astype(np.int64),
                    cols.col[sel].astype(np.int64),
                ],
                axis=1,
            )
            uniq, first, cnt = np.unique(
                pairs, axis=0, return_index=True, return_counts=True
            )
            for j in range(len(uniq)):
                key = (int(uniq[j, 0]), int(uniq[j, 1]))
                row = self._rows_seen + int(sel[first[j]])
                known = self._first.get(key)
                if known is None or row < known:
                    self._first[key] = row
                self._counts[key] = self._counts.get(key, 0) + int(cnt[j])
        self._rows_seen += len(cols)

    def merge(self, other: "DivergentSitesAggregate") -> None:
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
            row = self._rows_seen + other._first[key]
            known = self._first.get(key)
            if known is None or row < known:
                self._first[key] = row
        self._rows_seen += other._rows_seen

    def finalize(self) -> Dict[Tuple[int, int], int]:
        ordered = sorted(self._counts, key=lambda key: self._first[key])
        return {key: self._counts[key] for key in ordered}


class BranchDivergenceAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.divergence_branch.branch_divergence_analysis`.

    ``per_block`` insertion order is trace first-encounter order; the
    segments arrive in trace order (and shards merge in shard order),
    so plain sequential insertion reproduces it.
    """

    stream = "block"

    def __init__(self):
        self.profile = BranchDivergenceProfile()

    def update(self, cols) -> None:
        n = len(cols)
        if not n:
            return
        profile = self.profile
        profile.total_blocks += n
        divergent = np.asarray(cols.active_lanes) < np.asarray(
            cols.resident_lanes
        )
        profile.divergent_blocks += int(divergent.sum())
        per_block = profile.per_block
        lines = cols.line
        flags = divergent.tolist()
        for i, name in enumerate(cols.block_names):
            stats = per_block.get(name)
            if stats is None:
                stats = _BlockSiteStats(line=int(lines[i]))
                per_block[name] = stats
            stats.executions += 1
            if flags[i]:
                stats.divergent += 1

    def merge(self, other: "BranchDivergenceAggregate") -> None:
        self.profile.merge(other.profile)

    def finalize(self) -> BranchDivergenceProfile:
        return self.profile


class ArithmeticAggregate(SegmentAggregate):
    """Streaming :func:`~repro.analysis.arithmetic.arithmetic_analysis`."""

    stream = "arith"

    def __init__(self):
        self.profile = ArithmeticProfile()

    def update(self, cols) -> None:
        if not len(cols):
            return
        lanes = np.asarray(cols.active_lanes, dtype=np.int64)
        is_float = np.asarray(cols.is_float, dtype=bool)
        self.profile.lane_flops += int(lanes[is_float].sum())
        self.profile.lane_intops += int(lanes[~is_float].sum())
        by_opcode = self.profile.by_opcode
        by_line = self.profile.by_line
        for opcode, line, n in zip(
            cols.opcodes, cols.line.tolist(), lanes.tolist()
        ):
            by_opcode[opcode] += n
            by_line[line] += n

    def merge(self, other: "ArithmeticAggregate") -> None:
        self.profile.lane_flops += other.profile.lane_flops
        self.profile.lane_intops += other.profile.lane_intops
        self.profile.by_opcode.update(other.profile.by_opcode)
        self.profile.by_line.update(other.profile.by_line)

    def finalize(self) -> ArithmeticProfile:
        return self.profile


class AnalyzerBank:
    """A named set of aggregates fed by one streaming drain.

    The drain calls ``update_memory`` / ``update_block`` /
    ``update_arith`` once per kept segment; shard banks merge with
    :meth:`merge` (in shard order); :meth:`result` finalizes lazily and
    caches, so analyses can be read repeatedly.
    """

    def __init__(self, aggregates: Dict[str, SegmentAggregate]):
        self.aggregates = dict(aggregates)
        self._finalized: Dict[str, object] = {}
        self._by_stream: Dict[str, List[SegmentAggregate]] = {
            "memory": [], "block": [], "arith": [],
        }
        for agg in self.aggregates.values():
            self._by_stream[agg.stream].append(agg)

    def update_memory(self, cols) -> None:
        for agg in self._by_stream["memory"]:
            agg.update(cols)

    def update_block(self, cols) -> None:
        for agg in self._by_stream["block"]:
            agg.update(cols)

    def update_arith(self, cols) -> None:
        for agg in self._by_stream["arith"]:
            agg.update(cols)

    def merge(self, other: "AnalyzerBank") -> None:
        if self._finalized or other._finalized:
            raise AnalysisError("cannot merge a finalized analyzer bank")
        if self.aggregates.keys() != other.aggregates.keys():
            raise AnalysisError(
                "cannot merge analyzer banks with different aggregate sets: "
                f"{sorted(self.aggregates)} vs {sorted(other.aggregates)}"
            )
        for name, agg in self.aggregates.items():
            agg.merge(other.aggregates[name])

    def result(self, name: str):
        if name in self._finalized:
            return self._finalized[name]
        if name not in self.aggregates:
            raise AnalysisError(
                f"no {name!r} aggregate in this streaming plan "
                f"(have: {', '.join(sorted(self._names()))})"
            )
        self._finalized[name] = self.aggregates[name].finalize()
        return self._finalized[name]

    def _names(self) -> List[str]:
        return sorted(set(self.aggregates) | set(self._finalized))

    def results(self) -> Dict[str, object]:
        return {name: self.result(name) for name in self._names()}

    def seal(self) -> None:
        """Finalize every result and release the cursor state.

        A profile retains its bank for the lifetime of the session, and
        the drain-time cursor state (per-CTA Fenwick trees, carry maps)
        is much larger than the finalized results (histograms,
        counters). Nothing reads aggregate internals after the drain --
        cross-profile combination happens on finalized results
        (``ReuseDistanceHistogram.merge`` etc.), never bank-to-bank --
        so ``kernel_end`` seals the bank once streaming completes and
        only one launch's cursors are ever alive at a time.
        """
        for name in list(self.aggregates):
            self.result(name)
        self.aggregates = {}
        self._by_stream = {"memory": [], "block": [], "arith": []}


class AnalyzerPlan:
    """A recipe for the aggregates a streaming drain instantiates.

    A plan is shared across launches (and inherited by forked shard
    workers); every ``kernel_end`` creates a fresh bank from it.
    """

    def __init__(self, factories: Dict[str, Callable[[], SegmentAggregate]]):
        self.factories = dict(factories)

    def create_bank(self) -> AnalyzerBank:
        return AnalyzerBank(
            {name: make() for name, make in self.factories.items()}
        )


def advisor_plan(
    line_size: int,
    modes: Sequence[str] = ("memory", "blocks"),
    write_restart: bool = True,
    heatmap_cell_rows: Optional[int] = None,
) -> AnalyzerPlan:
    """The aggregates :class:`~repro.optim.advisor.CUDAAdvisor` needs.

    ``heatmap_cell_rows`` (when set, and "memory" is instrumented) adds
    the :class:`~repro.analysis.heatmap.HeatmapAggregate` so streaming
    drains build the per-allocation x time heat map as they go.
    """
    factories: Dict[str, Callable[[], SegmentAggregate]] = {}
    if "memory" in modes and heatmap_cell_rows is not None:
        from repro.analysis.heatmap import HeatmapAggregate

        factories["heatmap"] = lambda: HeatmapAggregate(heatmap_cell_rows)
    if "memory" in modes:
        factories["reuse_element"] = lambda: ReuseDistanceAggregate(
            ReuseDistanceModel.ELEMENT, line_size, write_restart
        )
        factories["reuse_cache_line"] = lambda: ReuseDistanceAggregate(
            ReuseDistanceModel.CACHE_LINE, line_size, write_restart
        )
        factories["memory_divergence"] = lambda: MemoryDivergenceAggregate(
            line_size
        )
    if "blocks" in modes:
        factories["branch_divergence"] = BranchDivergenceAggregate
    if "arith" in modes:
        factories["arithmetic"] = ArithmeticAggregate
    return AnalyzerPlan(factories)


def full_plan(
    line_size: int,
    modes: Sequence[str] = ("memory", "blocks", "arith"),
    write_restart: bool = True,
    divergence_threshold: int = 2,
    heatmap_cell_rows: Optional[int] = None,
) -> AnalyzerPlan:
    """Every streaming analysis, including the per-site debugging views."""
    plan = advisor_plan(line_size, modes, write_restart, heatmap_cell_rows)
    if "memory" in modes:
        plan.factories["site_reuse_element"] = lambda: SiteReuseAggregate(
            ReuseDistanceModel.ELEMENT, line_size, write_restart
        )
        plan.factories["site_reuse_cache_line"] = lambda: SiteReuseAggregate(
            ReuseDistanceModel.CACHE_LINE, line_size, write_restart
        )
        plan.factories["divergent_sites"] = lambda: DivergentSitesAggregate(
            line_size, divergence_threshold
        )
        plan.factories["stack_distance"] = lambda: StackDistanceAggregate(
            line_size
        )
    return plan
