"""The pool worker: a persistent process running whole profiling jobs.

:func:`run_job` is the single definition of "execute one job" -- the
forked pool workers call it, and the service parent calls the very same
function for its serial fallback, which is what makes a degraded-serial
result byte-identical to a fresh pooled one.

:func:`worker_main` is the long-lived loop a pool process runs: receive
a job message, acknowledge it, heartbeat from a background thread while
the job executes, send back ``("ok", ...)`` or ``("err", ...)``, repeat
until the parent sends ``None`` (shutdown) or closes the pipe.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.errors import ReproError
from repro.export import export_json, profile_export, validate
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100
from repro.optim.advisor import CUDAAdvisor
from repro.service.jobs import JobSpec

#: arch-name -> architecture resolution for picklable job specs.
SERVICE_ARCHES = {"kepler": KEPLER_K40C, "pascal": PASCAL_P100}

#: heartbeat cadence of a busy worker (seconds); the service's job
#: timeout should be a small multiple of this.
HEARTBEAT_INTERVAL = 0.1


def run_job(spec: JobSpec, hints: Optional[Dict[str, object]] = None) -> dict:
    """Execute one profiling job; returns ``{"payload", "launches"}``.

    ``hints`` carries execution knobs that may change *how* the job
    runs but never its payload bytes (backend, shard workers, spill,
    streaming or fused drain) -- the export document is drain-invariant
    by construction, which this function leans on. Jobs run **fused by
    default** (analysis in flight, no trace round-trip); pass
    ``streaming_drain`` or ``fused_drain: False`` to opt out.
    """
    hints = hints or {}
    if spec.arch not in SERVICE_ARCHES:
        raise ReproError(
            f"unknown arch {spec.arch!r}: expected one of "
            f"{', '.join(sorted(SERVICE_ARCHES))}"
        )
    from repro.apps import build_app

    kwargs: Dict[str, object] = {}
    if spec.heatmap_cell_rows is not None:
        kwargs["heatmap_cell_rows"] = spec.heatmap_cell_rows
    advisor = CUDAAdvisor(
        arch=SERVICE_ARCHES[spec.arch],
        modes=spec.modes,
        measure_overhead=spec.measure_overhead,
        buffer_capacity=spec.buffer_capacity,
        sample_rate=spec.sample_rate,
        heatmap=spec.heatmap,
        backend=hints.get("backend"),
        parallel_workers=hints.get("parallel_workers"),
        failure_policy=hints.get("failure_policy"),
        spill_dir=hints.get("spill_dir"),
        spill_rows=hints.get("spill_rows") or 65536,
        streaming_drain=bool(hints.get("streaming_drain")),
        fused_drain=bool(
            hints.get("fused_drain", not hints.get("streaming_drain"))
        ),
        drain_workers=hints.get("drain_workers"),
        **kwargs,
    )
    report = advisor.profile(build_app(spec.app, **dict(spec.app_kwargs)))
    doc = profile_export(
        report, time_buckets=spec.time_buckets, columnar=spec.columnar
    )
    # The emitter's own contract: a document that fails the bundled
    # schema is a bug caught in the worker, not at a cache consumer.
    validate(doc)
    return {
        "payload": export_json(doc),
        "launches": len(report.session.profiles),
    }


class _Heartbeat:
    """Background heartbeats while a job runs, so a long but healthy
    job is never confused with a hung one."""

    def __init__(self, conn, lock: threading.Lock, job_id: str,
                 interval: float):
        self._conn = conn
        self._lock = lock
        self._job_id = job_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    self._conn.send(("hb", self._job_id))
            except (BrokenPipeError, OSError):  # parent gone
                return


def worker_main(worker_id: int, conn, injector=None,
                heartbeat_interval: float = HEARTBEAT_INTERVAL) -> None:
    """The persistent pool-worker loop (runs in a forked process)."""
    lock = threading.Lock()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:  # orderly shutdown
            return
        job_id = message["id"]
        attempt = message["attempt"]
        spec: JobSpec = message["spec"]
        ctx = {
            "job": job_id, "app": spec.app,
            "attempt": attempt, "worker": worker_id,
        }
        if injector is not None and injector.fires(
            "service_worker_crash", **ctx
        ):
            os._exit(17)  # no result, no traceback: a true crash
        with lock:
            conn.send(("hb", job_id))
        if injector is not None and injector.fires("service_job_hang", **ctx):
            while True:  # no further heartbeats: the reaper must act
                time.sleep(3600)
        try:
            with _Heartbeat(conn, lock, job_id, heartbeat_interval):
                result = run_job(spec, hints=message.get("hints"))
        except Exception as exc:  # noqa: BLE001 -- report, don't die
            with lock:
                conn.send(("err", (job_id, f"{type(exc).__name__}: {exc}")))
        else:
            with lock:
                conn.send(("ok", (job_id, result)))
