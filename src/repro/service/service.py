"""The long-lived profiling service: submit / poll / result / wait.

A :class:`ProfilingService` schedules *whole profiling jobs* across a
persistent worker pool, memoizes results in a content-addressed
crash-safe cache, and survives worker crashes, job hangs, corrupted
cache entries and submit storms -- the profiling-as-a-service tier on
top of the PR-3 reliability layer (``docs/service.md``).

Client API::

    with ProfilingService(workers=2, cache_dir=".repro-cache") as svc:
        handle = svc.submit("bfs", {"modes": ("memory", "blocks")})
        while handle.poll() not in ("done", "failed"):
            ...                        # or: svc.stream(handle)
        result = handle.result()       # canonical export_json text

Robustness ladder (job scope, mirroring ``device.failure_policy``):

``"strict"``
    A job fault (worker crash, hang, error) fails the job immediately;
    no retry, no fallback.  ``result()`` raises :class:`ServiceError`.
``"degrade"`` (default)
    Faulted jobs retry with bounded exponential backoff on a healed
    pool; exhausted retries fall back to serial in-process execution.
    Each degradation emits one structured
    :class:`~repro.errors.LaunchDegradedWarning` per (reason, app).
``"best_effort"``
    As ``degrade`` but silent; reasons still land on the result.

Every result -- fresh, retried, degraded-serial or cache-hit -- carries
the same canonical payload bytes for the same :class:`JobSpec`; the
chaos suite (``tests/test_service_chaos.py``) pins that identity under
every injected fault.
"""

from __future__ import annotations

import hashlib
import itertools
import re
import time
import warnings
from typing import Dict, List, Iterator, Optional

from repro.errors import LaunchDegradedWarning, ReproError
from repro.export import SCHEMA_VERSION
from repro.service import pool as poolmod
from repro.service.cache import ResultCache
from repro.service.jobs import (
    CACHE_ENTRY_CORRUPT,
    CACHE_HIT,
    DEGRADED_SERIAL,
    DONE,
    FAILED,
    FRESH,
    JOB_SERIAL_FALLBACK,
    JOB_TIMEOUT,
    JOB_WORKER_CRASH,
    JOB_WORKER_ERROR,
    POOL_SHRUNK,
    QUEUED,
    RETRIED,
    RETRYING,
    RUNNING,
    SERIAL,
    SERVICE_FORK_UNAVAILABLE,
    JobHandle,
    JobResult,
    JobSpec,
    ServiceError,
)
from repro.service.pool import WorkerPool
from repro.service.worker import run_job

#: source tag for a submit coalesced onto an identical in-flight job.
COALESCED = "coalesced"

_FAULT_REASONS = {
    poolmod.CRASH: JOB_WORKER_CRASH,
    poolmod.TIMEOUT: JOB_TIMEOUT,
    poolmod.ERR: JOB_WORKER_ERROR,
}

#: JobSpec fields settable through a submit() config dict.
_SPEC_FIELDS = (
    "arch", "modes", "sample_rate", "buffer_capacity", "measure_overhead",
    "heatmap", "heatmap_cell_rows", "time_buckets", "columnar",
)

#: execution-hint keys forwarded to the worker (never part of the key).
_HINT_FIELDS = (
    "backend", "parallel_workers", "failure_policy", "spill_dir",
    "spill_rows", "streaming_drain", "fused_drain", "drain_workers",
)


def _canonical_kwargs(app_kwargs: Optional[dict]) -> tuple:
    return tuple(sorted((app_kwargs or {}).items()))


_IR_NAME = re.compile(r"%[A-Za-z_][A-Za-z0-9_.]*")


def _canonical_ir(text: str) -> str:
    """Alpha-rename SSA values/labels to first-appearance order.

    Printed value names carry a process-global uniquing counter
    (``%k.45`` in one build, ``%k.46`` in the next), so the raw text is
    not a content address.  Renaming every ``%name`` to ``%vN`` in
    order of first appearance makes structurally identical modules hash
    identically across builds and across processes -- the property the
    persistent cache key relies on.
    """
    names: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        name = match.group(0)
        if name not in names:
            names[name] = f"%v{len(names)}"
        return names[name]

    return _IR_NAME.sub(rename, text)


class ProfilingService:
    """Async scheduler + result cache for whole profiling jobs."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        job_timeout: Optional[float] = None,
        max_attempts: int = 3,
        backoff: float = 0.05,
        failure_policy: str = "degrade",
        injector=None,
        heartbeat_interval: float = 0.1,
        max_respawns: Optional[int] = None,
    ):
        if failure_policy not in ("strict", "degrade", "best_effort"):
            raise ServiceError(
                f"unknown failure policy {failure_policy!r}"
            )
        self.failure_policy = failure_policy
        self.max_attempts = max(1, max_attempts)
        self.backoff = backoff
        self.injector = injector
        self.cache = (
            ResultCache(cache_dir, injector=injector,
                        max_bytes=cache_max_bytes)
            if cache_dir is not None else None
        )
        self.counters: Dict[str, int] = {
            "submitted": 0, "cache_hits": 0, "cache_misses": 0,
            "coalesced": 0, "dispatched": 0, "completed": 0, "retries": 0,
            "worker_crashes": 0, "job_timeouts": 0, "worker_errors": 0,
            "serial_fallbacks": 0, "pool_shrinks": 0, "respawns": 0,
            "jobs_executed": 0, "launches_simulated": 0,
        }
        self.handles: Dict[str, JobHandle] = {}
        self._queue: List[str] = []  # job ids awaiting dispatch
        self._backlog: List[List[object]] = []  # [ready_time, job_id]
        self._running: Dict[str, int] = {}  # job id -> worker id
        self._coalesced: Dict[str, List[str]] = {}  # primary -> followers
        self._inflight_by_key: Dict[str, str] = {}  # cache key -> primary
        self._hints: Dict[str, dict] = {}  # job id -> exec hints
        self._ids = itertools.count(1)
        self._ir_hash_memo: Dict[str, str] = {}
        self._warned = set()
        workers = max(0, workers)
        if workers and not poolmod.fork_available():  # pragma: no cover
            self._degrade_warn(
                SERVICE_FORK_UNAVAILABLE, "*",
                "this platform cannot fork worker processes; the service "
                "runs every job serially in-process",
            )
            workers = 0
        self.pool = WorkerPool(
            workers,
            injector=injector,
            job_timeout=job_timeout,
            heartbeat_interval=heartbeat_interval,
            max_respawns=max_respawns,
        ) if workers else None

    # -- context management --------------------------------------------------
    def __enter__(self) -> "ProfilingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the pool; pending jobs stay un-run (resubmit elsewhere)."""
        if self.pool is not None:
            self.pool.shutdown()

    # -- submit --------------------------------------------------------------
    def submit(self, app: str, config: Optional[dict] = None,
               app_kwargs: Optional[dict] = None) -> JobHandle:
        """Enqueue one profiling job; returns immediately with a handle.

        ``config`` may carry result-shaping knobs (``modes``, ``arch``,
        ``sample_rate``, ``heatmap``...; these feed the cache key) and
        execution hints (``backend``, ``streaming_drain``...; these do
        not).  A cache hit resolves the handle before ``submit``
        returns; an identical in-flight spec is coalesced instead of
        re-simulated.
        """
        config = dict(config or {})
        spec_kwargs = {
            k: config.pop(k) for k in list(config) if k in _SPEC_FIELDS
        }
        hints = {k: config.pop(k) for k in list(config) if k in _HINT_FIELDS}
        if config:
            raise ServiceError(
                "unknown submit() config keys: "
                + ", ".join(sorted(config))
            )
        if "modes" in spec_kwargs:
            spec_kwargs["modes"] = tuple(spec_kwargs["modes"])
        spec = JobSpec(
            app=app, app_kwargs=_canonical_kwargs(app_kwargs), **spec_kwargs
        )
        if spec.heatmap and "memory" not in spec.modes:
            raise ServiceError(
                "heatmap=True needs the 'memory' instrumentation mode"
            )
        try:
            ir_hash = self._module_ir_hash(app)
        except ReproError as exc:
            raise ServiceError(f"cannot submit {app!r}: {exc}") from exc
        key = spec.cache_key(ir_hash, SCHEMA_VERSION)
        job_id = f"job-{next(self._ids)}"
        handle = JobHandle(job_id, spec, key, self)
        self.handles[job_id] = handle
        self._hints[job_id] = hints
        self.counters["submitted"] += 1
        handle.record("submitted", app=app, key=key)

        if self.cache is not None:
            payload = self.cache.get(key)
            quarantined = self.cache.stats["quarantined"]
            if payload is not None:
                self.counters["cache_hits"] += 1
                handle.record(DONE, source=CACHE_HIT)
                handle.result_value = JobResult(
                    payload=payload, source=CACHE_HIT, key=key
                )
                return handle
            self.counters["cache_misses"] += 1
            if quarantined and self.cache.quarantine_log and (
                self.cache.quarantine_log[-1]["key"] == key
            ):
                # this very submit found (and quarantined) a corrupt
                # entry: surface the reason on the eventual result
                handle.reasons.append(CACHE_ENTRY_CORRUPT)
                handle.record("cache-quarantined", key=key)

        primary = self._inflight_by_key.get(key)
        if primary is not None and primary in self.handles and (
            not self.handles[primary].done
        ):
            self.counters["coalesced"] += 1
            self._coalesced.setdefault(primary, []).append(job_id)
            handle.record("coalesced", with_job=primary)
            return handle

        self._inflight_by_key[key] = job_id
        self._queue.append(job_id)
        handle.record(QUEUED)
        self._fire_pool_loss(handle)
        return handle

    def _fire_pool_loss(self, handle: JobHandle) -> None:
        """The service_pool_loss injection point (worker loss at submit)."""
        if self.injector is None or self.pool is None:
            return
        params = self.injector.fire(
            "service_pool_loss", job=handle.id, app=handle.spec.app
        )
        if params is None:
            return
        live = sorted(self.pool.workers)
        if not live:
            return
        victim = int(params.get("worker", live[0]))
        if victim not in self.pool.workers:
            victim = live[0]
        self.pool.kill_worker(victim)

    def _module_ir_hash(self, app: str) -> str:
        """Optimized-module content hash, memoized per app name.

        The printed IR is alpha-renamed first (:func:`_canonical_ir`)
        so the hash -- and hence every cache key -- is stable across
        service restarts and CLI invocations.
        """
        cached = self._ir_hash_memo.get(app)
        if cached is not None:
            return cached
        from repro.apps import build_app
        from repro.frontend.dsl import compile_kernels
        from repro.ir import print_module
        from repro.passes import optimization_pipeline

        program = build_app(app)
        module = compile_kernels(list(program.kernels), app)
        optimization_pipeline().run(module)
        text = _canonical_ir(print_module(module))
        digest = hashlib.sha256(text.encode()).hexdigest()
        self._ir_hash_memo[app] = digest
        return digest

    # -- client-facing progress ----------------------------------------------
    def poll(self, handle: JobHandle) -> str:
        """One non-blocking scheduler step; returns the job's state."""
        if not handle.done:
            self._step(0.0)
        return handle.state

    def wait(self, handle: Optional[JobHandle] = None,
             timeout: Optional[float] = None) -> str:
        """Drive the scheduler until ``handle`` (or every job) finishes."""
        deadline = None if timeout is None else time.monotonic() + timeout

        def pending() -> bool:
            if handle is not None:
                return not handle.done
            return any(not h.done for h in self.handles.values())

        while pending():
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    "wait() timed out with jobs still pending"
                )
            self._step(0.02)
        return handle.state if handle is not None else DONE

    def result(self, handle: JobHandle,
               timeout: Optional[float] = None) -> JobResult:
        self.wait(handle, timeout=timeout)
        if handle.state == FAILED:
            raise ServiceError(
                f"{handle.id} ({handle.spec.app}) failed: {handle.error}"
            )
        assert handle.result_value is not None
        return handle.result_value

    def stream(self, handle: JobHandle) -> Iterator:
        """Yield the job's status events as they happen, until terminal."""
        seen = 0
        while True:
            while seen < len(handle.events):
                yield handle.events[seen]
                seen += 1
            if handle.done:
                return
            self._step(0.02)

    # -- the scheduler -------------------------------------------------------
    def _step(self, block: float) -> None:
        """One pump of the event loop: requeue, dispatch, reap, finish."""
        now = time.monotonic()
        for item in list(self._backlog):
            if item[0] <= now:
                self._backlog.remove(item)
                self._queue.append(item[1])

        if self.pool is not None and self.pool.live:
            self._dispatch_queued()
            for event in self.pool.step(timeout=block):
                self._handle_pool_event(event)
            self._dispatch_queued()
        # No live workers (workers=0, or the pool shrank to nothing):
        # run whatever is due right here, serially.
        if self.pool is None or not self.pool.live:
            for job_id in list(self._queue):
                self._queue.remove(job_id)
                handle = self.handles[job_id]
                if self.pool is not None:
                    # jobs routed here because the pool died are degraded
                    self._note_reason(handle, POOL_SHRUNK)
                self._run_serial(handle)
            if self._backlog and block:
                time.sleep(min(
                    block,
                    max(0.0, min(i[0] for i in self._backlog) - now),
                ))

    def _dispatch_queued(self) -> None:
        for worker_id in self.pool.idle_workers():
            if not self._queue:
                return
            job_id = self._queue[0]
            handle = self.handles[job_id]
            message = {
                "id": job_id,
                "attempt": handle.attempts,
                "spec": handle.spec,
                "hints": self._hints.get(job_id, {}),
            }
            if self.pool.dispatch(worker_id, message):
                self._queue.pop(0)
                handle.attempts += 1
                self._running[job_id] = worker_id
                self.counters["dispatched"] += 1
                handle.record(
                    RUNNING, worker=worker_id, attempt=handle.attempts
                )

    def _handle_pool_event(self, event) -> None:
        if event.respawned:
            self.counters["respawns"] += 1
        if event.shrunk:
            self.counters["pool_shrinks"] += 1
        if event.job is None:
            return  # an idle worker died; healing already handled
        handle = self.handles.get(event.job)
        if handle is None or handle.done:  # pragma: no cover -- stale
            return
        self._running.pop(event.job, None)
        if event.kind == poolmod.OK:
            result = event.payload
            self.counters["jobs_executed"] += 1
            self.counters["launches_simulated"] += result["launches"]
            source = RETRIED if handle.attempts > 1 else FRESH
            self._finish(handle, result["payload"], source,
                         worker=event.worker, launches=result["launches"])
            return
        # a fault: crash, timeout, or worker error
        reason = _FAULT_REASONS[event.kind]
        counter = {
            JOB_WORKER_CRASH: "worker_crashes",
            JOB_TIMEOUT: "job_timeouts",
            JOB_WORKER_ERROR: "worker_errors",
        }[reason]
        self.counters[counter] += 1
        self._note_reason(handle, reason)
        detail = event.payload if event.kind == poolmod.ERR else reason
        handle.record("fault", kind=reason, detail=str(detail))
        if self.failure_policy == "strict":
            handle.error = f"{reason}: {detail}"
            handle.record(FAILED, reason=reason)
            self._clear_inflight(handle)
            return
        if handle.attempts < self.max_attempts and (
            self.pool is not None and self.pool.live
        ):
            delay = self.backoff * (2 ** (handle.attempts - 1))
            self.counters["retries"] += 1
            self._backlog.append([time.monotonic() + delay, handle.id])
            handle.record(RETRYING, delay=delay, attempt=handle.attempts)
            return
        self._note_reason(handle, JOB_SERIAL_FALLBACK)
        self._run_serial(handle)

    def _run_serial(self, handle: JobHandle) -> None:
        """Execute a job in-process (fallback rung, or workers=0 mode)."""
        handle.record(SERIAL)
        handle.attempts += 1
        degraded = JOB_SERIAL_FALLBACK in handle.reasons or (
            POOL_SHRUNK in handle.reasons
        )
        if degraded:
            self.counters["serial_fallbacks"] += 1
            self._degrade_warn(
                JOB_SERIAL_FALLBACK, handle.spec.app,
                f"{handle.id} ({handle.spec.app}) exhausted its pool "
                "attempts and re-ran serially in the service process",
            )
        try:
            result = run_job(handle.spec, hints=self._hints.get(handle.id))
        except Exception as exc:  # noqa: BLE001 -- job, not service, fails
            handle.error = f"{type(exc).__name__}: {exc}"
            handle.record(FAILED, error=handle.error)
            self._clear_inflight(handle)
            return
        self.counters["jobs_executed"] += 1
        self.counters["launches_simulated"] += result["launches"]
        self._finish(
            handle, result["payload"],
            DEGRADED_SERIAL if degraded else FRESH,
            launches=result["launches"],
        )

    def _finish(self, handle: JobHandle, payload: str, source: str,
                worker: Optional[int] = None, launches: int = 0) -> None:
        if self.cache is not None:
            self.cache.put(
                handle.key, payload,
                meta={"app": handle.spec.app, "job": handle.id},
            )
        handle.result_value = JobResult(
            payload=payload, source=source, key=handle.key,
            attempts=handle.attempts, reasons=list(handle.reasons),
            worker=worker, launches=launches,
        )
        handle.record(DONE, source=source)
        self.counters["completed"] += 1
        self._clear_inflight(handle)
        for follower_id in self._coalesced.pop(handle.id, []):
            follower = self.handles[follower_id]
            follower.result_value = JobResult(
                payload=payload, source=COALESCED, key=follower.key,
            )
            follower.record(DONE, source=COALESCED)
            self.counters["completed"] += 1

    def _clear_inflight(self, handle: JobHandle) -> None:
        if self._inflight_by_key.get(handle.key) == handle.id:
            del self._inflight_by_key[handle.key]
        self._hints.pop(handle.id, None)
        # a failed primary fails its coalesced followers too
        if handle.state == FAILED:
            for follower_id in self._coalesced.pop(handle.id, []):
                follower = self.handles[follower_id]
                follower.error = handle.error
                follower.record(FAILED, via=handle.id)

    def _note_reason(self, handle: JobHandle, reason: str) -> None:
        if reason not in handle.reasons:
            handle.reasons.append(reason)

    def _degrade_warn(self, reason: str, app: str, message: str) -> None:
        if self.failure_policy != "degrade":
            return
        key = (reason, app)
        if key in self._warned:
            return
        self._warned.add(key)
        warnings.warn(
            LaunchDegradedWarning(
                message, reason=reason, context={"app": app}
            ),
            stacklevel=2,
        )
