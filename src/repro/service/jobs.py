"""Job descriptions, handles and reason codes for the profiling service.

A **job** is one whole profiling request: "profile app X with config Y
and hand back the canonical export document".  :class:`JobSpec` pins
everything that *determines the result bytes* -- those fields (plus the
module IR hash and the export schema version) form the cache key.
Execution hints (backend, shard workers, spill knobs...) change how a
job runs, never what it returns, so they ride along outside the key.

:class:`JobHandle` is the client's view of a submitted job: ``poll()``
for the current state, ``wait()``/``result()`` to block, ``events`` for
the per-job status stream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

# -- job states --------------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
RETRYING = "retrying"
SERIAL = "serial-fallback"
DONE = "done"
FAILED = "failed"

#: states from which a job never moves again
TERMINAL_STATES = (DONE, FAILED)

# -- result sources ----------------------------------------------------------
FRESH = "fresh"
RETRIED = "retried"
DEGRADED_SERIAL = "degraded-serial"
CACHE_HIT = "cache-hit"

# -- machine-readable reason codes (stable API, service scope) ---------------
#: a pool worker died (crash/OOM/kill) while holding the job.
JOB_WORKER_CRASH = "job-worker-crash"
#: a pool worker missed its heartbeat deadline and was reaped.
JOB_TIMEOUT = "job-timeout"
#: a pool worker raised an exception while running the job.
JOB_WORKER_ERROR = "job-worker-error"
#: retries exhausted (or no pool); the job ran serially in the parent.
JOB_SERIAL_FALLBACK = "job-serial-fallback"
#: a worker exceeded its respawn budget; the pool shrank by one slot.
POOL_SHRUNK = "pool-shrunk"
#: the platform cannot fork; the pool never started.
SERVICE_FORK_UNAVAILABLE = "service-fork-unavailable"
#: a cache entry failed its checksum and was quarantined.
CACHE_ENTRY_CORRUPT = "cache-entry-corrupt"

SERVICE_REASON_CODES = (
    JOB_WORKER_CRASH,
    JOB_TIMEOUT,
    JOB_WORKER_ERROR,
    JOB_SERIAL_FALLBACK,
    POOL_SHRUNK,
    SERVICE_FORK_UNAVAILABLE,
    CACHE_ENTRY_CORRUPT,
)


class ServiceError(ReproError):
    """A profiling-service failure (bad submit, failed job under strict)."""


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines a job's result bytes.

    ``app_kwargs`` is a canonicalized ``(key, value)`` tuple so specs
    stay hashable and pickle cleanly across the worker pipe.  All
    fields here feed :meth:`cache_key`; anything that must *not*
    affect the result (execution hints) lives outside this class.
    """

    app: str
    app_kwargs: Tuple[Tuple[str, object], ...] = ()
    arch: str = "kepler"
    modes: Tuple[str, ...] = ("memory", "blocks")
    sample_rate: int = 1
    buffer_capacity: Optional[int] = None
    measure_overhead: bool = False
    heatmap: bool = False
    heatmap_cell_rows: Optional[int] = None
    time_buckets: int = 64
    columnar: bool = False

    def cache_key(self, ir_hash: str, schema_version: str) -> str:
        """Content address: (module IR hash, app config, instrumentation
        knobs, export schema version) -> hex digest."""
        material = json.dumps(
            {
                "schema_version": schema_version,
                "ir_hash": ir_hash,
                "app": self.app,
                "app_kwargs": [[k, v] for k, v in self.app_kwargs],
                "arch": self.arch,
                "modes": list(self.modes),
                "sample_rate": self.sample_rate,
                "buffer_capacity": self.buffer_capacity,
                "measure_overhead": self.measure_overhead,
                "heatmap": self.heatmap,
                "heatmap_cell_rows": self.heatmap_cell_rows,
                "time_buckets": self.time_buckets,
                "columnar": self.columnar,
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class JobEvent:
    """One entry of a job's status stream (monotonic ``seq`` per job)."""

    seq: int
    state: str
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class JobResult:
    """A finished job: the canonical export payload plus provenance."""

    payload: str  #: canonical export_json text (byte-identity contract)
    source: str  #: FRESH / RETRIED / DEGRADED_SERIAL / CACHE_HIT
    key: str  #: content-address the payload is (or would be) cached under
    attempts: int = 0
    reasons: List[str] = field(default_factory=list)
    worker: Optional[int] = None
    launches: int = 0  #: kernel launches the producing run simulated


class JobHandle:
    """The client's handle on one submitted job."""

    def __init__(self, job_id: str, spec: JobSpec, key: str, service):
        self.id = job_id
        self.spec = spec
        self.key = key
        self.state = QUEUED
        self.attempts = 0
        self.reasons: List[str] = []
        self.events: List[JobEvent] = []
        self.result_value: Optional[JobResult] = None
        self.error: Optional[str] = None
        self._service = service

    # -- client API ----------------------------------------------------------
    def poll(self) -> str:
        """Advance the service without blocking; return current state."""
        return self._service.poll(self)

    def wait(self, timeout: Optional[float] = None) -> str:
        """Drive the service until this job is terminal (or timeout)."""
        return self._service.wait(self, timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until done and return the result (raises on failure)."""
        return self._service.result(self, timeout=timeout)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- service-side bookkeeping -------------------------------------------
    def record(self, state: str, **detail) -> JobEvent:
        """Append one status event and move to ``state``."""
        event = JobEvent(len(self.events), state, detail)
        self.events.append(event)
        self.state = state
        return event

    def __repr__(self) -> str:  # pragma: no cover
        return f"JobHandle({self.id!r}, {self.spec.app!r}, {self.state})"
