"""Content-addressed, crash-safe on-disk result cache.

One entry per cache key (see :meth:`~repro.service.jobs.JobSpec.cache_key`):
a fixed magic line, a JSON header carrying the payload length and its
SHA-256, then the payload (the canonical export document text).  Entries
are published via temp-file + ``os.replace``, so a crash mid-write never
leaves a torn entry under a valid name.  A read that fails any check --
bad magic, unparseable header, short payload, checksum mismatch -- is
**quarantined**: the file moves to ``<dir>/quarantine/`` (named after
its key, atomically), an accounting record is appended, and the caller
sees a miss, so the service transparently re-simulates and re-publishes
a good entry.

``max_bytes`` puts the directory on a size budget with LRU eviction:
every entry's recency is its file mtime (bumped on each hit, so the
order survives process restarts), and a put that pushes the total over
budget unlinks least-recently-used entries first -- surfaced through
the ``evictions`` / ``evicted_bytes`` stats.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.ioutil import atomic_write_bytes

_MAGIC = b"RPROCACHE1\n"


class ResultCache:
    """A directory of checksummed, atomically-published result entries.

    ``injector`` threads the service's fault injector through to the
    ``cache_corrupt_entry`` injection point (fired after a put, so the
    *next* get exercises the quarantine path).
    """

    def __init__(self, directory: str, injector=None,
                 max_bytes: Optional[int] = None):
        self.directory = directory
        self.injector = injector
        self.max_bytes = max_bytes
        os.makedirs(directory, exist_ok=True)
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "writes": 0, "quarantined": 0,
            "evictions": 0, "evicted_bytes": 0,
        }
        #: accounting of quarantined entries: one dict per event.
        self.quarantine_log: List[Dict[str, str]] = []
        #: key -> (size, mtime) of entries under budget accounting;
        #: seeded from the directory so restarts keep the LRU order.
        self._sizes: Dict[str, int] = {}
        if max_bytes is not None:
            for name in os.listdir(directory):
                if not name.endswith(".entry"):
                    continue
                try:
                    self._sizes[name[:-len(".entry")]] = os.path.getsize(
                        os.path.join(directory, name)
                    )
                except OSError:  # pragma: no cover -- racing unlink
                    pass

    # -- paths ---------------------------------------------------------------
    def entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.entry")

    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    # -- write ---------------------------------------------------------------
    def put(self, key: str, payload: str, meta: Optional[dict] = None) -> str:
        """Publish ``payload`` under ``key``; returns the entry path."""
        data = payload.encode("utf-8")
        header = json.dumps(
            {
                "key": key,
                "payload_bytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
                "meta": meta or {},
            },
            sort_keys=True,
        ).encode("utf-8")
        path = self.entry_path(key)
        atomic_write_bytes(path, _MAGIC + header + b"\n" + data)
        self.stats["writes"] += 1
        if self.injector is not None:
            params = self.injector.fire(
                "cache_corrupt_entry", key=key,
                app=(meta or {}).get("app"),
            )
            if params is not None:
                _corrupt_entry(path, int(params.get("offset", 8)))
        if self.max_bytes is not None:
            try:
                self._sizes[key] = os.path.getsize(path)
            except OSError:  # pragma: no cover -- racing unlink
                self._sizes[key] = len(data)
            self._evict(keep=key)
        return path

    def _evict(self, keep: str) -> None:
        """Unlink LRU entries until the budget holds (never ``keep``)."""
        total = sum(self._sizes.values())
        if total <= self.max_bytes:
            return
        by_age = sorted(
            (k for k in self._sizes if k != keep),
            key=lambda k: os.path.getmtime(self.entry_path(k))
            if os.path.exists(self.entry_path(k)) else 0.0,
        )
        for key in by_age:
            if total <= self.max_bytes:
                break
            size = self._sizes.pop(key)
            try:
                os.unlink(self.entry_path(key))
            except OSError:  # pragma: no cover -- racing unlink
                pass
            total -= size
            self.stats["evictions"] += 1
            self.stats["evicted_bytes"] += size

    # -- read ----------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        """Return the payload for ``key``, or ``None`` on miss.

        A corrupt or truncated entry is quarantined and reported as a
        miss -- the caller re-simulates; it never sees bad bytes.
        """
        path = self.entry_path(key)
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        payload = self._verify(key, blob)
        if payload is None:
            self._quarantine(key, path)
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        if self.max_bytes is not None:
            try:
                os.utime(path)  # bump recency: a hit is a "use"
            except OSError:  # pragma: no cover -- racing unlink
                pass
        return payload

    def _verify(self, key: str, blob: bytes) -> Optional[str]:
        if not blob.startswith(_MAGIC):
            return None
        rest = blob[len(_MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(rest[:newline])
        except ValueError:
            return None
        data = rest[newline + 1:]
        if (
            not isinstance(header, dict)
            or header.get("key") != key
            or header.get("payload_bytes") != len(data)
            or header.get("sha256") != hashlib.sha256(data).hexdigest()
        ):
            return None
        return data.decode("utf-8")

    def _quarantine(self, key: str, path: str) -> None:
        qdir = self.quarantine_dir()
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, f"{key}.entry")
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover -- racing unlink
            dest = ""
        self.stats["quarantined"] += 1
        self.quarantine_log.append({"key": key, "path": dest})
        self._sizes.pop(key, None)


def _corrupt_entry(path: str, offset: int) -> None:
    """Flip one payload byte in place (the cache_corrupt_entry fault)."""
    with open(path, "r+b") as f:
        f.seek(0, os.SEEK_END)
        size = f.tell()
        pos = max(0, size - 1 - max(0, offset))
        f.seek(pos)
        byte = f.read(1)
        f.seek(pos)
        f.write(bytes([byte[0] ^ 0xFF]))
