"""The persistent worker pool behind the profiling service.

Unlike the per-launch shard fleet (:mod:`repro.reliability.shards`,
one short-lived process per SM shard), pool workers are **long-lived**:
each runs :func:`repro.service.worker.worker_main`, accepting one whole
profiling job at a time over a duplex pipe.  The pool generalizes the
shard supervisor's primitives from shard scope to job scope:

* **heartbeats** -- a busy worker beats every ``heartbeat_interval``
  seconds from a background thread; the hang deadline (``job_timeout``)
  is measured from the last beat, so a long but progressing job is
  never reaped while a stuck one is.
* **crash detection** -- EOF on a worker's pipe means the process died
  without delivering its result.
* **self-healing** -- a reaped worker is respawned up to
  ``max_respawns`` times pool-wide; past the budget the pool *shrinks*
  instead (the service then falls back to serial execution when no
  workers remain -- the job-scope rung of the ``failure_policy``
  ladder).

The pool is driven synchronously: the service calls :meth:`step` from
``poll``/``wait`` and reacts to the returned :class:`PoolEvent` list.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional

from repro.service.worker import HEARTBEAT_INTERVAL, worker_main

#: pool event kinds
OK = "ok"
ERR = "err"
CRASH = "crash"
TIMEOUT = "timeout"


@dataclass
class PoolEvent:
    """One thing the pool learned during :meth:`WorkerPool.step`."""

    kind: str  #: OK / ERR / CRASH / TIMEOUT
    worker: int
    job: Optional[str]  #: job the worker held (None for an idle death)
    payload: object = None  #: result dict (OK) or detail string (ERR)
    respawned: bool = False  #: a replacement worker was spawned
    shrunk: bool = False  #: respawn budget exhausted; pool lost a slot


@dataclass
class _PoolWorker:
    id: int
    proc: object
    conn: object
    job: Optional[str] = None
    last_beat: float = field(default_factory=time.monotonic)


def fork_available() -> bool:
    try:
        get_context("fork")
    except ValueError:  # pragma: no cover -- non-POSIX platforms
        return False
    return hasattr(os, "fork")


class WorkerPool:
    """A self-healing fleet of persistent job workers."""

    def __init__(
        self,
        size: int,
        injector=None,
        job_timeout: Optional[float] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        max_respawns: Optional[int] = None,
    ):
        self.injector = injector
        self.job_timeout = job_timeout
        self.heartbeat_interval = heartbeat_interval
        #: total replacement spawns allowed before the pool shrinks.
        self.max_respawns = 2 * size if max_respawns is None else max_respawns
        self.respawns = 0
        self.workers: Dict[int, _PoolWorker] = {}
        #: events produced outside step() (e.g. a dispatch-time death),
        #: surfaced on the next step() so the service still sees them.
        self._pending: List[PoolEvent] = []
        self._next_id = 0
        self._ctx = get_context("fork") if fork_available() else None
        if self._ctx is not None:
            for _ in range(size):
                self._spawn()

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self) -> Optional[int]:
        if self._ctx is None:
            return None
        worker_id = self._next_id
        self._next_id += 1
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, self.injector,
                  self.heartbeat_interval),
        )
        proc.daemon = True
        proc.start()
        child_conn.close()  # parent's copy; EOF detection needs it closed
        self.workers[worker_id] = _PoolWorker(worker_id, proc, parent_conn)
        return worker_id

    def _reap(self, worker: _PoolWorker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        del self.workers[worker.id]
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join()

    def _heal(self, event: PoolEvent) -> PoolEvent:
        """Respawn a replacement, or shrink once the budget is spent."""
        if self.respawns < self.max_respawns:
            self.respawns += 1
            event.respawned = self._spawn() is not None
        event.shrunk = not event.respawned
        return event

    # -- scheduling ----------------------------------------------------------
    @property
    def live(self) -> int:
        return len(self.workers)

    def idle_workers(self) -> List[int]:
        return [w.id for w in self.workers.values() if w.job is None]

    def dispatch(self, worker_id: int, message: dict) -> bool:
        """Hand one job message to an idle worker; False if it just died."""
        worker = self.workers[worker_id]
        assert worker.job is None, "dispatch to a busy worker"
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            self._reap(worker)
            self._pending.append(self._heal(PoolEvent(CRASH, worker.id, None)))
            return False
        worker.job = message["id"]
        worker.last_beat = time.monotonic()
        return True

    def kill_worker(self, worker_id: int) -> Optional[str]:
        """Forcibly kill one worker (the service_pool_loss fault);
        returns the job it held, whose fate :meth:`step` will report."""
        worker = self.workers.get(worker_id)
        if worker is None:
            return None
        worker.proc.kill()
        return worker.job

    def step(self, timeout: float = 0.02) -> List[PoolEvent]:
        """Pump worker pipes once; reap crashes and hangs; self-heal."""
        events: List[PoolEvent] = list(self._pending)
        self._pending.clear()
        conns = {w.conn: w for w in self.workers.values()}
        if conns:
            for conn in _connection_wait(list(conns), timeout=timeout):
                worker = conns[conn]
                if worker.id not in self.workers:  # reaped this step
                    continue
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    event = PoolEvent(CRASH, worker.id, worker.job)
                    self._reap(worker)
                    events.append(self._heal(event))
                    continue
                if kind == "hb":
                    worker.last_beat = time.monotonic()
                elif kind == "ok":
                    job_id, result = payload
                    worker.job = None
                    events.append(PoolEvent(OK, worker.id, job_id, result))
                else:  # "err"
                    job_id, detail = payload
                    worker.job = None
                    events.append(PoolEvent(ERR, worker.id, job_id, detail))
        if self.job_timeout is not None:
            now = time.monotonic()
            for worker in list(self.workers.values()):
                if worker.job is None:
                    continue
                if now - worker.last_beat > self.job_timeout:
                    event = PoolEvent(TIMEOUT, worker.id, worker.job)
                    self._reap(worker)
                    events.append(self._heal(event))
        return events

    def shutdown(self) -> None:
        """Orderly stop: ask idle workers to exit, kill the rest."""
        for worker in list(self.workers.values()):
            if worker.job is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 2.0
        for worker in list(self.workers.values()):
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            self._reap(worker)
