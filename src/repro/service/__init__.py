"""Profiling-as-a-service: job scheduler + crash-safe result cache.

The production tier on top of the reliability layer (docs/service.md):

* :mod:`repro.service.service` -- :class:`ProfilingService`, the
  long-lived scheduler with the async submit/poll/result/wait API.
* :mod:`repro.service.pool` -- the persistent, self-healing worker
  pool (job-scope heartbeats, timeouts, respawn-or-shrink).
* :mod:`repro.service.cache` -- the content-addressed crash-safe
  on-disk result cache (atomic publication, checksum + quarantine).
* :mod:`repro.service.jobs` -- job specs, handles, status streaming
  and the service-scope machine-readable reason codes.
* :mod:`repro.service.worker` -- the worker loop and the single
  ``run_job`` definition shared by pool workers and serial fallback.
"""

from repro.service.cache import ResultCache
from repro.service.jobs import (
    CACHE_HIT,
    DEGRADED_SERIAL,
    FRESH,
    RETRIED,
    SERVICE_REASON_CODES,
    JobHandle,
    JobResult,
    JobSpec,
    ServiceError,
)
from repro.service.pool import WorkerPool
from repro.service.service import COALESCED, ProfilingService
from repro.service.worker import run_job

__all__ = [
    "CACHE_HIT",
    "COALESCED",
    "DEGRADED_SERIAL",
    "FRESH",
    "RETRIED",
    "SERVICE_REASON_CODES",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "ProfilingService",
    "ResultCache",
    "ServiceError",
    "WorkerPool",
    "run_job",
]
