"""Built-in names available inside kernel bodies.

Two kinds:

* **special registers** -- ``tid_x``, ``ctaid_y``, ``ntid_x``,
  ``nctaid_z``, ``warpsize``: read-only values the compiler lowers to
  calls to ``nvvm.*`` intrinsic declarations (the analogue of
  ``llvm.nvvm.read.ptx.sreg.*``).
* **functions** -- math (``sqrtf``...), ``syncthreads``, atomics, and the
  ``shared``/``local`` array declarators handled specially by the
  compiler.

The interpreter recognises intrinsic functions by name (see
:mod:`repro.gpu.interpreter`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.types import Type, F32, F64, I32, VOID

#: special-register name -> intrinsic function name
SPECIAL_REGISTERS: Dict[str, str] = {
    "tid_x": "nvvm.tid.x",
    "tid_y": "nvvm.tid.y",
    "tid_z": "nvvm.tid.z",
    "ctaid_x": "nvvm.ctaid.x",
    "ctaid_y": "nvvm.ctaid.y",
    "ctaid_z": "nvvm.ctaid.z",
    "ntid_x": "nvvm.ntid.x",
    "ntid_y": "nvvm.ntid.y",
    "ntid_z": "nvvm.ntid.z",
    "nctaid_x": "nvvm.nctaid.x",
    "nctaid_y": "nvvm.nctaid.y",
    "nctaid_z": "nvvm.nctaid.z",
    "warpsize": "nvvm.warpsize",
    "laneid": "nvvm.laneid",
    "warpid": "nvvm.warpid",
}

#: math intrinsic name -> (intrinsic symbol, arg types, return type)
MATH_INTRINSICS: Dict[str, Tuple[str, Tuple[Type, ...], Type]] = {
    "sqrtf": ("nv.sqrt.f32", (F32,), F32),
    "expf": ("nv.exp.f32", (F32,), F32),
    "logf": ("nv.log.f32", (F32,), F32),
    "fabsf": ("nv.fabs.f32", (F32,), F32),
    "floorf": ("nv.floor.f32", (F32,), F32),
    "powf": ("nv.pow.f32", (F32, F32), F32),
    "fminf": ("nv.fmin.f32", (F32, F32), F32),
    "fmaxf": ("nv.fmax.f32", (F32, F32), F32),
    "sqrt": ("nv.sqrt.f64", (F64,), F64),
    "exp": ("nv.exp.f64", (F64,), F64),
    "fabs": ("nv.fabs.f64", (F64,), F64),
}

#: names handled with dedicated compiler logic
SPECIAL_FUNCTIONS = frozenset(
    {
        "syncthreads",
        "shared",
        "local",
        "atomic_add",
        "atomic_max",
        "atomic_min",
        "min",
        "max",
        "int",
        "float",
        "range",  # only as a `for` iterator
    }
)

BARRIER_INTRINSIC = "nvvm.barrier0"

BUILTIN_DOC = """Kernel-body builtins:
  tid_x/y/z, ctaid_x/y/z, ntid_x/y/z, nctaid_x/y/z  -- thread/CTA indices
  warpsize, laneid, warpid                          -- warp geometry
  syncthreads()                                     -- CTA barrier
  shared(f32, N), local(f32, N)                     -- array declarators
  atomic_add/max/min(arr, idx, value)               -- global atomics
  sqrtf, expf, logf, fabsf, floorf, powf, fminf, fmaxf
  min(a, b), max(a, b)                              -- integer min/max
  int(x), float(x)                                  -- conversions
"""
