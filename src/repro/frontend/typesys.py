"""Type annotations usable in kernel signatures.

These are plain :mod:`repro.ir.types` instances with DSL-friendly names,
so a kernel signature reads like a CUDA prototype:

    def hotspot(power: ptr_f32, temp_src: ptr_f32, n: i32, step: f32): ...
"""

from __future__ import annotations

from repro.ir.types import AddressSpace, PointerType, F32, F64, I8, I32, I64, ptr

# Scalar parameter types
i8 = I8
i32 = I32
i64 = I64
f32 = F32
f64 = F64

# Global-memory pointer parameter types (device pointers)
ptr_i8 = ptr(I8, AddressSpace.GLOBAL)
ptr_i32 = ptr(I32, AddressSpace.GLOBAL)
ptr_i64 = ptr(I64, AddressSpace.GLOBAL)
ptr_f32 = ptr(F32, AddressSpace.GLOBAL)
ptr_f64 = ptr(F64, AddressSpace.GLOBAL)

#: Annotation name -> IR type, used by the compiler to resolve signatures.
ANNOTATION_TYPES = {
    "i8": i8,
    "i32": i32,
    "i64": i64,
    "f32": f32,
    "f64": f64,
    "ptr_i8": ptr_i8,
    "ptr_i32": ptr_i32,
    "ptr_i64": ptr_i64,
    "ptr_f32": ptr_f32,
    "ptr_f64": ptr_f64,
}
