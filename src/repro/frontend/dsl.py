"""The ``@kernel`` / ``@device`` decorators and module assembly.

A :class:`KernelSource` wraps the original Python function plus its
parsed AST and source coordinates. :func:`compile_kernels` assembles one
device module from a set of kernels (plus every ``@device`` function
they reference), runs the verifier, and returns the module -- the
"Clang -> device bitcode" step of Figure 2.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import FrontendError
from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module
from repro.frontend.compiler import KernelCompiler

#: global registry of @device functions, keyed by name (like a linker
#: symbol table: kernels reference device functions by name).
_DEVICE_REGISTRY: Dict[str, "KernelSource"] = {}


class KernelSource:
    """A DSL function captured for compilation."""

    def __init__(self, py_func, kind: str):
        self.py_func = py_func
        self.kind = kind
        self.name = py_func.__name__

        try:
            source = inspect.getsource(py_func)
            _, start_line = inspect.getsourcelines(py_func)
            filename = inspect.getsourcefile(py_func) or "<string>"
        except (OSError, TypeError) as exc:  # pragma: no cover - exotic envs
            raise FrontendError(
                f"cannot retrieve source of {self.name}: {exc}"
            ) from exc
        source = textwrap.dedent(source)
        tree = ast.parse(source)
        fdef = tree.body[0]
        if not isinstance(fdef, ast.FunctionDef):
            raise FrontendError(f"{self.name} is not a plain function")
        # Strip our own decorators from the AST (they are host-side only).
        fdef.decorator_list = []
        self.tree = fdef
        self.filename = filename.rsplit("/", 1)[-1]
        self.line_offset = start_line
        self.globals_ns = py_func.__globals__

    def __call__(self, *args, **kwargs):
        raise FrontendError(
            f"{self.kind} function {self.name!r} cannot be called from Python; "
            f"compile it with compile_kernels() and launch it on a Device"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind} {self.name} from {self.filename}:{self.line_offset}>"


def kernel(py_func) -> KernelSource:
    """Mark a function as a ``__global__`` CUDA kernel."""
    return KernelSource(py_func, "kernel")


def device(py_func) -> KernelSource:
    """Mark a function as a ``__device__`` helper callable from kernels."""
    src = KernelSource(py_func, "device")
    _DEVICE_REGISTRY[src.name] = src
    return src


def compile_kernels(
    kernels: Sequence[KernelSource],
    module_name: str = "device",
    verify: bool = True,
) -> Module:
    """Compile kernels (and referenced ``@device`` functions) to a module."""
    module = Module(module_name, target="nvptx")
    compiled: Dict[str, Function] = {}

    def compile_source(src: KernelSource) -> Function:
        if src.name in compiled:
            return compiled[src.name]
        compiler = KernelCompiler(
            module=module,
            source_ast=src.tree,
            filename=src.filename,
            line_offset=src.line_offset,
            kind=src.kind,
            globals_ns=src.globals_ns,
            device_registry=_DEVICE_REGISTRY,
            compile_device=compile_source,
        )
        fn = compiler.compile()
        compiled[src.name] = fn
        return fn

    for src in kernels:
        if not isinstance(src, KernelSource):
            raise FrontendError(
                f"compile_kernels expects @kernel functions, got {src!r}"
            )
        if src.kind != "kernel":
            raise FrontendError(f"{src.name} is @device; pass @kernel functions")
        compile_source(src)

    if verify:
        verify_module(module)
    return module
