"""AST-to-IR compiler for the kernel DSL.

A restricted Python subset compiles to the mini-IR the way Clang lowers
CUDA C to bitcode at ``-O0``: every local scalar becomes an ``alloca``
in the entry block, reads/writes become local loads/stores (later
promoted to SSA by the ``mem2reg`` pass), and control flow becomes
explicit basic blocks. Source line/column numbers from the real Python
source become :class:`~repro.ir.debuginfo.DebugLoc` on every
instruction, which is what the instrumentation hooks report.

Supported statements: assignment (plain/augmented/subscript), ``if`` /
``elif`` / ``else``, ``while``, ``for i in range(...)``, ``break``,
``continue``, ``return``, expression statements (calls), ``pass``.

Supported expressions: int/float/bool literals, parameters, locals,
special registers, arithmetic (+ - * // / % and or not << >> & | ^),
comparisons, unary +/-, subscripts of pointer values, calls to builtins
and ``@device`` functions, captured module-level int/float constants.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FrontendError
from repro.ir.builder import IRBuilder
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    AtomicOp,
    CastKind,
    CmpPred,
    Opcode,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    Type,
    BOOL,
    F32,
    F64,
    I8,
    I32,
    I64,
    VOID,
)
from repro.ir.values import Constant, GlobalVariable, Value
from repro.frontend.intrinsics import (
    BARRIER_INTRINSIC,
    MATH_INTRINSICS,
    SPECIAL_FUNCTIONS,
    SPECIAL_REGISTERS,
)
from repro.frontend.typesys import ANNOTATION_TYPES

_INT_BINOPS = {
    ast.Add: Opcode.ADD,
    ast.Sub: Opcode.SUB,
    ast.Mult: Opcode.MUL,
    ast.FloorDiv: Opcode.SDIV,
    ast.Mod: Opcode.SREM,
    ast.LShift: Opcode.SHL,
    ast.RShift: Opcode.ASHR,
    ast.BitAnd: Opcode.AND,
    ast.BitOr: Opcode.OR,
    ast.BitXor: Opcode.XOR,
}
_FLOAT_BINOPS = {
    ast.Add: Opcode.FADD,
    ast.Sub: Opcode.FSUB,
    ast.Mult: Opcode.FMUL,
    ast.Div: Opcode.FDIV,
    ast.Mod: Opcode.FREM,
}
_CMP_PREDS = {
    ast.Eq: CmpPred.EQ,
    ast.NotEq: CmpPred.NE,
    ast.Lt: CmpPred.LT,
    ast.LtE: CmpPred.LE,
    ast.Gt: CmpPred.GT,
    ast.GtE: CmpPred.GE,
}


class _LoopContext:
    """Targets for break/continue inside one loop."""

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock):
        self.break_block = break_block
        self.continue_block = continue_block


class KernelCompiler:
    """Compiles one DSL function into an IR :class:`Function`."""

    def __init__(
        self,
        module: Module,
        source_ast: ast.FunctionDef,
        filename: str,
        line_offset: int,
        kind: str,
        globals_ns: Dict[str, object],
        device_registry: Dict[str, "object"],
        compile_device: Callable[[object], Function],
    ):
        self.module = module
        self.tree = source_ast
        self.filename = filename
        self.line_offset = line_offset
        self.kind = kind
        self.globals_ns = globals_ns
        self.device_registry = device_registry
        self.compile_device = compile_device

        self.fn: Optional[Function] = None
        self.builder = IRBuilder()
        #: local name -> (alloca value, element type)
        self.locals: Dict[str, Tuple[Value, Type]] = {}
        #: local name -> pointer-typed Value (arrays: shared/local decls, params)
        self.pointers: Dict[str, Value] = {}
        self.loop_stack: List[_LoopContext] = []
        self._sreg_cache: Dict[str, Value] = {}

    # -- helpers ------------------------------------------------------------
    def error(self, message: str, node: Optional[ast.AST] = None) -> FrontendError:
        line = self.line_offset + getattr(node, "lineno", 1) - 1 if node else 0
        return FrontendError(message, self.filename, line)

    def loc(self, node: ast.AST) -> DebugLoc:
        return DebugLoc(
            self.filename,
            self.line_offset + node.lineno - 1,
            node.col_offset + 1,
        )

    def _declare_intrinsic(
        self, name: str, params: Tuple[Type, ...], ret: Type
    ) -> Function:
        return self.module.declare_function(
            name, ret, [(t, f"a{i}") for i, t in enumerate(params)], kind="intrinsic"
        )

    # -- entry point -----------------------------------------------------------
    def compile(self) -> Function:
        name = self.tree.name
        params: List[Tuple[Type, str]] = []
        args = self.tree.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
            raise self.error("kernels take only plain positional parameters")
        for a in args.args:
            if a.annotation is None:
                raise self.error(f"parameter {a.arg!r} needs a type annotation", a)
            params.append((self._annotation_type(a.annotation), a.arg))

        ret_type = VOID
        if self.tree.returns is not None and self.kind == "device":
            ret_type = self._annotation_type(self.tree.returns)

        self.fn = self.module.add_function(name, ret_type, params, kind=self.kind)
        entry = self.fn.add_block("entry")
        self.builder.position_at_end(entry)

        # Parameters: scalars get a stack slot (so they are assignable, like
        # C parameters); pointers stay as direct values.
        for arg in self.fn.args:
            if arg.type.is_pointer:
                self.pointers[arg.name] = arg
            else:
                slot = self.builder.alloca(arg.type, 1, f"{arg.name}.addr")
                self.builder.store(arg, slot)
                self.locals[arg.name] = (slot, arg.type)

        self._compile_body(self.tree.body)

        # Implicit return at the end of a void function.
        if self.builder.block.terminator is None:
            if not ret_type.is_void:
                raise self.error(
                    f"device function {name!r} may reach its end without returning"
                )
            self.builder.ret()
        # Terminate any other unterminated blocks (e.g. after `while True`).
        for block in self.fn.blocks:
            if block.terminator is None:
                term_builder = IRBuilder.at_end(block)
                if ret_type.is_void:
                    term_builder.ret()
                else:
                    raise self.error(
                        f"device function {name!r} has a path without a return"
                    )
        return self.fn

    def _annotation_type(self, node: ast.expr) -> Type:
        if isinstance(node, ast.Name) and node.id in ANNOTATION_TYPES:
            return ANNOTATION_TYPES[node.id]
        raise self.error(
            "unknown type annotation (use i32/f32/ptr_f32/...)", node
        )

    # -- statements ----------------------------------------------------------------
    def _compile_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            if self.builder.block.terminator is not None:
                # Unreachable code after return/break: drop it, like Clang.
                break
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: ast.stmt) -> None:
        self.builder.set_loc(self.loc(stmt))
        if isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._compile_aug_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._compile_ann_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise self.error("break outside a loop", stmt)
            self.builder.br(self.loop_stack[-1].break_block)
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise self.error("continue outside a loop", stmt)
            self.builder.br(self.loop_stack[-1].continue_block)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self._compile_expr_stmt(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            raise self.error(
                f"unsupported statement {type(stmt).__name__}", stmt
            )

    def _compile_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self.error("chained assignment is not supported", stmt)
        target = stmt.targets[0]

        # Array declarators: x = shared(f32, N) / x = local(f32, N)
        decl = self._try_array_decl(target, stmt.value)
        if decl:
            return

        value = self._compile_expr(stmt.value)
        self._store_to_target(target, value, stmt)

    def _compile_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            raise self.error("annotated declaration requires an initializer", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self.error("annotated assignment must target a name", stmt)
        want = self._annotation_type(stmt.annotation)
        value = self._coerce(self._compile_expr(stmt.value), want, stmt)
        self._store_to_target(stmt.target, value, stmt)

    def _compile_aug_assign(self, stmt: ast.AugAssign) -> None:
        load_expr: ast.expr
        if isinstance(stmt.target, ast.Name):
            load_expr = ast.copy_location(
                ast.Name(stmt.target.id, ast.Load()), stmt.target
            )
        elif isinstance(stmt.target, ast.Subscript):
            load_expr = ast.copy_location(
                ast.Subscript(stmt.target.value, stmt.target.slice, ast.Load()),
                stmt.target,
            )
        else:
            raise self.error("unsupported augmented-assignment target", stmt)
        current = self._compile_expr(load_expr)
        rhs = self._compile_expr(stmt.value)
        value = self._binop(stmt.op, current, rhs, stmt)
        self._store_to_target(stmt.target, value, stmt)

    def _store_to_target(self, target: ast.expr, value: Value, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.pointers:
                raise self.error(f"cannot reassign array/pointer {name!r}", stmt)
            if name in SPECIAL_REGISTERS:
                raise self.error(f"cannot assign to builtin {name!r}", stmt)
            if name not in self.locals:
                slot = self._entry_alloca(value.type, name)
                self.locals[name] = (slot, value.type)
            slot, elem_type = self.locals[name]
            value = self._coerce(value, elem_type, stmt)
            self.builder.store(value, slot)
        elif isinstance(target, ast.Subscript):
            pointer, elem_type = self._subscript_address(target)
            value = self._coerce(value, elem_type, stmt)
            self.builder.store(value, pointer)
        else:
            raise self.error(
                f"unsupported assignment target {type(target).__name__}", stmt
            )

    def _entry_alloca(self, type_: Type, name: str) -> Value:
        entry = self.fn.entry
        saved_block, saved_anchor = self.builder._block, self.builder._anchor
        # Insert after the existing leading allocas, before real code.
        first_non_alloca = None
        for inst in entry.instructions:
            from repro.ir.instructions import Alloca, Store

            if not isinstance(inst, (Alloca, Store)):
                first_non_alloca = inst
                break
        if first_non_alloca is not None:
            self.builder.position_before(first_non_alloca)
        else:
            self.builder.position_at_end(entry)
        slot = self.builder.alloca(type_, 1, name)
        self.builder._block, self.builder._anchor = saved_block, saved_anchor
        return slot

    def _try_array_decl(self, target: ast.expr, value: ast.expr) -> bool:
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("shared", "local")
        ):
            return False
        if not isinstance(target, ast.Name):
            raise self.error("array declaration must target a simple name", target)
        name = target.id
        if name in self.locals or name in self.pointers:
            raise self.error(f"redeclaration of {name!r}", target)
        if len(value.args) != 2:
            raise self.error(
                f"{value.func.id}(type, count) takes exactly two arguments", value
            )
        elem_type = self._annotation_type(value.args[0])
        count = self._constant_int(value.args[1])
        if value.func.id == "shared":
            gname = f"{self.fn.name}.{name}"
            var = GlobalVariable(gname, elem_type, count, AddressSpace.SHARED)
            self.module.add_global(var)
            self.pointers[name] = var
        else:
            slot = self.builder.alloca(elem_type, count, name)
            self.pointers[name] = slot
        return True

    def _constant_int(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            captured = self.globals_ns.get(node.id)
            if isinstance(captured, int):
                return captured
        if isinstance(node, ast.BinOp):
            left = self._constant_int(node.left)
            right = self._constant_int(node.right)
            ops = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.FloorDiv: lambda a, b: a // b,
            }
            fn = ops.get(type(node.op))
            if fn:
                return fn(left, right)
        raise self.error("expected a compile-time integer constant", node)

    def _compile_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not self.fn.return_type.is_void:
                raise self.error("missing return value", stmt)
            self.builder.ret()
            return
        if self.fn.return_type.is_void:
            raise self.error("kernels cannot return a value", stmt)
        value = self._coerce(
            self._compile_expr(stmt.value), self.fn.return_type, stmt
        )
        self.builder.ret(value)

    def _compile_expr_stmt(self, stmt: ast.Expr) -> None:
        node = stmt.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return  # docstring
        if not isinstance(node, ast.Call):
            raise self.error("expression statements must be calls", stmt)
        self._compile_call(node, discard_result=True)

    # -- control flow ------------------------------------------------------------
    def _compile_if(self, stmt: ast.If) -> None:
        cond = self._truth_value(self._compile_expr(stmt.test), stmt)
        then_block = self.fn.add_block("if.then")
        merge_block = self.fn.add_block("if.end")
        else_block = self.fn.add_block("if.else") if stmt.orelse else merge_block

        self.builder.cond_br(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._compile_body(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)

        if stmt.orelse:
            self.builder.position_at_end(else_block)
            self._compile_body(stmt.orelse)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def _compile_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self.error("while/else is not supported", stmt)
        header = self.fn.add_block("while.cond")
        body = self.fn.add_block("while.body")
        exit_block = self.fn.add_block("while.end")

        self.builder.br(header)
        self.builder.position_at_end(header)
        self.builder.set_loc(self.loc(stmt))
        cond = self._truth_value(self._compile_expr(stmt.test), stmt)
        self.builder.cond_br(cond, body, exit_block)

        self.loop_stack.append(_LoopContext(exit_block, header))
        self.builder.position_at_end(body)
        self._compile_body(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.loop_stack.pop()

        self.builder.position_at_end(exit_block)

    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.error("for/else is not supported", stmt)
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            raise self.error("for loops must iterate over range(...)", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self.error("for target must be a simple name", stmt)

        rng = stmt.iter.args
        if len(rng) == 1:
            start: Value = Constant(I32, 0)
            stop = self._as_i32(self._compile_expr(rng[0]), stmt)
            step: Value = Constant(I32, 1)
        elif len(rng) in (2, 3):
            start = self._as_i32(self._compile_expr(rng[0]), stmt)
            stop = self._as_i32(self._compile_expr(rng[1]), stmt)
            step = (
                self._as_i32(self._compile_expr(rng[2]), stmt)
                if len(rng) == 3
                else Constant(I32, 1)
            )
        else:
            raise self.error("range() takes 1-3 arguments", stmt)

        descending = isinstance(step, Constant) and step.value < 0

        ivar_name = stmt.target.id
        if ivar_name in self.pointers:
            raise self.error(f"loop variable shadows array {ivar_name!r}", stmt)
        if ivar_name not in self.locals:
            slot = self._entry_alloca(I32, ivar_name)
            self.locals[ivar_name] = (slot, I32)
        slot, elem_type = self.locals[ivar_name]
        if elem_type != I32:
            raise self.error(f"loop variable {ivar_name!r} must be i32", stmt)
        self.builder.store(start, slot)

        header = self.fn.add_block("for.cond")
        body = self.fn.add_block("for.body")
        latch = self.fn.add_block("for.inc")
        exit_block = self.fn.add_block("for.end")

        self.builder.br(header)
        self.builder.position_at_end(header)
        self.builder.set_loc(self.loc(stmt))
        ivar = self.builder.load(slot, ivar_name)
        pred = CmpPred.GT if descending else CmpPred.LT
        cond = self.builder.icmp(pred, ivar, stop, f"{ivar_name}.cmp")
        self.builder.cond_br(cond, body, exit_block)

        self.loop_stack.append(_LoopContext(exit_block, latch))
        self.builder.position_at_end(body)
        self._compile_body(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(latch)
        self.loop_stack.pop()

        self.builder.position_at_end(latch)
        self.builder.set_loc(self.loc(stmt))
        ivar2 = self.builder.load(slot, ivar_name)
        nxt = self.builder.add(ivar2, step, f"{ivar_name}.next")
        self.builder.store(nxt, slot)
        self.builder.br(header)

        self.builder.position_at_end(exit_block)

    # -- expressions ----------------------------------------------------------------
    def _compile_expr(self, node: ast.expr) -> Value:
        self.builder.set_loc(self.loc(node))
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.BinOp):
            lhs = self._compile_expr(node.left)
            rhs = self._compile_expr(node.right)
            self.builder.set_loc(self.loc(node))
            return self._binop(node.op, lhs, rhs, node)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        if isinstance(node, ast.Subscript):
            pointer, _ = self._subscript_address(node)
            self.builder.set_loc(self.loc(node))
            return self.builder.load(pointer, "arrayidx")
        if isinstance(node, ast.Call):
            result = self._compile_call(node, discard_result=False)
            if result is None:
                raise self.error("void call used as a value", node)
            return result
        if isinstance(node, ast.IfExp):
            cond = self._truth_value(self._compile_expr(node.test), node)
            a = self._compile_expr(node.body)
            b = self._compile_expr(node.orelse)
            a, b = self._unify(a, b, node)
            return self.builder.select(cond, a, b)
        raise self.error(f"unsupported expression {type(node).__name__}", node)

    def _constant(self, node: ast.Constant) -> Value:
        v = node.value
        if isinstance(v, bool):
            return Constant(BOOL, v)
        if isinstance(v, int):
            return Constant(I32, v)
        if isinstance(v, float):
            return Constant(F32, v)
        raise self.error(f"unsupported literal {v!r}", node)

    def _name(self, node: ast.Name) -> Value:
        name = node.id
        if name in self.locals:
            slot, _ = self.locals[name]
            return self.builder.load(slot, name)
        if name in self.pointers:
            return self.pointers[name]
        if name in SPECIAL_REGISTERS:
            intrinsic = self._declare_intrinsic(SPECIAL_REGISTERS[name], (), I32)
            return self.builder.call(intrinsic, [], name)
        captured = self.globals_ns.get(name)
        if isinstance(captured, bool):
            return Constant(BOOL, captured)
        if isinstance(captured, int):
            return Constant(I32, captured)
        if isinstance(captured, float):
            return Constant(F32, captured)
        raise self.error(f"unknown name {name!r}", node)

    def _subscript_address(self, node: ast.Subscript) -> Tuple[Value, Type]:
        base = self._compile_expr(node.value)
        if not base.type.is_pointer:
            raise self.error("only pointer values can be indexed", node)
        index_node = node.slice
        index = self._as_i32(self._compile_expr(index_node), node)
        self.builder.set_loc(self.loc(node))
        pointer = self.builder.gep(base, index, "arrayidx")
        return pointer, base.type.pointee

    def _binop(self, op: ast.operator, lhs: Value, rhs: Value, node: ast.AST) -> Value:
        lhs, rhs = self._unify(lhs, rhs, node)
        if lhs.type.is_float:
            opcode = _FLOAT_BINOPS.get(type(op))
            if opcode is None:
                if isinstance(op, ast.FloorDiv):
                    raise self.error("use / for float division", node)
                raise self.error(
                    f"operator {type(op).__name__} not supported on floats", node
                )
            return self.builder.binop(opcode, lhs, rhs)
        if isinstance(op, ast.Div):
            # True division promotes ints to f32, as in C with a cast.
            lf = self.builder.sitofp(lhs, F32)
            rf = self.builder.sitofp(rhs, F32)
            return self.builder.binop(Opcode.FDIV, lf, rf)
        opcode = _INT_BINOPS.get(type(op))
        if opcode is None:
            raise self.error(
                f"operator {type(op).__name__} not supported on integers", node
            )
        return self.builder.binop(opcode, lhs, rhs)

    def _unary(self, node: ast.UnaryOp) -> Value:
        value = self._compile_expr(node.operand)
        self.builder.set_loc(self.loc(node))
        if isinstance(node.op, ast.USub):
            if isinstance(value, Constant):
                # Fold negated literals so range(..., -1) and friends see
                # a constant step.
                return Constant(value.type, -value.value)
            if value.type.is_float:
                return self.builder.fsub(Constant(value.type, 0.0), value, "neg")
            return self.builder.sub(Constant(value.type, 0), value, "neg")
        if isinstance(node.op, ast.UAdd):
            return value
        if isinstance(node.op, ast.Not):
            cond = self._truth_value(value, node)
            return self.builder.binop(Opcode.XOR, cond, Constant(BOOL, True), "not")
        if isinstance(node.op, ast.Invert):
            if not value.type.is_int:
                raise self.error("~ requires an integer", node)
            return self.builder.binop(
                Opcode.XOR, value, Constant(value.type, -1), "inv"
            )
        raise self.error("unsupported unary operator", node)

    def _compare(self, node: ast.Compare) -> Value:
        if len(node.ops) != 1:
            raise self.error("chained comparisons are not supported", node)
        lhs = self._compile_expr(node.left)
        rhs = self._compile_expr(node.comparators[0])
        self.builder.set_loc(self.loc(node))
        lhs, rhs = self._unify(lhs, rhs, node)
        pred = _CMP_PREDS.get(type(node.ops[0]))
        if pred is None:
            raise self.error("unsupported comparison operator", node)
        if lhs.type.is_float:
            return self.builder.fcmp(pred, lhs, rhs)
        return self.builder.icmp(pred, lhs, rhs)

    def _boolop(self, node: ast.BoolOp) -> Value:
        # Evaluated eagerly (DSL expressions are side-effect free).
        opcode = Opcode.AND if isinstance(node.op, ast.And) else Opcode.OR
        result = self._truth_value(self._compile_expr(node.values[0]), node)
        for operand in node.values[1:]:
            value = self._truth_value(self._compile_expr(operand), node)
            self.builder.set_loc(self.loc(node))
            result = self.builder.binop(opcode, result, value, "bool")
        return result

    def _compile_call(
        self, node: ast.Call, discard_result: bool
    ) -> Optional[Value]:
        if node.keywords:
            raise self.error("keyword arguments are not supported", node)
        if not isinstance(node.func, ast.Name):
            raise self.error("only direct calls by name are supported", node)
        name = node.func.id
        self.builder.set_loc(self.loc(node))

        if name == "syncthreads":
            barrier = self._declare_intrinsic(BARRIER_INTRINSIC, (), VOID)
            self.builder.call(barrier, [])
            return None

        if name in ("shared", "local"):
            raise self.error(
                f"{name}() may only appear as `var = {name}(type, count)`", node
            )

        if name in ("atomic_add", "atomic_max", "atomic_min"):
            return self._compile_atomic(name, node)

        if name in ("min", "max"):
            a = self._compile_expr(node.args[0])
            b = self._compile_expr(node.args[1])
            a, b = self._unify(a, b, node)
            self.builder.set_loc(self.loc(node))
            if a.type.is_float:
                opcode = Opcode.FMIN if name == "min" else Opcode.FMAX
            else:
                opcode = Opcode.SMIN if name == "min" else Opcode.SMAX
            return self.builder.binop(opcode, a, b, name)

        if name == "int":
            value = self._compile_expr(node.args[0])
            if value.type.is_int:
                return self._as_i32(value, node)
            return self.builder.fptosi(value, I32)

        if name == "float":
            value = self._compile_expr(node.args[0])
            if value.type.is_float:
                return value
            return self.builder.sitofp(self._as_i32(value, node), F32)

        if name in MATH_INTRINSICS:
            symbol, arg_types, ret = MATH_INTRINSICS[name]
            if len(node.args) != len(arg_types):
                raise self.error(f"{name} takes {len(arg_types)} argument(s)", node)
            args = [
                self._coerce(self._compile_expr(a), t, node)
                for a, t in zip(node.args, arg_types)
            ]
            intrinsic = self._declare_intrinsic(symbol, arg_types, ret)
            self.builder.set_loc(self.loc(node))
            return self.builder.call(intrinsic, args, name)

        if name in self.device_registry:
            callee = self.compile_device(self.device_registry[name])
            args = []
            for a, want in zip(node.args, callee.type.params):
                args.append(self._coerce(self._compile_expr(a), want, node))
            if len(args) != len(callee.type.params):
                raise self.error(f"call to {name}: wrong arity", node)
            self.builder.set_loc(self.loc(node))
            call = self.builder.call(callee, args, name)
            return None if callee.return_type.is_void else call

        raise self.error(f"unknown function {name!r}", node)

    def _compile_atomic(self, name: str, node: ast.Call) -> Value:
        if len(node.args) != 3:
            raise self.error(f"{name}(array, index, value)", node)
        base = self._compile_expr(node.args[0])
        if not base.type.is_pointer:
            raise self.error(f"{name}: first argument must be an array", node)
        index = self._as_i32(self._compile_expr(node.args[1]), node)
        value = self._coerce(
            self._compile_expr(node.args[2]), base.type.pointee, node
        )
        self.builder.set_loc(self.loc(node))
        pointer = self.builder.gep(base, index, "atomidx")
        op = {
            "atomic_add": AtomicOp.ADD,
            "atomic_max": AtomicOp.MAX,
            "atomic_min": AtomicOp.MIN,
        }[name]
        return self.builder.atomic_rmw(op, pointer, value)

    # -- conversions -------------------------------------------------------------------
    def _truth_value(self, value: Value, node: ast.AST) -> Value:
        if value.type == BOOL:
            return value
        if value.type.is_int:
            return self.builder.icmp(
                CmpPred.NE, value, Constant(value.type, 0), "tobool"
            )
        if value.type.is_float:
            return self.builder.fcmp(
                CmpPred.NE, value, Constant(value.type, 0.0), "tobool"
            )
        raise self.error(f"cannot use {value.type} as a condition", node)

    def _as_i32(self, value: Value, node: ast.AST) -> Value:
        if value.type == I32:
            return value
        if value.type == BOOL or (value.type.is_int and value.type.bits < 32):
            return self.builder.zext(value, I32)
        if value.type == I64:
            return self.builder.trunc(value, I32)
        if value.type.is_float:
            raise self.error("expected an integer, got a float", node)
        raise self.error(f"cannot convert {value.type} to i32", node)

    def _coerce(self, value: Value, want: Type, node: ast.AST) -> Value:
        have = value.type
        if have == want:
            return value
        if want.is_float and have.is_int:
            src = value if have == I32 else self._as_i32(value, node)
            return self.builder.sitofp(src, want)
        if want.is_float and have.is_float:
            kind = CastKind.FPEXT if want.size_bits() > have.size_bits() else CastKind.FPTRUNC
            return self.builder.cast(kind, value, want)
        if want.is_int and have.is_int:
            if want.bits > have.bits:
                # Widen bools with zext, signed ints with sext.
                kind = CastKind.ZEXT if have == BOOL else CastKind.SEXT
                return self.builder.cast(kind, value, want)
            return self.builder.trunc(value, want)
        if want.is_int and have.is_float:
            raise self.error(
                f"implicit float-to-int narrowing; use int(...) explicitly", node
            )
        raise self.error(f"cannot convert {have} to {want}", node)

    def _unify(self, a: Value, b: Value, node: ast.AST) -> Tuple[Value, Value]:
        """Usual arithmetic conversions: int+float -> float, widen ints."""
        if a.type == b.type:
            return a, b
        if a.type.is_pointer or b.type.is_pointer:
            raise self.error("pointer arithmetic must go through indexing", node)
        if a.type.is_float and b.type.is_int:
            return a, self._coerce(b, a.type, node)
        if a.type.is_int and b.type.is_float:
            return self._coerce(a, b.type, node), b
        if a.type.is_float and b.type.is_float:
            wide = a.type if a.type.size_bits() >= b.type.size_bits() else b.type
            return self._coerce(a, wide, node), self._coerce(b, wide, node)
        # both ints
        wide = a.type if a.type.bits >= b.type.bits else b.type
        if wide == BOOL:
            wide = I32
        return self._coerce(a, wide, node), self._coerce(b, wide, node)
