"""The kernel DSL frontend (the reproduction's "Clang/gpucc").

CUDA kernels are written as restricted Python functions and compiled to
the mini-IR with real source line/column debug information -- the same
role Clang plays in Figure 2 of the paper (source -> bitcode with
``!dbg`` metadata), so the instrumentation engine can attribute every
profiled event to source code.

Example::

    from repro.frontend import kernel, ptr_f32, f32, i32

    @kernel
    def axpy(x: ptr_f32, y: ptr_f32, a: f32, n: i32):
        gid = ctaid_x * ntid_x + tid_x
        if gid < n:
            y[gid] = a * x[gid] + y[gid]

    module = compile_kernels([axpy], "axpy_module")
"""

from repro.frontend.typesys import (
    f32,
    f64,
    i8,
    i32,
    i64,
    ptr_f32,
    ptr_f64,
    ptr_i8,
    ptr_i32,
    ptr_i64,
)
from repro.frontend.dsl import KernelSource, compile_kernels, device, kernel
from repro.frontend.intrinsics import BUILTIN_DOC

__all__ = [
    "BUILTIN_DOC",
    "KernelSource",
    "compile_kernels",
    "device",
    "f32",
    "f64",
    "i8",
    "i32",
    "i64",
    "kernel",
    "ptr_f32",
    "ptr_f64",
    "ptr_i8",
    "ptr_i32",
    "ptr_i64",
]
