"""Crash-safe file publication: temp-file + ``os.replace``.

Every artifact this tool publishes under a well-known name -- export
documents, spill segments, cache entries, benchmark results -- goes
through :func:`atomic_write_bytes`.  The payload is written to a
temporary file in the *same directory* as the target (``os.replace``
is only atomic within one filesystem), flushed and fsynced, and then
renamed over the target in one atomic step.  A process killed at any
point therefore leaves either the old file, the new file, or a stray
``.tmp-*`` temp file -- never a truncated artifact under the final
name (pinned by ``tests/test_atomic_io.py``).
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically (write temp, fsync, replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".tmp-" + os.path.basename(path) + "-"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Text-mode convenience over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))
