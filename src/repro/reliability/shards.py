"""Supervised execution of fork-parallel shard workers.

One forked worker process runs per SM shard.  Instead of a bare
process pool (where one crashed worker poisons every future and a hung
worker wedges the launch forever), :func:`run_shards_supervised` gives
each worker its own result pipe and supervises the fleet:

* **heartbeats** -- a worker sends a heartbeat when it starts and after
  every SM it finishes; the hang deadline (``timeout`` seconds) is
  measured from the *last* heartbeat, so a long but progressing shard
  is never reaped while a stuck one is.
* **crash detection** -- a worker that dies without delivering a result
  (signal, ``os._exit``, OOM-kill) is detected by EOF on its pipe.
* **bounded retry with backoff** -- a faulted shard is relaunched up to
  ``max_attempts`` times total, waiting ``backoff * 2**(attempt-1)``
  seconds before each relaunch; retries overlap with still-running
  shards (the scheduler never blocks on a backoff sleep).

The returned outcomes preserve shard identity, so the caller merges
results in shard-index order -- the deterministic re-merge that keeps
a supervised launch byte-identical to a clean serial run.  Shards whose
retries are exhausted come back ``result=None`` with their fault
history; the device re-executes exactly those shards serially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence

#: fault kinds recorded per attempt
CRASH = "crash"
TIMEOUT = "timeout"
ERROR = "error"


@dataclass
class ShardOutcome:
    """Everything the supervisor learned about one shard."""

    index: int
    result: Optional[dict] = None
    attempts: int = 0
    #: fault kind per failed attempt (CRASH / TIMEOUT / ERROR), in order
    faults: List[str] = field(default_factory=list)
    #: detail string of the last fault (e.g. the worker's exception)
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.result is None

    @property
    def recovered(self) -> bool:
        return self.result is not None and bool(self.faults)


class _Live:
    """Bookkeeping for one running worker process."""

    __slots__ = ("proc", "conn", "index", "last_beat")

    def __init__(self, proc, conn, index: int, now: float):
        self.proc = proc
        self.conn = conn
        self.index = index
        self.last_beat = now


def run_shards_supervised(
    ctx,
    entry: Callable,
    indices: Sequence[int],
    timeout: Optional[float] = None,
    max_attempts: int = 1,
    backoff: float = 0.05,
    poll: float = 0.02,
) -> Dict[int, ShardOutcome]:
    """Run ``entry(index, attempt, conn)`` in one forked process per shard.

    ``entry`` must send ``("hb", t)`` heartbeats and finally either
    ``("ok", result_dict)`` or ``("err", detail_str)`` on ``conn``.
    Returns a :class:`ShardOutcome` per index.
    """
    outcomes = {i: ShardOutcome(index=i) for i in indices}
    live: Dict[object, _Live] = {}  # reader conn -> _Live
    backlog: List[List[float]] = [[0.0, i] for i in indices]  # [ready, idx]

    def _launch(index: int) -> None:
        reader, writer = ctx.Pipe(duplex=False)
        attempt = outcomes[index].attempts
        proc = ctx.Process(target=entry, args=(index, attempt, writer))
        proc.start()
        writer.close()  # parent's copy; EOF detection needs it closed
        outcomes[index].attempts += 1
        live[reader] = _Live(proc, reader, index, time.monotonic())

    def _fail(lv: _Live, kind: str, detail: str = "") -> None:
        out = outcomes[lv.index]
        out.faults.append(kind)
        out.detail = detail or kind
        lv.conn.close()
        del live[lv.conn]
        if lv.proc.is_alive():
            lv.proc.kill()
        lv.proc.join()
        if out.attempts < max_attempts:
            delay = backoff * (2 ** (out.attempts - 1))
            backlog.append([time.monotonic() + delay, lv.index])

    while backlog or live:
        now = time.monotonic()
        for item in list(backlog):
            if item[0] <= now:
                backlog.remove(item)
                _launch(item[1])
        if not live:
            if backlog:
                time.sleep(max(0.0, min(i[0] for i in backlog) - now))
            continue
        for conn in _connection_wait(list(live), timeout=poll):
            lv = live.get(conn)
            if lv is None:
                continue
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                _fail(lv, CRASH)
                continue
            if kind == "hb":
                lv.last_beat = time.monotonic()
            elif kind == "err":
                _fail(lv, ERROR, detail=str(payload))
            else:  # "ok"
                outcomes[lv.index].result = payload
                conn.close()
                del live[conn]
                lv.proc.join()
        if timeout is not None:
            now = time.monotonic()
            for lv in list(live.values()):
                if now - lv.last_beat > timeout:
                    _fail(lv, TIMEOUT)
    return outcomes
