"""The launch supervisor: policy-driven degradation ladder.

Every ``Device.launch`` resolves its execution plan through the
device's :class:`LaunchSupervisor`.  The **degradation ladder** orders
the execution modes from fastest to most conservative::

    batched backend  ->  fork-parallel interpreter  ->  serial interpreter

Any transition *down* the ladder -- and any recovery from a shard
fault -- goes through :meth:`LaunchSupervisor.degrade`, which applies
the device's ``failure_policy``:

``"strict"``
    Never degrade or recover: raise
    :class:`~repro.errors.LaunchDegradedError` carrying the reason code
    and context.  Shard faults are not retried.
``"degrade"`` (default)
    Degrade/recover and emit one structured
    :class:`~repro.errors.LaunchDegradedWarning` per (reason, kernel)
    on this device -- a session launching the same kernel a thousand
    times warns once, not a thousand times.
``"best_effort"``
    Degrade/recover silently; events are still recorded in
    ``supervisor.events`` for post-run inspection.

Reason codes are stable, machine-readable strings (``w.reason``); the
human-readable message stays ``str(w)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import LaunchDegradedError, LaunchDegradedWarning, LaunchError

#: The valid values of ``device.failure_policy``.
FAILURE_POLICIES = ("strict", "degrade", "best_effort")

# -- machine-readable reason codes (stable API for tooling) -----------------
#: pc sampling needs per-instruction stepping; batched backend dropped.
PC_SAMPLING_BATCHED = "pc-sampling-batched"
#: pc sampling keeps one global sample clock; parallel launch dropped.
PC_SAMPLING_PARALLEL = "pc-sampling-parallel"
#: the platform cannot fork worker processes; parallel launch dropped.
FORK_UNAVAILABLE = "fork-unavailable"
#: CTAs in different shards wrote overlapping memory; serial rerun.
SHARD_WRITE_CONFLICT = "shard-write-conflict"
#: a shard worker process died without delivering its result.
SHARD_WORKER_CRASH = "shard-worker-crash"
#: a shard worker missed its heartbeat deadline and was killed.
SHARD_TIMEOUT = "shard-timeout"
#: a shard worker raised an exception; re-executed serially.
SHARD_WORKER_ERROR = "shard-worker-error"
#: a spilled trace segment failed its integrity check and was dropped.
TRACE_SEGMENT_CORRUPT = "trace-segment-corrupt"
#: the launch needs raw trace records (pc sampling, record export);
#: fused in-flight analysis is disabled and the trace materializes.
FUSED_RECORDS_UNAVAILABLE = "fused-records-unavailable"

REASON_CODES = (
    PC_SAMPLING_BATCHED,
    PC_SAMPLING_PARALLEL,
    FORK_UNAVAILABLE,
    SHARD_WRITE_CONFLICT,
    SHARD_WORKER_CRASH,
    SHARD_TIMEOUT,
    SHARD_WORKER_ERROR,
    TRACE_SEGMENT_CORRUPT,
    FUSED_RECORDS_UNAVAILABLE,
)


@dataclass
class DegradationEvent:
    """One recorded drop down the ladder (or fault recovery)."""

    reason: str
    kernel: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)


class LaunchSupervisor:
    """Per-device policy enforcement and warning deduplication."""

    def __init__(self, device):
        self.device = device
        self.events: List[DegradationEvent] = []
        self._warned: Set[Tuple[str, str]] = set()

    @property
    def policy(self) -> str:
        policy = self.device.failure_policy
        if policy not in FAILURE_POLICIES:
            raise LaunchError(
                f"unknown failure policy {policy!r}: expected one of "
                f"{', '.join(FAILURE_POLICIES)}"
            )
        return policy

    def degrade(self, reason: str, kernel: str, message: str,
                stacklevel: int = 3, **context) -> None:
        """Record one ladder drop; raise/warn according to policy.

        ``strict`` raises :class:`LaunchDegradedError` (the launch must
        not proceed degraded); ``degrade`` warns once per (reason,
        kernel) on this device; ``best_effort`` only records the event.
        """
        context = dict(context, kernel=kernel)
        if self.policy == "strict":
            raise LaunchDegradedError(message, reason=reason, context=context)
        self.events.append(DegradationEvent(reason, kernel, message, context))
        key = (reason, kernel)
        if self.policy == "degrade" and key not in self._warned:
            self._warned.add(key)
            warnings.warn(
                LaunchDegradedWarning(message, reason=reason, context=context),
                stacklevel=stacklevel,
            )

    def events_for(self, reason: str) -> List[DegradationEvent]:
        return [e for e in self.events if e.reason == reason]
