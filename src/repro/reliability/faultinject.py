"""Seedable fault injection for the launch-reliability layer.

A :class:`FaultInjector` is attached to a device
(``device.fault_injector = FaultInjector(seed=...)``) and consulted at
a small set of named **injection points** inside the launch and trace
pipeline.  Each point fires only when an armed :class:`FaultSpec`
matches the call's context, so chaos tests can pin precise scenarios
("shard 1 crashes on its first attempt", "the second spill segment is
corrupted") and probabilistic soak runs stay reproducible from a seed.

Injection points
----------------

``worker_crash``
    Fired in a forked shard worker before any execution; the worker
    dies with ``os._exit`` (no result, no traceback) -- the parent sees
    a crashed process.  Context: ``shard``, ``attempt``.
``shard_hang``
    Fired in a forked shard worker after its first heartbeat; the
    worker sleeps forever -- the parent's shard timeout must reap it.
    Context: ``shard``, ``attempt``.
``buffer_overflow``
    Fired once per instrumented launch when the hook runtime builds its
    trace buffers; forces a tiny spill-segment size (param
    ``segment_rows``, default 256) so the columnar buffers overflow to
    disk mid-launch.  Context: ``kernel``.
``corrupt_spill``
    Fired after a spill segment is written; flips bytes in the file so
    the drain-time integrity check fails.  Context: ``kind`` (buffer
    kind), ``segment`` (per-buffer ordinal).

Service-scope points (the profiling-as-a-service tier;
``docs/service.md``):

``service_worker_crash``
    Fired in a persistent pool worker when it picks up a job, before
    any execution; the worker dies with ``os._exit`` -- the service
    sees a crashed worker holding a job.  Context: ``job``, ``app``,
    ``attempt``, ``worker``.
``service_job_hang``
    Fired in a persistent pool worker after it acknowledges a job; the
    worker sleeps forever without heartbeating -- the service's job
    timeout must reap it.  Context: ``job``, ``app``, ``attempt``,
    ``worker``.
``cache_corrupt_entry``
    Fired after a result-cache entry is published; flips bytes in the
    entry file so the next read fails its checksum and the entry is
    quarantined.  Context: ``key`` (cache key), ``app``.
``service_pool_loss``
    Fired in the service parent as a job is submitted; the service
    kills one live pool worker -- the "submit storm during worker
    loss" scenario.  Context: ``job``, ``app``.  Param ``worker``
    picks a specific worker id (default: the lowest live id).

Probabilistic specs are deterministic across processes: the decision
hashes ``(seed, point, context)`` instead of consuming shared RNG
state, so a forked worker reaches the same verdict its parent would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The valid injection-point names (typo guard for tests).
INJECTION_POINTS = (
    "worker_crash",
    "shard_hang",
    "buffer_overflow",
    "corrupt_spill",
    "service_worker_crash",
    "service_job_hang",
    "cache_corrupt_entry",
    "service_pool_loss",
)


@dataclass
class FaultSpec:
    """One armed fault: where it fires, when, and with what params."""

    point: str
    when: Dict[str, object] = field(default_factory=dict)
    probability: float = 1.0
    count: Optional[int] = None  # max fires (per process); None = unbounded
    params: Dict[str, object] = field(default_factory=dict)
    fired: int = 0

    def matches(self, ctx: Dict[str, object]) -> bool:
        return all(ctx.get(k) == v for k, v in self.when.items())


class FaultInjector:
    """A seedable registry of armed faults, queried at injection points."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.specs: List[FaultSpec] = []
        #: process-local record of fired faults: (point, context) pairs.
        self.log: List[Tuple[str, Dict[str, object]]] = []

    def inject(
        self,
        point: str,
        when: Optional[Dict[str, object]] = None,
        probability: float = 1.0,
        count: Optional[int] = None,
        **params,
    ) -> "FaultInjector":
        """Arm a fault at ``point``; chainable.

        ``when`` is a context subset that must match for the fault to
        fire (e.g. ``{"shard": 1, "attempt": 0}``); ``params`` are
        point-specific knobs handed back to the caller (e.g.
        ``segment_rows=64`` for ``buffer_overflow``).
        """
        if point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}: expected one of "
                f"{', '.join(INJECTION_POINTS)}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.specs.append(
            FaultSpec(point, dict(when or {}), probability, count, params)
        )
        return self

    def _decide(self, spec: FaultSpec, ctx: Dict[str, object]) -> bool:
        if spec.probability >= 1.0:
            return True
        # Stateless, fork-stable decision: hash seed + point + context.
        key = f"{self.seed}:{spec.point}:{sorted(ctx.items())!r}"
        return random.Random(key).random() < spec.probability

    def fire(self, point: str, **ctx) -> Optional[Dict[str, object]]:
        """Query an injection point; returns the matched spec's params
        (possibly an empty dict) when a fault fires, else ``None``."""
        for spec in self.specs:
            if spec.point != point or not spec.matches(ctx):
                continue
            if spec.count is not None and spec.fired >= spec.count:
                continue
            if not self._decide(spec, ctx):
                continue
            spec.fired += 1
            self.log.append((point, dict(ctx)))
            return dict(spec.params)
        return None

    def fires(self, point: str, **ctx) -> bool:
        """Boolean convenience over :meth:`fire`."""
        return self.fire(point, **ctx) is not None
