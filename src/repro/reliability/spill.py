"""Spill-segment storage for the columnar trace buffers.

The paper keeps the whole trace in a device-global buffer and copies it
out at kernel exit; a long whole-program profiling run can outgrow any
in-memory buffer.  When a :class:`SpillConfig` is attached, a columnar
buffer that reaches ``segment_rows`` rows writes the full segment to
disk and keeps appending into a fresh in-memory segment; ``drain()``
reads the segments back in order and concatenates them with the
in-memory tail, so consumers see a stream byte-identical to an
all-in-memory run (pinned by ``tests/test_spill_equivalence.py``).

Each segment file is self-checking: a fixed header records the payload
length, the row count and a CRC32, so a truncated or corrupted segment
is detected at drain time (``on_corrupt`` decides whether that raises
:class:`~repro.errors.TraceCorruptionError` or drops the segment with
accounting -- the row count lives in the clear in the header, so even a
dropped segment reports exactly how many rows were lost).
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import uuid
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TraceCorruptionError
from repro.ioutil import atomic_write_bytes

#: Segment header: magic, payload bytes, row count, CRC32 of payload.
_MAGIC = b"RSPL"
_HEADER = struct.Struct("<4sQQI")


@dataclass
class SpillConfig:
    """How (and when) a columnar buffer spills segments to disk.

    ``directory=None`` resolves lazily to a fresh temp directory the
    first time a segment is written.  ``on_corrupt`` selects the
    drain-time behaviour for a failed integrity check: ``"raise"``
    (strict) or ``"drop"`` (count the rows as dropped and continue).
    ``injector`` threads the device's fault injector through to the
    ``corrupt_spill`` injection point.
    """

    directory: Optional[str] = None
    segment_rows: int = 65536
    on_corrupt: str = "raise"
    injector: object = None
    _resolved_dir: Optional[str] = field(default=None, repr=False)

    def resolve_dir(self) -> str:
        if self._resolved_dir is None:
            if self.directory is not None:
                os.makedirs(self.directory, exist_ok=True)
                self._resolved_dir = self.directory
            else:
                self._resolved_dir = tempfile.mkdtemp(prefix="repro-spill-")
        return self._resolved_dir


def write_segment(config: SpillConfig, kind: str, index: int,
                  payload: dict, rows: int) -> str:
    """Serialize one segment; returns its path.

    Filenames embed the pid and a random suffix so parallel shard
    workers spilling into a shared directory can never collide.  The
    segment is published via temp-file + ``os.replace``, so a process
    killed mid-write never leaves a truncated ``.seg`` file under the
    final name.
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, len(data), rows, zlib.crc32(data))
    path = os.path.join(
        config.resolve_dir(),
        f"{kind}-{index:06d}-{os.getpid()}-{uuid.uuid4().hex[:8]}.seg",
    )
    atomic_write_bytes(path, header + data)
    if config.injector is not None:
        params = config.injector.fire("corrupt_spill", kind=kind,
                                      segment=index)
        if params is not None:
            _corrupt_file(path, int(params.get("offset", 64)))
    return path


def _corrupt_file(path: str, offset: int) -> None:
    """Flip a byte of the payload in place (the corrupt_spill fault)."""
    with open(path, "r+b") as f:
        f.seek(0, os.SEEK_END)
        size = f.tell()
        pos = min(_HEADER.size + max(0, offset), size - 1)
        f.seek(pos)
        byte = f.read(1)
        f.seek(pos)
        f.write(bytes([byte[0] ^ 0xFF]))


def read_segment(path: str) -> dict:
    """Load and verify one segment; raises TraceCorruptionError.

    The error carries the row count from the clear-text header (0 when
    even the header is unreadable) so callers can account for exactly
    how many rows a dropped segment lost.
    """
    try:
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise TraceCorruptionError(
                    f"spill segment {path} is truncated (no header)",
                    path=path, rows=0,
                )
            magic, length, rows, crc = _HEADER.unpack(head)
            if magic != _MAGIC:
                raise TraceCorruptionError(
                    f"spill segment {path} has a bad magic number",
                    path=path, rows=0,
                )
            data = f.read(length)
    except OSError as exc:
        raise TraceCorruptionError(
            f"spill segment {path} is unreadable: {exc}", path=path, rows=0
        ) from exc
    if len(data) != length or zlib.crc32(data) != crc:
        raise TraceCorruptionError(
            f"spill segment {path} failed its integrity check "
            f"({rows} rows lost)",
            path=path, rows=rows,
        )
    return pickle.loads(data)


def discard_segment(path: str) -> None:
    """Best-effort removal of a drained (or abandoned) segment file."""
    try:
        os.unlink(path)
    except OSError:
        pass
