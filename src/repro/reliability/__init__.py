"""Launch reliability: supervisor, shard supervision, spill, faults.

The reliability layer turns scattered one-off fallbacks into an
explicit, policy-driven system (see ``docs/reliability.md``):

* :mod:`repro.reliability.supervisor` -- the degradation ladder
  (batched -> fork-parallel -> serial interpreter), failure policies,
  machine-readable reason codes, per-device warning deduplication.
* :mod:`repro.reliability.shards` -- heartbeat/timeout supervision and
  bounded retry of fork-parallel shard workers.
* :mod:`repro.reliability.spill` -- checksummed disk spill segments for
  the columnar trace buffers.
* :mod:`repro.reliability.faultinject` -- the seedable fault-injection
  framework driving the chaos test suite.
"""

from repro.reliability.faultinject import INJECTION_POINTS, FaultInjector
from repro.reliability.spill import SpillConfig
from repro.reliability.supervisor import (
    FAILURE_POLICIES,
    REASON_CODES,
    DegradationEvent,
    LaunchSupervisor,
)

__all__ = [
    "FAILURE_POLICIES",
    "REASON_CODES",
    "INJECTION_POINTS",
    "DegradationEvent",
    "FaultInjector",
    "LaunchSupervisor",
    "SpillConfig",
]
