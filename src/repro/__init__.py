"""CUDAAdvisor reproduction: LLVM-style GPU profiling in pure Python.

Reproduces *CUDAAdvisor: LLVM-Based Runtime Profiling for Modern GPUs*
(Shen, Song, Li, Liu -- CGO 2018) end to end: a mini-LLVM IR and kernel
DSL frontend, the instrumentation-engine passes, a SIMT GPU simulator
standing in for real hardware, the code-/data-centric profiler, the
reuse-distance / memory-divergence / branch-divergence analyzers, and
the Eq.(1) cache-bypassing advisor.

Quickstart::

    from repro import CUDAAdvisor, KEPLER_K40C
    from repro.apps import build_app

    advisor = CUDAAdvisor(arch=KEPLER_K40C, modes=("memory", "blocks"))
    report = advisor.profile(build_app("bfs"))
    print("\\n".join(report.advice()))
"""

from repro.gpu.arch import GPUArchitecture, KEPLER_K40C, PASCAL_P100, kepler_with_l1
from repro.gpu.device import Device, DevicePointer, LaunchResult
from repro.host.runtime import CudaRuntime
from repro.host.shadow_stack import host_function
from repro.optim.advisor import AdvisorReport, CUDAAdvisor, GPUProgram
from repro.profiler.session import ProfilingSession

__version__ = "1.0.0"

__all__ = [
    "AdvisorReport",
    "CUDAAdvisor",
    "CudaRuntime",
    "Device",
    "DevicePointer",
    "GPUArchitecture",
    "GPUProgram",
    "KEPLER_K40C",
    "LaunchResult",
    "PASCAL_P100",
    "ProfilingSession",
    "host_function",
    "kepler_with_l1",
    "__version__",
]
