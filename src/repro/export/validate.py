"""A small, dependency-free JSON Schema validator (subset).

The profile export bundles a JSON Schema
(``src/repro/export/schema/profile_export.schema.json``) as its format
contract, and every emitted document is validated against it in tests
and in the ``repro export --validate`` path. CI environments install
only numpy/pytest/hypothesis, so this module implements the subset of
JSON Schema (draft 2020-12 keywords) the bundled schema actually uses:

``type`` (incl. union lists), ``properties``, ``required``,
``additionalProperties``, ``patternProperties``, ``items``, ``enum``,
``const``, ``minimum`` / ``maximum``, ``minItems``, ``pattern``,
``anyOf`` and ``$ref`` into ``#/$defs/...``.

When the real ``jsonschema`` package is importable the test suite
cross-checks both validators agree; this one is authoritative for the
tool itself.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator, List

SCHEMA_DIR = Path(__file__).resolve().parent / "schema"

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in python; exclude it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class SchemaError(ValueError):
    """A document failed schema validation (first error wins)."""


def load_schema(name: str = "profile_export") -> dict:
    """Load a bundled schema by name from :data:`SCHEMA_DIR`."""
    path = SCHEMA_DIR / f"{name}.schema.json"
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref target: {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        part = part.replace("~1", "/").replace("~0", "~")
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"dangling $ref: {ref!r}")
        node = node[part]
    return node


def iter_errors(value: Any, schema: dict, root: dict = None,
                path: str = "$") -> Iterator[str]:
    """Yield every violation of ``schema`` by ``value`` (depth-first)."""
    if root is None:
        root = schema
    if "$ref" in schema:
        yield from iter_errors(
            value, _resolve_ref(schema["$ref"], root), root, path
        )
        return
    if "const" in schema and value != schema["const"]:
        yield f"{path}: expected const {schema['const']!r}, got {value!r}"
        return
    if "enum" in schema and value not in schema["enum"]:
        yield f"{path}: {value!r} not one of {schema['enum']!r}"
        return
    if "anyOf" in schema:
        branches = schema["anyOf"]
        failures: List[List[str]] = []
        for branch in branches:
            errs = list(iter_errors(value, branch, root, path))
            if not errs:
                break
            failures.append(errs)
        else:
            yield (
                f"{path}: matched none of {len(branches)} anyOf branches "
                f"(first branch said: {failures[0][0]})"
            )
            return
    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            yield (
                f"{path}: expected {' or '.join(types)}, "
                f"got {type(value).__name__}"
            )
            return
    if isinstance(value, str) and "pattern" in schema:
        if re.search(schema["pattern"], value) is None:
            yield f"{path}: {value!r} does not match /{schema['pattern']}/"
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            yield f"{path}: {value!r} < minimum {schema['minimum']!r}"
        if "maximum" in schema and value > schema["maximum"]:
            yield f"{path}: {value!r} > maximum {schema['maximum']!r}"
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            yield (
                f"{path}: {len(value)} items < minItems "
                f"{schema['minItems']!r}"
            )
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                yield from iter_errors(
                    item, item_schema, root, f"{path}[{i}]"
                )
    if isinstance(value, dict):
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        for name in schema.get("required", ()):
            if name not in value:
                yield f"{path}: missing required property {name!r}"
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            sub_path = f"{path}.{key}"
            if key in props:
                yield from iter_errors(item, props[key], root, sub_path)
                continue
            matched = False
            for pattern, sub in patterns.items():
                if re.search(pattern, key) is not None:
                    matched = True
                    yield from iter_errors(item, sub, root, sub_path)
            if matched:
                continue
            if extra is False:
                yield f"{path}: unexpected property {key!r}"
            elif isinstance(extra, dict):
                yield from iter_errors(item, extra, root, sub_path)


def validate(value: Any, schema: dict = None) -> None:
    """Raise :class:`SchemaError` on the first violation (None = OK)."""
    if schema is None:
        schema = load_schema()
    for error in iter_errors(value, schema):
        raise SchemaError(error)
