"""The versioned machine-readable profile export.

:func:`profile_export` turns an
:class:`~repro.optim.advisor.AdvisorReport` into a plain-JSON document
whose shape is fixed by the bundled schema
(``src/repro/export/schema/profile_export.schema.json``) and documented
field-by-field in ``docs/profile-format.md``. The document is the
tool's stable outward interface: downstream agents, dashboards and
autotuners consume it instead of scraping rendered text.

Determinism contract: the default document depends only on the program,
architecture and instrumentation knobs -- *not* on how the trace was
drained. Profiling the same app with the in-RAM drain, the streaming
drain, fork-parallel shards or the batched backend yields byte-identical
:func:`export_json` output (pinned by ``tests/test_export.py``).
Run-variant observations (wall-clock, stream/drain statistics,
degradation events) live in the opt-in ``runtime`` section, which
``include_runtime=True`` adds at the cost of that identity.

Versioning: ``schema_version`` is ``"<major>.<minor>"``. Within a major
version changes are strictly additive (new optional fields or sections);
removing or re-typing a field requires a major bump. Consumers should
accept any document whose major version they know.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional

from repro.optim.advisor import AdvisorReport

#: Contract version of the emitted document (see module docstring).
SCHEMA_VERSION = "1.0"

#: ``generator`` string stamped into every document.
GENERATOR = "cudaadvisor-repro"


def _kernel_entry(profile) -> dict:
    return {
        "name": profile.kernel,
        "launch_site": profile.launch_site,
        "grid": list(profile.grid),
        "block": list(profile.block),
        "num_ctas": profile.num_ctas,
        "warps_per_cta": profile.warps_per_cta,
        "records": {
            "memory": len(profile.memory_records),
            "block": len(profile.block_records),
            "arith": len(profile.arith_records),
        },
        "dropped_records": profile.dropped_records,
        "spilled_records": profile.spilled_records,
        "corrupt_records": profile.corrupt_records,
    }


def _reuse_entry(histogram) -> dict:
    return {
        "model": histogram.model.value,
        "samples": histogram.samples,
        "infinite": histogram.infinite,
        "finite_sum": histogram.finite_sum,
        "finite_count": histogram.finite_count,
        "no_reuse_fraction": histogram.no_reuse_fraction,
        "average_finite_distance": histogram.average_distance,
        "frequencies": dict(histogram.frequencies),
    }


def _metrics_section(report: AdvisorReport) -> dict:
    metrics: dict = {}
    if report.reuse_element is not None:
        metrics["reuse_element"] = _reuse_entry(report.reuse_element)
    if report.reuse_cache_line is not None:
        metrics["reuse_cache_line"] = _reuse_entry(report.reuse_cache_line)
    if report.memory_divergence is not None:
        md = report.memory_divergence
        metrics["memory_divergence"] = {
            "line_size": md.line_size,
            "instructions": md.instructions,
            "degree": md.divergence_degree,
            "distribution": {
                str(k): v for k, v in md.distribution.items()
            },
        }
    if report.branch_divergence is not None:
        bd = report.branch_divergence
        metrics["branch_divergence"] = {
            "total_blocks": bd.total_blocks,
            "divergent_blocks": bd.divergent_blocks,
            "percent": bd.divergence_percent,
            "per_block": {
                name: {
                    "line": stats.line,
                    "executions": stats.executions,
                    "divergent": stats.divergent,
                }
                for name, stats in bd.per_block.items()
            },
        }
    if report.arithmetic is not None:
        ar = report.arithmetic
        metrics["arithmetic"] = {
            "lane_flops": ar.lane_flops,
            "lane_intops": ar.lane_intops,
            "float_fraction": ar.float_fraction,
            "by_opcode": {k: int(v) for k, v in ar.by_opcode.items()},
            "by_line": {str(k): int(v) for k, v in ar.by_line.items()},
        }
    if report.bypass_prediction is not None:
        p = report.bypass_prediction
        metrics["bypass_prediction"] = {
            "optimal_warps": p.optimal_warps,
            "warps_per_cta": p.warps_per_cta,
            "raw_value": p.raw_value,
            "avg_reuse_distance": p.avg_reuse_distance,
            "divergence_degree": p.divergence_degree,
            "ctas_per_sm": p.ctas_per_sm,
            "l1_size": p.l1_size,
            "line_size": p.line_size,
            "recommended": p.bypassing_recommended,
        }
    if report.overhead is not None:
        ov = report.overhead
        metrics["overhead"] = {
            "baseline_cycles": ov.baseline_cycles,
            "instrumented_cycles": ov.instrumented_cycles,
            "baseline_instructions": ov.baseline_instructions,
            "instrumented_instructions": ov.instrumented_instructions,
            "cycle_overhead": ov.cycle_overhead,
            "instruction_overhead": ov.instruction_overhead,
        }
    return metrics


def _heatmap_section(report: AdvisorReport, time_buckets: int,
                     columnar: bool) -> dict:
    resolved = report.resolved_heatmap(time_buckets)
    allocations = []
    section = {
        "granule_bytes": resolved.granule_bytes,
        "cell_rows": resolved.cell_rows,
        "time_cells": resolved.time_cells,
        "time_buckets": resolved.time_buckets,
        "total_accesses": resolved.total_accesses,
        "layout": "columnar" if columnar else "series",
        "allocations": allocations,
    }
    if columnar:
        # Sparse cell table: one parallel-array entry per cell with
        # activity, in (allocation, bucket) order.
        cells = {
            "allocation": [], "bucket": [],
            "reads": [], "writes": [], "unique_bytes": [],
        }
        for i, row in enumerate(resolved.rows):
            allocations.append({
                "name": row.name,
                "base": row.base,
                "nbytes": row.nbytes,
                "site": row.site,
            })
            for b in range(resolved.time_buckets):
                if not (row.reads[b] or row.writes[b]
                        or row.unique_bytes[b]):
                    continue
                cells["allocation"].append(i)
                cells["bucket"].append(b)
                cells["reads"].append(row.reads[b])
                cells["writes"].append(row.writes[b])
                cells["unique_bytes"].append(row.unique_bytes[b])
        section["cells"] = cells
    else:
        for row in resolved.rows:
            allocations.append({
                "name": row.name,
                "base": row.base,
                "nbytes": row.nbytes,
                "site": row.site,
                "reads": list(row.reads),
                "writes": list(row.writes),
                "unique_bytes": list(row.unique_bytes),
            })
    return section


def _runtime_section(report: AdvisorReport) -> dict:
    session = report.session
    runtime: dict = {
        "trace_buffers": {
            "dropped_records": sum(
                p.dropped_records for p in session.profiles
            ),
            "spilled_records": sum(
                p.spilled_records for p in session.profiles
            ),
            "corrupt_records": sum(
                p.corrupt_records for p in session.profiles
            ),
        },
    }
    stream_stats = [
        p.stream_stats for p in session.profiles
        if p.stream_stats is not None
    ]
    if stream_stats:
        runtime["streaming_drain"] = {
            "segments_streamed": sum(
                s["segments_streamed"] for s in stream_stats
            ),
            "peak_resident_rows": max(
                s["peak_resident_rows"] for s in stream_stats
            ),
            "rows_kept": sum(
                s["memory_rows"] + s["block_rows"] + s["arith_rows"]
                for s in stream_stats
            ),
        }
    supervisor = getattr(
        getattr(session.runtime, "device", None), "_supervisor", None
    )
    if supervisor is not None and supervisor.events:
        runtime["degradations"] = [
            {"reason": e.reason, "kernel": e.kernel, "message": e.message}
            for e in supervisor.events
        ]
    if report.overhead is not None:
        runtime["wall"] = {
            "baseline_seconds": report.overhead.baseline_wall,
            "instrumented_seconds": report.overhead.instrumented_wall,
        }
    return runtime


def profile_export(report: AdvisorReport, *, time_buckets: int = 64,
                   columnar: bool = False,
                   include_runtime: bool = False) -> dict:
    """Build the schema-governed export document for one report.

    ``time_buckets`` bounds the heat map's display time axis (ignored
    without a heat map); ``columnar`` switches the heat map to the
    sparse parallel-array cell table (compact for many allocations x
    many buckets); ``include_runtime`` adds the run-variant ``runtime``
    section -- see the module docstring for the determinism trade-off.
    """
    session = report.session
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "generator": GENERATOR,
        "program": report.program,
        "arch": {
            "name": report.arch.name,
            "chip": report.arch.chip,
            "l1_size": report.arch.l1_size,
            "l1_line_size": report.arch.l1_line_size,
        },
        "modes": list(report.modes),
        "advice": report.advice(),
        "kernels": [_kernel_entry(p) for p in session.profiles],
        "data_objects": [
            {
                "name": r.name,
                "base": int(r.base),
                "nbytes": int(r.end - r.base),
                "site": r.site,
            }
            for r in session.device_allocations
        ],
        "memcpys": [
            {
                "kind": r.kind.value,
                "device_addr": r.device_addr,
                "nbytes": r.nbytes,
                "site": r.site,
            }
            for r in session.memcpys
        ],
        "metrics": _metrics_section(report),
    }
    if report.heatmap is not None:
        doc["heatmap"] = _heatmap_section(report, time_buckets, columnar)
    if report.jit_cache is not None:
        doc["jit_cache"] = dict(report.jit_cache)
    if include_runtime:
        doc["runtime"] = _runtime_section(report)
    return doc


def export_json(doc: dict, indent: Optional[int] = 2) -> str:
    """Serialize a document canonically (sorted keys, trailing newline).

    Canonical form is what makes "byte-identical" a meaningful contract:
    two equal documents always produce the same bytes.
    """
    return json.dumps(doc, indent=indent, sort_keys=True) + "\n"


# -- NDJSON streamed emission (the service tier's incremental path) ---------

def iter_ndjson(doc: dict) -> Iterator[str]:
    """Stream a document as NDJSON: one record per top-level section.

    Each yielded line is a compact JSON object
    ``{"section": <key>, "value": <doc[key]>}`` (sorted keys, ``\\n``
    terminated), emitted in sorted section order so the stream itself
    is canonical.  Concatenating the lines and feeding them back
    through :func:`assemble_ndjson` reproduces the document exactly --
    ``export_json(assemble_ndjson(iter_ndjson(doc)))`` is byte-equal
    to ``export_json(doc)`` (pinned by ``tests/test_export.py``).
    """
    for key in sorted(doc):
        yield json.dumps(
            {"section": key, "value": doc[key]},
            sort_keys=True, separators=(",", ":"),
        ) + "\n"


def assemble_ndjson(lines: Iterable[str]) -> dict:
    """Reassemble NDJSON section records into the canonical document."""
    doc: dict = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        doc[record["section"]] = record["value"]
    return doc


def profile_export_stream(
    report: AdvisorReport, *, time_buckets: int = 64,
    columnar: bool = False, include_runtime: bool = False,
) -> Iterator[str]:
    """NDJSON emission of :func:`profile_export` (same arguments).

    One record leaves per top-level section, so a service result can
    stream out of the process incrementally instead of waiting for the
    full document to serialize.
    """
    return iter_ndjson(profile_export(
        report, time_buckets=time_buckets, columnar=columnar,
        include_runtime=include_runtime,
    ))
