"""Versioned machine-readable profile export (see docs/profile-format.md)."""

from repro.export.exporter import (
    GENERATOR,
    SCHEMA_VERSION,
    assemble_ndjson,
    export_json,
    iter_ndjson,
    profile_export,
    profile_export_stream,
)
from repro.export.validate import (
    SCHEMA_DIR,
    SchemaError,
    iter_errors,
    load_schema,
    validate,
)

__all__ = [
    "GENERATOR",
    "SCHEMA_VERSION",
    "SCHEMA_DIR",
    "SchemaError",
    "assemble_ndjson",
    "export_json",
    "iter_errors",
    "iter_ndjson",
    "load_schema",
    "profile_export",
    "profile_export_stream",
    "validate",
]
