"""Versioned machine-readable profile export (see docs/profile-format.md)."""

from repro.export.exporter import (
    GENERATOR,
    SCHEMA_VERSION,
    export_json,
    profile_export,
)
from repro.export.validate import (
    SCHEMA_DIR,
    SchemaError,
    iter_errors,
    load_schema,
    validate,
)

__all__ = [
    "GENERATOR",
    "SCHEMA_VERSION",
    "SCHEMA_DIR",
    "SchemaError",
    "export_json",
    "iter_errors",
    "load_schema",
    "profile_export",
    "validate",
]
