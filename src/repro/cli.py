"""Command-line interface (the artifact's ``run.sh``/``showoutput.sh``).

The paper's artifact runs each benchmark in three analysis modes and
dumps text results into ``RD_mode`` (reuse distance), ``MD_mode``
(memory divergence) and ``BD_mode`` (branch divergence) directories;
this CLI reproduces that workflow::

    python -m repro list
    python -m repro profile bfs --arch kepler --modes memory,blocks
    python -m repro bypass syrk --l1 16
    python -m repro ptx hotspot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import (
    render_branch_table,
    render_buffer_accounting,
    render_divergence_distribution,
    render_heatmap,
    render_jit_cache,
    render_reuse_histogram,
    render_stream_stats,
)
from repro.apps import APP_NAMES, TABLE2, build_app
from repro.backend import lower_module_to_ptx
from repro.errors import ReproError
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100, kepler_with_l1
from repro.optim.advisor import CUDAAdvisor
from repro.passes import optimization_pipeline
from repro.reliability import FAILURE_POLICIES

ARCHES = {"kepler": KEPLER_K40C, "pascal": PASCAL_P100}
BACKENDS = ("interpreter", "batched")
MODES = ("memory", "blocks", "arith")


class _UsageError(Exception):
    """A bad invocation; main() prints one friendly line and exits 2."""


def _check_app(name: str) -> str:
    if name not in APP_NAMES:
        known = ", ".join(sorted(APP_NAMES))
        raise _UsageError(f"unknown app {name!r}: pick one of {known}")
    return name


def _parse_modes(spec: str) -> tuple:
    modes = tuple(m.strip() for m in spec.split(",") if m.strip())
    if not modes:
        raise _UsageError("--modes needs at least one of: " + ", ".join(MODES))
    for mode in modes:
        if mode not in MODES:
            raise _UsageError(
                f"unknown analysis mode {mode!r}: expected a comma-separated "
                f"subset of {', '.join(MODES)}"
            )
    return modes


def _add_profiling_args(profile: argparse.ArgumentParser) -> None:
    """The knobs `profile` and `export` share (one advisor underneath)."""
    profile.add_argument("app")
    profile.add_argument("--arch", choices=sorted(ARCHES), default="kepler")
    profile.add_argument(
        "--modes", default="memory,blocks",
        help="comma-separated: memory, blocks, arith",
    )
    profile.add_argument(
        "--no-overhead", action="store_true",
        help="skip the baseline run (faster; no Figure 10 metric)",
    )
    profile.add_argument(
        "--backend", default=None,
        help="execution backend: interpreter or batched",
    )
    profile.add_argument(
        "--workers", type=int, default=None,
        help="shard eligible launches across N forked workers",
    )
    profile.add_argument(
        "--failure-policy", default=None, choices=FAILURE_POLICIES,
        help="how launches react when they cannot run as requested "
        "(default: degrade; see docs/reliability.md)",
    )
    profile.add_argument(
        "--sample-rate", type=int, default=1,
        help="keep every Nth trace record (drain-time stride sampling)",
    )
    profile.add_argument(
        "--buffer-capacity", type=int, default=None,
        help="cap per-launch trace records (oldest kept, rest dropped)",
    )
    profile.add_argument(
        "--spill-dir", default=None,
        help="spill full trace-buffer segments to this directory "
        "instead of growing in memory",
    )
    profile.add_argument(
        "--spill-rows", type=int, default=None,
        help="rows per spill segment (needs --spill-dir; default 65536)",
    )
    profile.add_argument(
        "--streaming-drain", action="store_true",
        help="drain traces through streaming analyzer aggregates "
        "(O(segment) peak memory; raw records are not retained)",
    )
    profile.add_argument(
        "--heatmap-cell-rows", type=int, default=None,
        help="kept memory accesses per CTA per heat-map time cell "
        "(default 256; finer cells = finer time resolution)",
    )
    profile.add_argument(
        "--time-buckets", type=int, default=64,
        help="max display time buckets of the rendered/exported heat map",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CUDAAdvisor reproduction: profile GPU kernels on a "
        "simulated NVIDIA GPU and derive optimization guidance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 2 benchmark suite")

    profile = sub.add_parser("profile", help="run CUDAAdvisor on an app")
    _add_profiling_args(profile)
    profile.add_argument(
        "--json", action="store_true",
        help="emit the legacy report summary as JSON (report.to_dict(); "
        "for the stable schema-governed document use --format json)",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: rendered text (default) or the versioned "
        "profile-export document (docs/profile-format.md)",
    )
    profile.add_argument(
        "--heatmap", action="store_true",
        help="collect and render the per-allocation x time memory heat "
        "map (needs the 'memory' mode; see docs/heatmaps.md)",
    )
    profile.add_argument(
        "--verbose", action="store_true",
        help="print execution internals (JIT trace-cache counters, "
        "streaming-drain statistics)",
    )

    export = sub.add_parser(
        "export",
        help="profile an app and write the versioned machine-readable "
        "profile document (docs/profile-format.md)",
    )
    _add_profiling_args(export)
    export.add_argument(
        "-o", "--output", default=None,
        help="output path ('-' or omitted: stdout)",
    )
    export.add_argument(
        "--columnar", action="store_true",
        help="emit the heat map as a sparse parallel-array cell table "
        "instead of per-allocation series (compact for large maps)",
    )
    export.add_argument(
        "--include-runtime", action="store_true",
        help="add the run-variant 'runtime' section (wall clock, drain "
        "stats, degradations); costs run-to-run byte-identity",
    )

    bypass = sub.add_parser(
        "bypass", help="evaluate Eq.(1) horizontal bypassing vs the oracle"
    )
    bypass.add_argument("app")
    bypass.add_argument("--l1", type=int, default=16, choices=(16, 32, 48),
                        help="Kepler L1 size in KB")

    ptx = sub.add_parser("ptx", help="dump the PTX for an app's kernels")
    ptx.add_argument("app")
    ptx.add_argument("--cc", default="3.5", help="compute capability")

    instr = sub.add_parser(
        "instrument",
        help="dump an app's instrumented IR (the opt-pass view)",
    )
    instr.add_argument("app")
    instr.add_argument("--modes", default="memory",
                       help="comma-separated: memory, blocks, arith")
    instr.add_argument("--no-optimize", action="store_true",
                       help="instrument the -O0 bitcode")

    return parser


def _cmd_list() -> int:
    print(f"{'name':<10} {'warps/CTA':>9}  {'paper input':<28} "
          f"{'our input':<34} source")
    for info in TABLE2:
        print(f"{info.name:<10} {info.warps_per_cta:>9}  "
              f"{info.paper_input:<28} {info.our_input:<34} {info.source}")
    return 0


def _advisor_from_args(args, modes, heatmap: bool) -> CUDAAdvisor:
    """Validate the shared profiling knobs and build the advisor."""
    if args.backend is not None and args.backend not in BACKENDS:
        raise _UsageError(
            f"unknown backend {args.backend!r}: expected one of "
            f"{', '.join(BACKENDS)}"
        )
    if args.workers is not None and args.workers < 1:
        raise _UsageError("--workers must be >= 1")
    if args.sample_rate < 1:
        raise _UsageError("--sample-rate must be >= 1")
    if args.spill_rows is not None and args.spill_dir is None:
        raise _UsageError("--spill-rows needs --spill-dir")
    if args.spill_rows is not None and args.spill_rows < 1:
        raise _UsageError("--spill-rows must be >= 1")
    if args.heatmap_cell_rows is not None and args.heatmap_cell_rows < 1:
        raise _UsageError("--heatmap-cell-rows must be >= 1")
    if args.time_buckets < 1:
        raise _UsageError("--time-buckets must be >= 1")
    if heatmap and "memory" not in modes:
        raise _UsageError(
            "the heat map is built from memory instrumentation: "
            "include 'memory' in --modes"
        )
    kwargs = {}
    if args.heatmap_cell_rows is not None:
        kwargs["heatmap_cell_rows"] = args.heatmap_cell_rows
    return CUDAAdvisor(
        arch=ARCHES[args.arch],
        modes=modes,
        measure_overhead=not args.no_overhead,
        buffer_capacity=args.buffer_capacity,
        sample_rate=args.sample_rate,
        backend=args.backend,
        parallel_workers=args.workers,
        failure_policy=args.failure_policy,
        spill_dir=args.spill_dir,
        spill_rows=args.spill_rows or 65536,
        streaming_drain=args.streaming_drain,
        heatmap=heatmap,
        **kwargs,
    )


def _cmd_profile(args) -> int:
    modes = _parse_modes(args.modes)
    advisor = _advisor_from_args(args, modes, heatmap=args.heatmap)
    report = advisor.profile(build_app(_check_app(args.app)))

    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.format == "json":
        from repro.export import export_json, profile_export

        sys.stdout.write(export_json(
            profile_export(report, time_buckets=args.time_buckets)
        ))
        return 0

    if report.reuse_element is not None:
        print("### RD_mode (reuse distance)")
        print(render_reuse_histogram(args.app, report.reuse_element))
        print()
    if report.memory_divergence is not None:
        print("### MD_mode (memory divergence)")
        print(render_divergence_distribution(
            args.app, report.memory_divergence
        ))
        print()
    if report.branch_divergence is not None:
        print("### BD_mode (branch divergence)")
        print(render_branch_table({args.app: report.branch_divergence}))
        print()
    if report.heatmap is not None:
        print("### memory heat map")
        print(render_heatmap(
            args.app, report.resolved_heatmap(args.time_buckets)
        ))
        print()
    if report.overhead is not None:
        print("### overhead")
        print(report.overhead.render())
        print()
    profiles = report.session.profiles
    if any(p.dropped_records or p.spilled_records for p in profiles):
        print("### trace buffers")
        print(render_buffer_accounting(args.app, profiles))
        print()
    if args.verbose:
        # Both sections always render under --verbose -- empty ones as
        # explicit placeholders -- so the text view and the export
        # document agree on what was (and wasn't) collected.
        print("### jit trace cache")
        print(render_jit_cache(args.app, report.jit_cache))
        print()
        print("### streaming drain")
        print(render_stream_stats(args.app, profiles))
        print()
    if len(report.session.profiles) > 1:
        from repro.analysis.statistics import (
            aggregate_instances,
            metric_memory_events,
        )

        print("### per-call-path statistics (offline analyzer)")
        for stats in aggregate_instances(
            report.session.profiles, metric_memory_events
        ):
            print(f"  {stats.render()}")
        print()
    print("### advice")
    for tip in report.advice():
        print(f"  * {tip}")
    return 0


def _cmd_export(args) -> int:
    from repro.export import SCHEMA_VERSION, export_json, profile_export
    from repro.export import validate

    modes = _parse_modes(args.modes)
    advisor = _advisor_from_args(args, modes, heatmap="memory" in modes)
    report = advisor.profile(build_app(_check_app(args.app)))
    doc = profile_export(
        report,
        time_buckets=args.time_buckets,
        columnar=args.columnar,
        include_runtime=args.include_runtime,
    )
    # The bundled schema is the emitter's own contract: a document that
    # fails it is a bug, caught here rather than by a consumer.
    validate(doc)
    text = export_json(doc)
    if args.output in (None, "-"):
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(
            f"wrote {args.output}: schema {SCHEMA_VERSION}, "
            f"{len(text)} bytes",
            file=sys.stderr,
        )
    return 0


def _cmd_bypass(args) -> int:
    arch = kepler_with_l1(args.l1)
    advisor = CUDAAdvisor(arch=arch, modes=("memory",),
                          measure_overhead=False)
    app = build_app(_check_app(args.app))
    report = advisor.profile(app)
    prediction = report.bypass_prediction
    print(f"Eq.(1): raw = {prediction.raw_value:.4f} -> allow "
          f"{prediction.optimal_warps}/{prediction.warps_per_cta} warps "
          f"in L1")
    search, prediction = advisor.evaluate_bypass(app, prediction)
    for k in sorted(search.cycles_by_warps):
        marks = []
        if k == search.best_warps:
            marks.append("oracle")
        if k == prediction.optimal_warps:
            marks.append("predicted")
        suffix = f"   <- {', '.join(marks)}" if marks else ""
        print(f"  k={k:<2} norm time = {search.normalized(k):.3f}{suffix}")
    return 0


def _cmd_ptx(args) -> int:
    app = build_app(_check_app(args.app))
    module = compile_kernels(list(app.kernels), args.app)
    optimization_pipeline().run(module)
    print(lower_module_to_ptx(module, args.cc))
    return 0


def _cmd_instrument(args) -> int:
    from repro.ir import print_module
    from repro.passes import instrumentation_pipeline

    app = build_app(_check_app(args.app))
    module = compile_kernels(list(app.kernels), args.app)
    if not args.no_optimize:
        optimization_pipeline().run(module)
    modes = _parse_modes(args.modes)
    instrumentation_pipeline(modes).run(module)
    print(print_module(module))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    commands = {
        "list": lambda: _cmd_list(),
        "profile": lambda: _cmd_profile(args),
        "export": lambda: _cmd_export(args),
        "bypass": lambda: _cmd_bypass(args),
        "ptx": lambda: _cmd_ptx(args),
        "instrument": lambda: _cmd_instrument(args),
    }
    try:
        return commands[args.command]()
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        # Tool-level failures (bad launch, corrupt trace under strict,
        # failed validation) come out as one friendly line, never a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
