"""Command-line interface (the artifact's ``run.sh``/``showoutput.sh``).

The paper's artifact runs each benchmark in three analysis modes and
dumps text results into ``RD_mode`` (reuse distance), ``MD_mode``
(memory divergence) and ``BD_mode`` (branch divergence) directories;
this CLI reproduces that workflow::

    python -m repro list
    python -m repro profile bfs --arch kepler --modes memory,blocks
    python -m repro bypass syrk --l1 16
    python -m repro ptx hotspot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import (
    render_branch_table,
    render_divergence_distribution,
    render_reuse_histogram,
)
from repro.apps import APP_NAMES, TABLE2, build_app
from repro.backend import lower_module_to_ptx
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100, kepler_with_l1
from repro.optim.advisor import CUDAAdvisor
from repro.passes import optimization_pipeline

ARCHES = {"kepler": KEPLER_K40C, "pascal": PASCAL_P100}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CUDAAdvisor reproduction: profile GPU kernels on a "
        "simulated NVIDIA GPU and derive optimization guidance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 2 benchmark suite")

    profile = sub.add_parser("profile", help="run CUDAAdvisor on an app")
    profile.add_argument("app", choices=APP_NAMES)
    profile.add_argument("--arch", choices=sorted(ARCHES), default="kepler")
    profile.add_argument(
        "--modes", default="memory,blocks",
        help="comma-separated: memory, blocks, arith",
    )
    profile.add_argument(
        "--no-overhead", action="store_true",
        help="skip the baseline run (faster; no Figure 10 metric)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of text",
    )

    bypass = sub.add_parser(
        "bypass", help="evaluate Eq.(1) horizontal bypassing vs the oracle"
    )
    bypass.add_argument("app", choices=APP_NAMES)
    bypass.add_argument("--l1", type=int, default=16, choices=(16, 32, 48),
                        help="Kepler L1 size in KB")

    ptx = sub.add_parser("ptx", help="dump the PTX for an app's kernels")
    ptx.add_argument("app", choices=APP_NAMES)
    ptx.add_argument("--cc", default="3.5", help="compute capability")

    instr = sub.add_parser(
        "instrument",
        help="dump an app's instrumented IR (the opt-pass view)",
    )
    instr.add_argument("app", choices=APP_NAMES)
    instr.add_argument("--modes", default="memory",
                       help="comma-separated: memory, blocks, arith")
    instr.add_argument("--no-optimize", action="store_true",
                       help="instrument the -O0 bitcode")

    return parser


def _cmd_list() -> int:
    print(f"{'name':<10} {'warps/CTA':>9}  {'paper input':<28} "
          f"{'our input':<34} source")
    for info in TABLE2:
        print(f"{info.name:<10} {info.warps_per_cta:>9}  "
              f"{info.paper_input:<28} {info.our_input:<34} {info.source}")
    return 0


def _cmd_profile(args) -> int:
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    advisor = CUDAAdvisor(
        arch=ARCHES[args.arch],
        modes=modes,
        measure_overhead=not args.no_overhead,
    )
    report = advisor.profile(build_app(args.app))

    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0

    if report.reuse_element is not None:
        print("### RD_mode (reuse distance)")
        print(render_reuse_histogram(args.app, report.reuse_element))
        print()
    if report.memory_divergence is not None:
        print("### MD_mode (memory divergence)")
        print(render_divergence_distribution(
            args.app, report.memory_divergence
        ))
        print()
    if report.branch_divergence is not None:
        print("### BD_mode (branch divergence)")
        print(render_branch_table({args.app: report.branch_divergence}))
        print()
    if report.overhead is not None:
        print("### overhead")
        print(report.overhead.render())
        print()
    if len(report.session.profiles) > 1:
        from repro.analysis.statistics import (
            aggregate_instances,
            metric_memory_events,
        )

        print("### per-call-path statistics (offline analyzer)")
        for stats in aggregate_instances(
            report.session.profiles, metric_memory_events
        ):
            print(f"  {stats.render()}")
        print()
    print("### advice")
    for tip in report.advice():
        print(f"  * {tip}")
    return 0


def _cmd_bypass(args) -> int:
    arch = kepler_with_l1(args.l1)
    advisor = CUDAAdvisor(arch=arch, modes=("memory",),
                          measure_overhead=False)
    app = build_app(args.app)
    report = advisor.profile(app)
    prediction = report.bypass_prediction
    print(f"Eq.(1): raw = {prediction.raw_value:.4f} -> allow "
          f"{prediction.optimal_warps}/{prediction.warps_per_cta} warps "
          f"in L1")
    search, prediction = advisor.evaluate_bypass(app, prediction)
    for k in sorted(search.cycles_by_warps):
        marks = []
        if k == search.best_warps:
            marks.append("oracle")
        if k == prediction.optimal_warps:
            marks.append("predicted")
        suffix = f"   <- {', '.join(marks)}" if marks else ""
        print(f"  k={k:<2} norm time = {search.normalized(k):.3f}{suffix}")
    return 0


def _cmd_ptx(args) -> int:
    app = build_app(args.app)
    module = compile_kernels(list(app.kernels), args.app)
    optimization_pipeline().run(module)
    print(lower_module_to_ptx(module, args.cc))
    return 0


def _cmd_instrument(args) -> int:
    from repro.ir import print_module
    from repro.passes import instrumentation_pipeline

    app = build_app(args.app)
    module = compile_kernels(list(app.kernels), args.app)
    if not args.no_optimize:
        optimization_pipeline().run(module)
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    instrumentation_pipeline(modes).run(module)
    print(print_module(module))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bypass":
        return _cmd_bypass(args)
    if args.command == "ptx":
        return _cmd_ptx(args)
    if args.command == "instrument":
        return _cmd_instrument(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
