"""Command-line interface (the artifact's ``run.sh``/``showoutput.sh``).

The paper's artifact runs each benchmark in three analysis modes and
dumps text results into ``RD_mode`` (reuse distance), ``MD_mode``
(memory divergence) and ``BD_mode`` (branch divergence) directories;
this CLI reproduces that workflow::

    python -m repro list
    python -m repro profile bfs --arch kepler --modes memory,blocks
    python -m repro bypass syrk --l1 16
    python -m repro ptx hotspot

Beyond the artifact: ``repro serve`` drives the profiling service (a
persistent worker pool + content-addressed result cache; see
docs/service.md), and ``--cache-dir`` memoizes ``profile --format
json``/``export`` results across invocations.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
from typing import List, Optional

from repro.analysis.report import (
    render_branch_table,
    render_buffer_accounting,
    render_divergence_distribution,
    render_heatmap,
    render_jit_cache,
    render_reuse_histogram,
    render_stream_stats,
)
from repro.apps import APP_NAMES, TABLE2, build_app
from repro.backend import lower_module_to_ptx
from repro.errors import ReproError
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100, kepler_with_l1
from repro.optim.advisor import CUDAAdvisor
from repro.passes import optimization_pipeline
from repro.reliability import FAILURE_POLICIES

ARCHES = {"kepler": KEPLER_K40C, "pascal": PASCAL_P100}
BACKENDS = ("interpreter", "batched")
MODES = ("memory", "blocks", "arith")


class _UsageError(Exception):
    """A bad invocation; main() prints one friendly line and exits 2."""


def _check_app(name: str) -> str:
    if name not in APP_NAMES:
        known = ", ".join(sorted(APP_NAMES))
        raise _UsageError(f"unknown app {name!r}: pick one of {known}")
    return name


def _parse_modes(spec: str) -> tuple:
    modes = tuple(m.strip() for m in spec.split(",") if m.strip())
    if not modes:
        raise _UsageError("--modes needs at least one of: " + ", ".join(MODES))
    for mode in modes:
        if mode not in MODES:
            raise _UsageError(
                f"unknown analysis mode {mode!r}: expected a comma-separated "
                f"subset of {', '.join(MODES)}"
            )
    return modes


def _add_profiling_args(profile: argparse.ArgumentParser) -> None:
    """The knobs `profile` and `export` share (one advisor underneath)."""
    profile.add_argument("app")
    profile.add_argument("--arch", choices=sorted(ARCHES), default="kepler")
    profile.add_argument(
        "--modes", default="memory,blocks",
        help="comma-separated: memory, blocks, arith",
    )
    profile.add_argument(
        "--no-overhead", action="store_true",
        help="skip the baseline run (faster; no Figure 10 metric)",
    )
    profile.add_argument(
        "--backend", default=None,
        help="execution backend: interpreter or batched",
    )
    profile.add_argument(
        "--workers", type=int, default=None,
        help="shard eligible launches across N forked workers",
    )
    profile.add_argument(
        "--failure-policy", default=None, choices=FAILURE_POLICIES,
        help="how launches react when they cannot run as requested "
        "(default: degrade; see docs/reliability.md)",
    )
    profile.add_argument(
        "--sample-rate", type=int, default=1,
        help="keep every Nth trace record (drain-time stride sampling)",
    )
    profile.add_argument(
        "--buffer-capacity", type=int, default=None,
        help="cap per-launch trace records (oldest kept, rest dropped)",
    )
    profile.add_argument(
        "--spill-dir", default=None,
        help="spill full trace-buffer segments to this directory "
        "instead of growing in memory",
    )
    profile.add_argument(
        "--spill-rows", type=int, default=None,
        help="rows per spill segment (needs --spill-dir; default 65536)",
    )
    profile.add_argument(
        "--streaming-drain", action="store_true",
        help="drain traces through streaming analyzer aggregates "
        "(O(segment) peak memory; raw records are not retained)",
    )
    profile.add_argument(
        "--fused", action="store_true",
        help="fused in-flight analysis: rows stream into the analyzer "
        "aggregates during execution (no spill I/O, no drain pass; "
        "byte-identical results, raw records are not retained)",
    )
    profile.add_argument(
        "--drain-workers", type=int, default=None,
        help="fork-parallel width of the kernel-exit segment drain for "
        "spilled --streaming-drain runs (serial when sampling or a "
        "capacity cap requires global stream order)",
    )
    profile.add_argument(
        "--heatmap-cell-rows", type=int, default=None,
        help="kept memory accesses per CTA per heat-map time cell "
        "(default 256; finer cells = finer time resolution)",
    )
    profile.add_argument(
        "--time-buckets", type=int, default=64,
        help="max display time buckets of the rendered/exported heat map",
    )
    profile.add_argument(
        "--cache-dir", default=None,
        help="memoize the export document in this content-addressed "
        "result cache; a repeated invocation with identical knobs "
        "serves the cached bytes without re-simulating "
        "(profile: needs --format json; see docs/service.md)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CUDAAdvisor reproduction: profile GPU kernels on a "
        "simulated NVIDIA GPU and derive optimization guidance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 2 benchmark suite")

    profile = sub.add_parser("profile", help="run CUDAAdvisor on an app")
    _add_profiling_args(profile)
    profile.add_argument(
        "--json", action="store_true",
        help="emit the legacy report summary as JSON (report.to_dict(); "
        "for the stable schema-governed document use --format json)",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: rendered text (default) or the versioned "
        "profile-export document (docs/profile-format.md)",
    )
    profile.add_argument(
        "--heatmap", action="store_true",
        help="collect and render the per-allocation x time memory heat "
        "map (needs the 'memory' mode; see docs/heatmaps.md)",
    )
    profile.add_argument(
        "--verbose", action="store_true",
        help="print execution internals (JIT trace-cache counters, "
        "streaming-drain statistics)",
    )

    export = sub.add_parser(
        "export",
        help="profile an app and write the versioned machine-readable "
        "profile document (docs/profile-format.md)",
    )
    _add_profiling_args(export)
    export.add_argument(
        "-o", "--output", default=None,
        help="output path ('-' or omitted: stdout)",
    )
    export.add_argument(
        "--columnar", action="store_true",
        help="emit the heat map as a sparse parallel-array cell table "
        "instead of per-allocation series (compact for large maps)",
    )
    export.add_argument(
        "--include-runtime", action="store_true",
        help="add the run-variant 'runtime' section (wall clock, drain "
        "stats, degradations); costs run-to-run byte-identity",
    )
    export.add_argument(
        "--ndjson", action="store_true",
        help="emit NDJSON: one record per top-level section, streamed "
        "as produced; the records reassemble into the canonical "
        "document (docs/profile-format.md)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a profiling-service session: schedule the given apps "
        "as jobs on a persistent worker pool with a crash-safe result "
        "cache (docs/service.md)",
    )
    serve.add_argument("apps", nargs="+",
                       help="apps to profile (repeats allowed; repeats "
                       "hit the cache or coalesce)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent pool workers (0: serial in-process)")
    serve.add_argument("--cache-dir", default=None,
                       help="content-addressed result cache directory")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="result-cache size budget: least-recently-"
                       "used entries are evicted once the on-disk "
                       "payloads exceed this many bytes")
    serve.add_argument("--repeat", type=int, default=1,
                       help="submit the whole app list N times")
    serve.add_argument("--job-timeout", type=float, default=30.0,
                       help="reap a worker that misses heartbeats for "
                       "this many seconds (default 30)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="pool attempts per job before the serial "
                       "fallback (default 3)")
    serve.add_argument("--failure-policy", default="degrade",
                       choices=FAILURE_POLICIES,
                       help="job-scope failure ladder (docs/service.md)")
    serve.add_argument("--arch", choices=sorted(ARCHES), default="kepler")
    serve.add_argument("--modes", default="memory,blocks",
                       help="comma-separated: memory, blocks, arith")
    serve.add_argument("--sample-rate", type=int, default=1)
    serve.add_argument("--no-overhead", action="store_true",
                       help="skip the baseline run inside each job")
    serve.add_argument("-o", "--output-dir", default=None,
                       help="also write each job's export document here "
                       "(atomic, one file per job)")

    bypass = sub.add_parser(
        "bypass", help="evaluate Eq.(1) horizontal bypassing vs the oracle"
    )
    bypass.add_argument("app")
    bypass.add_argument("--l1", type=int, default=16, choices=(16, 32, 48),
                        help="Kepler L1 size in KB")

    ptx = sub.add_parser("ptx", help="dump the PTX for an app's kernels")
    ptx.add_argument("app")
    ptx.add_argument("--cc", default="3.5", help="compute capability")

    instr = sub.add_parser(
        "instrument",
        help="dump an app's instrumented IR (the opt-pass view)",
    )
    instr.add_argument("app")
    instr.add_argument("--modes", default="memory",
                       help="comma-separated: memory, blocks, arith")
    instr.add_argument("--no-optimize", action="store_true",
                       help="instrument the -O0 bitcode")

    return parser


def _cmd_list() -> int:
    print(f"{'name':<10} {'warps/CTA':>9}  {'paper input':<28} "
          f"{'our input':<34} source")
    for info in TABLE2:
        print(f"{info.name:<10} {info.warps_per_cta:>9}  "
              f"{info.paper_input:<28} {info.our_input:<34} {info.source}")
    return 0


def _advisor_from_args(args, modes, heatmap: bool) -> CUDAAdvisor:
    """Validate the shared profiling knobs and build the advisor."""
    if args.backend is not None and args.backend not in BACKENDS:
        raise _UsageError(
            f"unknown backend {args.backend!r}: expected one of "
            f"{', '.join(BACKENDS)}"
        )
    if args.workers is not None and args.workers < 1:
        raise _UsageError("--workers must be >= 1")
    if args.sample_rate < 1:
        raise _UsageError("--sample-rate must be >= 1")
    if args.streaming_drain and args.fused:
        raise _UsageError(
            "--fused and --streaming-drain are mutually exclusive: the "
            "fused path already streams rows through the analyzers"
        )
    if args.drain_workers is not None and args.drain_workers < 1:
        raise _UsageError("--drain-workers must be >= 1")
    if args.spill_rows is not None and args.spill_dir is None:
        raise _UsageError("--spill-rows needs --spill-dir")
    if args.spill_rows is not None and args.spill_rows < 1:
        raise _UsageError("--spill-rows must be >= 1")
    if args.heatmap_cell_rows is not None and args.heatmap_cell_rows < 1:
        raise _UsageError("--heatmap-cell-rows must be >= 1")
    if args.time_buckets < 1:
        raise _UsageError("--time-buckets must be >= 1")
    if heatmap and "memory" not in modes:
        raise _UsageError(
            "the heat map is built from memory instrumentation: "
            "include 'memory' in --modes"
        )
    kwargs = {}
    if args.heatmap_cell_rows is not None:
        kwargs["heatmap_cell_rows"] = args.heatmap_cell_rows
    return CUDAAdvisor(
        arch=ARCHES[args.arch],
        modes=modes,
        measure_overhead=not args.no_overhead,
        buffer_capacity=args.buffer_capacity,
        sample_rate=args.sample_rate,
        backend=args.backend,
        parallel_workers=args.workers,
        failure_policy=args.failure_policy,
        spill_dir=args.spill_dir,
        spill_rows=args.spill_rows or 65536,
        streaming_drain=args.streaming_drain,
        fused_drain=args.fused,
        drain_workers=args.drain_workers,
        heatmap=heatmap,
        **kwargs,
    )


def _submit_config(args, modes, heatmap) -> dict:
    """submit() config equivalent to this invocation's advisor knobs."""
    config = {
        "arch": args.arch,
        "modes": modes,
        "sample_rate": args.sample_rate,
        "buffer_capacity": args.buffer_capacity,
        "measure_overhead": not args.no_overhead,
        "heatmap": heatmap,
        "time_buckets": args.time_buckets,
        "columnar": getattr(args, "columnar", False),
    }
    if args.heatmap_cell_rows is not None:
        config["heatmap_cell_rows"] = args.heatmap_cell_rows
    for hint, value in (
        ("backend", args.backend),
        ("parallel_workers", args.workers),
        ("failure_policy", args.failure_policy),
        ("spill_dir", args.spill_dir),
        ("spill_rows", args.spill_rows),
        ("streaming_drain", args.streaming_drain or None),
        ("fused_drain", args.fused or None),
        ("drain_workers", args.drain_workers),
    ):
        if value is not None:
            config[hint] = value
    return config


def _cached_export_payload(args, modes, heatmap) -> str:
    """Serve (or simulate-and-fill) the export document via the cache."""
    from repro.service import ProfilingService

    with ProfilingService(workers=0, cache_dir=args.cache_dir) as svc:
        handle = svc.submit(
            _check_app(args.app), _submit_config(args, modes, heatmap)
        )
        result = handle.result()
        print(
            f"cache {result.source}: key {handle.key[:12]} "
            f"under {args.cache_dir}",
            file=sys.stderr,
        )
        return result.payload


def _cmd_profile(args) -> int:
    modes = _parse_modes(args.modes)
    advisor = _advisor_from_args(args, modes, heatmap=args.heatmap)
    if args.cache_dir is not None:
        if args.format != "json" or args.json:
            raise _UsageError(
                "--cache-dir memoizes the export document: combine it "
                "with --format json (text rendering needs a live report)"
            )
        sys.stdout.write(_cached_export_payload(args, modes, args.heatmap))
        return 0
    report = advisor.profile(build_app(_check_app(args.app)))

    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.format == "json":
        from repro.export import export_json, profile_export

        sys.stdout.write(export_json(
            profile_export(report, time_buckets=args.time_buckets)
        ))
        return 0

    if report.reuse_element is not None:
        print("### RD_mode (reuse distance)")
        print(render_reuse_histogram(args.app, report.reuse_element))
        print()
    if report.memory_divergence is not None:
        print("### MD_mode (memory divergence)")
        print(render_divergence_distribution(
            args.app, report.memory_divergence
        ))
        print()
    if report.branch_divergence is not None:
        print("### BD_mode (branch divergence)")
        print(render_branch_table({args.app: report.branch_divergence}))
        print()
    if report.heatmap is not None:
        print("### memory heat map")
        print(render_heatmap(
            args.app, report.resolved_heatmap(args.time_buckets)
        ))
        print()
    if report.overhead is not None:
        print("### overhead")
        print(report.overhead.render())
        print()
    profiles = report.session.profiles
    if any(p.dropped_records or p.spilled_records for p in profiles):
        print("### trace buffers")
        print(render_buffer_accounting(args.app, profiles))
        print()
    if args.verbose:
        # Both sections always render under --verbose -- empty ones as
        # explicit placeholders -- so the text view and the export
        # document agree on what was (and wasn't) collected.
        print("### jit trace cache")
        print(render_jit_cache(args.app, report.jit_cache))
        print()
        print("### streaming drain")
        print(render_stream_stats(args.app, profiles))
        print()
    if len(report.session.profiles) > 1:
        from repro.analysis.statistics import (
            aggregate_instances,
            metric_memory_events,
        )

        print("### per-call-path statistics (offline analyzer)")
        for stats in aggregate_instances(
            report.session.profiles, metric_memory_events
        ):
            print(f"  {stats.render()}")
        print()
    print("### advice")
    for tip in report.advice():
        print(f"  * {tip}")
    return 0


def _cmd_export(args) -> int:
    import json as json_mod

    from repro.export import (
        SCHEMA_VERSION,
        export_json,
        iter_ndjson,
        profile_export,
        validate,
    )

    modes = _parse_modes(args.modes)
    advisor = _advisor_from_args(args, modes, heatmap="memory" in modes)
    if args.cache_dir is not None and args.include_runtime:
        raise _UsageError(
            "--include-runtime adds run-variant data and cannot be "
            "served from the cache: drop one of the two flags"
        )
    if args.cache_dir is not None:
        doc = json_mod.loads(
            _cached_export_payload(args, modes, "memory" in modes)
        )
    else:
        report = advisor.profile(build_app(_check_app(args.app)))
        doc = profile_export(
            report,
            time_buckets=args.time_buckets,
            columnar=args.columnar,
            include_runtime=args.include_runtime,
        )
        # The bundled schema is the emitter's own contract: a document
        # that fails it is a bug, caught here rather than by a consumer.
        validate(doc)
    text = (
        "".join(iter_ndjson(doc)) if args.ndjson else export_json(doc)
    )
    if args.output in (None, "-"):
        sys.stdout.write(text)
    else:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.output, text)
        print(
            f"wrote {args.output}: schema {SCHEMA_VERSION}, "
            f"{len(text)} bytes",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    """A scripted profiling-service session over the given apps."""
    import os

    from repro.ioutil import atomic_write_text
    from repro.service import ProfilingService

    modes = _parse_modes(args.modes)
    if args.workers < 0:
        raise _UsageError("--workers must be >= 0")
    if args.repeat < 1:
        raise _UsageError("--repeat must be >= 1")
    apps = [_check_app(app) for app in args.apps]
    config = {
        "arch": args.arch,
        "modes": modes,
        "sample_rate": args.sample_rate,
        "measure_overhead": not args.no_overhead,
    }
    if args.cache_max_bytes is not None and args.cache_max_bytes < 1:
        raise _UsageError("--cache-max-bytes must be >= 1")
    with ProfilingService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        job_timeout=args.job_timeout,
        max_attempts=args.max_attempts,
        failure_policy=args.failure_policy,
    ) as svc:
        handles = [
            svc.submit(app, dict(config))
            for _ in range(args.repeat)
            for app in apps
        ]
        failures = 0
        for handle in handles:
            for event in svc.stream(handle):
                detail = " ".join(
                    f"{k}={v}" for k, v in sorted(event.detail.items())
                )
                print(f"{handle.id:>8} {handle.spec.app:<10} "
                      f"{event.state:<18} {detail}")
            if handle.state == "failed":
                failures += 1
                print(f"{handle.id:>8} {handle.spec.app:<10} "
                      f"error: {handle.error}", file=sys.stderr)
            elif args.output_dir is not None:
                result = handle.result()
                os.makedirs(args.output_dir, exist_ok=True)
                path = os.path.join(
                    args.output_dir,
                    f"{handle.spec.app}-{handle.key[:12]}.json",
                )
                atomic_write_text(path, result.payload)
        print("counters: " + " ".join(
            f"{k}={v}" for k, v in sorted(svc.counters.items()) if v
        ))
        if svc.cache is not None:
            print("cache: " + " ".join(
                f"{k}={v}" for k, v in sorted(svc.cache.stats.items())
            ))
    return 1 if failures else 0


def _cmd_bypass(args) -> int:
    arch = kepler_with_l1(args.l1)
    advisor = CUDAAdvisor(arch=arch, modes=("memory",),
                          measure_overhead=False)
    app = build_app(_check_app(args.app))
    report = advisor.profile(app)
    prediction = report.bypass_prediction
    print(f"Eq.(1): raw = {prediction.raw_value:.4f} -> allow "
          f"{prediction.optimal_warps}/{prediction.warps_per_cta} warps "
          f"in L1")
    search, prediction = advisor.evaluate_bypass(app, prediction)
    for k in sorted(search.cycles_by_warps):
        marks = []
        if k == search.best_warps:
            marks.append("oracle")
        if k == prediction.optimal_warps:
            marks.append("predicted")
        suffix = f"   <- {', '.join(marks)}" if marks else ""
        print(f"  k={k:<2} norm time = {search.normalized(k):.3f}{suffix}")
    return 0


def _cmd_ptx(args) -> int:
    app = build_app(_check_app(args.app))
    module = compile_kernels(list(app.kernels), args.app)
    optimization_pipeline().run(module)
    print(lower_module_to_ptx(module, args.cc))
    return 0


def _cmd_instrument(args) -> int:
    from repro.ir import print_module
    from repro.passes import instrumentation_pipeline

    app = build_app(_check_app(args.app))
    module = compile_kernels(list(app.kernels), args.app)
    if not args.no_optimize:
        optimization_pipeline().run(module)
    modes = _parse_modes(args.modes)
    instrumentation_pipeline(modes).run(module)
    print(print_module(module))
    return 0


def _reap_workers() -> int:
    """Kill and join any live child processes (pool or shard workers)."""
    children = multiprocessing.active_children()
    for proc in children:
        proc.kill()
    for proc in children:
        proc.join(timeout=1.0)
    return len(children)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    commands = {
        "list": lambda: _cmd_list(),
        "profile": lambda: _cmd_profile(args),
        "export": lambda: _cmd_export(args),
        "serve": lambda: _cmd_serve(args),
        "bypass": lambda: _cmd_bypass(args),
        "ptx": lambda: _cmd_ptx(args),
        "instrument": lambda: _cmd_instrument(args),
    }
    try:
        return commands[args.command]()
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # ^C must not dump a traceback or orphan forked workers: reap
        # them and exit with the conventional 128+SIGINT status.
        reaped = _reap_workers()
        suffix = f" (reaped {reaped} worker processes)" if reaped else ""
        print(f"interrupted{suffix}", file=sys.stderr)
        return 130
    except ReproError as exc:
        # Tool-level failures (bad launch, corrupt trace under strict,
        # failed validation) come out as one friendly line, never a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
