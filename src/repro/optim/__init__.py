"""Optimization guidance (case studies D and E of the paper).

* :mod:`repro.optim.bypass_model` -- the Eq.(1) optimal-warp predictor
  built from CUDAAdvisor's reuse-distance and memory-divergence outputs;
* :mod:`repro.optim.oracle`       -- the exhaustive horizontal-bypass
  search of Li et al. [31] the paper compares against;
* :mod:`repro.optim.advisor`      -- the top-level ``CUDAAdvisor``
  facade: compile, instrument, profile, analyze, advise.
"""

from repro.optim.bypass_model import BypassPrediction, predict_optimal_warps
from repro.optim.oracle import BypassSearchResult, oracle_bypass_search
from repro.optim.advisor import AdvisorReport, CUDAAdvisor, GPUProgram

__all__ = [
    "AdvisorReport",
    "BypassPrediction",
    "BypassSearchResult",
    "CUDAAdvisor",
    "GPUProgram",
    "oracle_bypass_search",
    "predict_optimal_warps",
]
