"""The top-level CUDAAdvisor facade.

Ties the whole tool together the way Figure 1 draws it: *instrumentation
engine* -> *profiler* -> *analyzer* -> optimization advice. Programs are
described by the :class:`GPUProgram` protocol (kernels + host-side
prepare/run code); :meth:`CUDAAdvisor.profile` compiles, optimizes,
instruments, executes on the simulated GPU, runs every requested
analysis and returns an :class:`AdvisorReport`;
:meth:`CUDAAdvisor.evaluate_bypass` additionally performs the Figure 6/7
experiment (baseline vs oracle vs Eq.(1) prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.aggregates import advisor_plan
from repro.analysis.arithmetic import ArithmeticProfile, arithmetic_analysis
from repro.analysis.divergence_branch import (
    BranchDivergenceProfile,
    branch_divergence_analysis,
)
from repro.analysis.divergence_memory import (
    MemoryDivergenceProfile,
    memory_divergence_analysis,
)
from repro.analysis.heatmap import (
    DEFAULT_CELL_ROWS,
    HeatmapTable,
    MemoryHeatmap,
    heatmap_analysis,
)
from repro.analysis.overhead import OverheadReport, overhead_report
from repro.analysis.reuse_distance import (
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    reuse_distance_analysis,
)
from repro.frontend.dsl import KernelSource, compile_kernels
from repro.gpu.arch import GPUArchitecture, KEPLER_K40C
from repro.gpu.device import Device, LaunchResult
from repro.host.runtime import CudaRuntime
from repro.optim.bypass_model import BypassPrediction, predict_optimal_warps
from repro.optim.oracle import BypassSearchResult, oracle_bypass_search
from repro.passes.bypass import HorizontalBypassPass
from repro.passes.manager import PassManager
from repro.passes.pipeline import instrumentation_pipeline, optimization_pipeline
from repro.profiler.session import ProfilingSession


class GPUProgram:
    """A CUDA application: kernels plus host-side driver code.

    Subclasses (the ten Table 2 benchmarks live in :mod:`repro.apps`)
    provide:

    * ``name`` and ``kernels`` (a list of ``@kernel`` functions);
    * ``prepare(rt)`` -- allocate/copy inputs through the runtime,
      returning opaque state;
    * ``run(rt, image, state, l1_warps_per_cta=None)`` -- launch the
      kernels, returning the list of LaunchResults;
    * optionally ``check(rt, state)`` -- validate outputs.
    """

    name: str = "program"
    kernels: Sequence[KernelSource] = ()
    warps_per_cta: int = 8

    def prepare(self, rt: CudaRuntime):
        raise NotImplementedError

    def run(self, rt, image, state, l1_warps_per_cta: Optional[int] = None):
        raise NotImplementedError

    def check(self, rt: CudaRuntime, state) -> bool:
        return True


@dataclass
class AdvisorReport:
    """Everything CUDAAdvisor derives for one program on one arch."""

    program: str
    arch: GPUArchitecture
    modes: Tuple[str, ...]
    session: ProfilingSession
    baseline_results: List[LaunchResult]
    instrumented_results: List[LaunchResult]
    reuse_element: Optional[ReuseDistanceHistogram] = None
    reuse_cache_line: Optional[ReuseDistanceHistogram] = None
    memory_divergence: Optional[MemoryDivergenceProfile] = None
    branch_divergence: Optional[BranchDivergenceProfile] = None
    arithmetic: Optional[ArithmeticProfile] = None
    bypass_prediction: Optional[BypassPrediction] = None
    overhead: Optional[OverheadReport] = None
    #: JIT trace-cache counters from the instrumented run's device
    #: (batched backend only; see repro.gpu.jit_cache).
    jit_cache: Optional[Dict[str, int]] = None
    #: granule-resolution heat map over all launches (launch-concatenated
    #: timeline); resolve to allocations via :meth:`resolved_heatmap`.
    heatmap: Optional[HeatmapTable] = None

    def resolved_heatmap(self, time_buckets: int = 64) -> MemoryHeatmap:
        """The per-allocation x time heat map (CUTHERMO view).

        Joins the granule-level table against this session's device
        allocation records and re-bins time to at most ``time_buckets``
        display buckets. Requires profiling with ``heatmap=True``.
        """
        if self.heatmap is None:
            raise AnalysisError(
                "no heat map in this report: profile with "
                "CUDAAdvisor(heatmap=True) (or repro profile --heatmap)"
            )
        return self.heatmap.resolve(
            self.session.device_allocations, time_buckets
        )

    def to_dict(self) -> dict:
        """A JSON-serializable summary of every analysis (for dashboards,
        regression tracking, or the CLI's --json mode)."""
        out: dict = {
            "program": self.program,
            "arch": {
                "name": self.arch.name,
                "chip": self.arch.chip,
                "l1_size": self.arch.l1_size,
                "l1_line_size": self.arch.l1_line_size,
            },
            "modes": list(self.modes),
            "kernel_instances": len(self.session.profiles),
            "advice": self.advice(),
        }
        if self.reuse_element is not None:
            out["reuse_element"] = {
                "frequencies": self.reuse_element.frequencies,
                "no_reuse_fraction": self.reuse_element.no_reuse_fraction,
                "average_finite_distance":
                    self.reuse_element.average_distance,
                "samples": self.reuse_element.samples,
            }
        if self.reuse_cache_line is not None:
            out["reuse_cache_line"] = {
                "no_reuse_fraction":
                    self.reuse_cache_line.no_reuse_fraction,
                "average_finite_distance":
                    self.reuse_cache_line.average_distance,
            }
        if self.memory_divergence is not None:
            out["memory_divergence"] = {
                "distribution": {
                    str(k): v
                    for k, v in self.memory_divergence.distribution.items()
                },
                "degree": self.memory_divergence.divergence_degree,
                "instructions": self.memory_divergence.instructions,
            }
        if self.branch_divergence is not None:
            out["branch_divergence"] = {
                "divergent_blocks": self.branch_divergence.divergent_blocks,
                "total_blocks": self.branch_divergence.total_blocks,
                "percent": self.branch_divergence.divergence_percent,
            }
        if self.arithmetic is not None:
            out["arithmetic"] = {
                "lane_flops": self.arithmetic.lane_flops,
                "lane_intops": self.arithmetic.lane_intops,
                "float_fraction": self.arithmetic.float_fraction,
            }
        if self.bypass_prediction is not None:
            p = self.bypass_prediction
            out["bypass_prediction"] = {
                "optimal_warps": p.optimal_warps,
                "warps_per_cta": p.warps_per_cta,
                "raw_value": p.raw_value,
                "recommended": p.bypassing_recommended,
            }
        if self.overhead is not None:
            out["overhead"] = {
                "cycle_overhead": self.overhead.cycle_overhead,
                "instruction_overhead": self.overhead.instruction_overhead,
            }
        if self.jit_cache is not None:
            out["jit_cache"] = dict(self.jit_cache)
        if self.heatmap is not None:
            out["heatmap"] = {
                "granule_bytes": self.heatmap.granule_bytes,
                "cell_rows": self.heatmap.cell_rows,
                "time_cells": self.heatmap.time_cells,
                "occupied_cells": len(self.heatmap.cells),
            }
        dropped = sum(p.dropped_records for p in self.session.profiles)
        spilled = sum(p.spilled_records for p in self.session.profiles)
        corrupt = sum(p.corrupt_records for p in self.session.profiles)
        if dropped or spilled or corrupt:
            out["trace_buffers"] = {
                "dropped_records": dropped,
                "spilled_records": spilled,
                "corrupt_records": corrupt,
            }
        stream_stats = [
            p.stream_stats
            for p in self.session.profiles
            if p.stream_stats is not None
        ]
        if stream_stats:
            out["streaming_drain"] = {
                "segments_streamed": sum(
                    s["segments_streamed"] for s in stream_stats
                ),
                "peak_resident_rows": max(
                    s["peak_resident_rows"] for s in stream_stats
                ),
                "rows_kept": sum(
                    s["memory_rows"] + s["block_rows"] + s["arith_rows"]
                    for s in stream_stats
                ),
                "rows_dropped": dropped,
            }
        supervisor = getattr(
            getattr(self.session.runtime, "device", None), "_supervisor", None
        )
        if supervisor is not None and supervisor.events:
            out["degradations"] = [
                {
                    "reason": e.reason,
                    "kernel": e.kernel,
                    "message": e.message,
                }
                for e in supervisor.events
            ]
        return out

    def advice(self) -> List[str]:
        """Human-readable optimization guidance (the tool's purpose)."""
        tips: List[str] = []
        reuse = self.reuse_element or self.reuse_cache_line
        if reuse is not None:
            no_reuse = reuse.no_reuse_fraction
            if no_reuse > 0.9:
                tips.append(
                    f"{100 * no_reuse:.0f}% of accesses are streaming "
                    "(never reused): L1-level optimizations (capacity, "
                    "bypassing) will have little effect; consider "
                    "restructuring for spatial locality instead."
                )
            elif no_reuse > 0.5:
                tips.append(
                    f"{100 * no_reuse:.0f}% no-reuse accesses waste cache "
                    "and MSHR resources; cache bypassing is likely to help."
                )
        if self.memory_divergence is not None:
            degree = self.memory_divergence.divergence_degree
            if degree > 4:
                tips.append(
                    f"average memory divergence degree {degree:.1f} "
                    "(>4 lines per warp access): restructure data layout "
                    "or indexing for coalescing."
                )
        if self.branch_divergence is not None:
            pct = self.branch_divergence.divergence_percent
            if pct > 25:
                worst = self.branch_divergence.worst_blocks(1)
                where = f" (worst: {worst[0][0]})" if worst else ""
                tips.append(
                    f"{pct:.1f}% of dynamic blocks execute divergently"
                    f"{where}: consider branch-divergence optimizations."
                )
        if self.bypass_prediction is not None and (
            self.bypass_prediction.bypassing_recommended
        ):
            tips.append(
                f"horizontal cache bypassing: allow only "
                f"{self.bypass_prediction.optimal_warps} of "
                f"{self.bypass_prediction.warps_per_cta} warps per CTA "
                f"to use L1 (Eq. 1)."
            )
        if not tips:
            tips.append("no significant bottleneck detected by the analyses.")
        return tips


class CUDAAdvisor:
    """Compile -> instrument -> profile -> analyze -> advise."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40C,
        modes: Sequence[str] = ("memory", "blocks"),
        optimize: bool = True,
        measure_overhead: bool = True,
        buffer_capacity: Optional[int] = None,
        sample_rate: int = 1,
        backend: Optional[str] = None,
        parallel_workers: Optional[int] = None,
        failure_policy: Optional[str] = None,
        spill_dir: Optional[str] = None,
        spill_rows: int = 65536,
        streaming_drain: bool = False,
        fused_drain: bool = False,
        drain_workers: Optional[int] = None,
        heatmap: bool = False,
        heatmap_cell_rows: int = DEFAULT_CELL_ROWS,
    ):
        if streaming_drain and fused_drain:
            raise AnalysisError(
                "streaming_drain and fused_drain are mutually exclusive: "
                "the fused path already streams rows through the "
                "analyzer bank in flight"
            )
        self.arch = arch
        self.modes = tuple(modes)
        self.optimize = optimize
        self.measure_overhead = measure_overhead
        self.buffer_capacity = buffer_capacity
        self.sample_rate = sample_rate
        #: execution knobs forwarded to every Device this advisor builds
        #: (None keeps the device default; see docs/reliability.md).
        self.backend = backend
        self.parallel_workers = parallel_workers
        self.failure_policy = failure_policy
        self.spill_dir = spill_dir
        self.spill_rows = spill_rows
        #: stream the kernel-exit drain through per-segment analyzer
        #: aggregates instead of materializing the trace: peak drain
        #: memory drops to O(spill_rows) and every analysis result
        #: stays byte-identical (see docs/performance.md). Raw records
        #: are not retained, so leave this off when post-hoc record
        #: inspection is needed.
        self.streaming_drain = streaming_drain
        #: analyze rows *in flight*: buffered rows flush into the
        #: analyzer bank at segment granularity during execution, so
        #: the trace is never spilled, re-read or drained. Results stay
        #: byte-identical to the streaming drain; launches that need
        #: raw records (pc sampling) degrade per launch with a
        #: ``fused-records-unavailable`` warning.
        self.fused_drain = fused_drain
        #: fork-parallel width of the kernel-exit segment drain for
        #: spill workloads on the *streaming* path (no effect when no
        #: sampling/capacity constraint forces the serial relay).
        self.drain_workers = drain_workers
        #: build the per-allocation x time heat map (needs "memory" mode);
        #: cell_rows sets kept memory instructions per CTA per time cell.
        self.heatmap = heatmap
        self.heatmap_cell_rows = heatmap_cell_rows

    # -- compilation helpers ---------------------------------------------------
    def _compile(self, program: GPUProgram, instrument: bool,
                 bypass: bool = False):
        module = compile_kernels(list(program.kernels), program.name)
        if self.optimize:
            optimization_pipeline().run(module)
        if bypass:
            PassManager([HorizontalBypassPass()]).run(module)
        if instrument:
            instrumentation_pipeline(self.modes).run(module)
        return module

    def _fresh_runtime(self, profiler=None):
        device = Device(self.arch)
        if self.backend is not None:
            device.backend = self.backend
        if self.parallel_workers is not None:
            device.parallel_workers = self.parallel_workers
        if self.failure_policy is not None:
            device.failure_policy = self.failure_policy
        return CudaRuntime(device, profiler=profiler)

    def _plan(self):
        """The analyzer plan both drain modes stream rows through."""
        return advisor_plan(
            self.arch.l1_line_size,
            self.modes,
            heatmap_cell_rows=(
                self.heatmap_cell_rows if self.heatmap else None
            ),
        )

    # -- main entry points ----------------------------------------------------------
    def profile(self, program: GPUProgram) -> AdvisorReport:
        """Run the full Figure 1 workflow for one program."""
        # Baseline (uninstrumented) run, for overhead and sanity.
        baseline_results: List[LaunchResult] = []
        if self.measure_overhead:
            rt0 = self._fresh_runtime()
            module0 = self._compile(program, instrument=False)
            image0 = rt0.device.load_module(module0)
            state0 = program.prepare(rt0)
            baseline_results = list(program.run(rt0, image0, state0))
            if not program.check(rt0, state0):
                raise AnalysisError(
                    f"{program.name}: baseline run failed validation"
                )

        # Instrumented run.
        session = ProfilingSession(
            buffer_capacity=self.buffer_capacity,
            sample_rate=self.sample_rate,
            spill_dir=self.spill_dir,
            spill_rows=self.spill_rows,
            streaming=self._plan() if self.streaming_drain else None,
            fused=self._plan() if self.fused_drain else None,
            drain_workers=self.drain_workers,
        )
        rt = self._fresh_runtime(profiler=session)
        module = self._compile(program, instrument=True)
        image = rt.device.load_module(module)
        state = program.prepare(rt)
        instrumented_results = list(program.run(rt, image, state))
        if not program.check(rt, state):
            raise AnalysisError(
                f"{program.name}: instrumented run failed validation "
                "(instrumentation must not change program semantics)"
            )

        report = AdvisorReport(
            program=program.name,
            arch=self.arch,
            modes=self.modes,
            session=session,
            baseline_results=baseline_results,
            instrumented_results=instrumented_results,
        )
        if rt.device.backend == "batched":
            report.jit_cache = rt.device.jit_cache.stats.snapshot()
        self._analyze(report, program)
        return report

    def _analyze(self, report: AdvisorReport, program: GPUProgram) -> None:
        session = report.session
        if "memory" in self.modes and session.profiles:
            report.reuse_element = self._merged_reuse(
                session, ReuseDistanceModel.ELEMENT
            )
            report.reuse_cache_line = self._merged_reuse(
                session, ReuseDistanceModel.CACHE_LINE
            )
            merged_md = MemoryDivergenceProfile(line_size=self.arch.l1_line_size)
            for profile in session.profiles:
                if profile.aggregates is not None:
                    merged_md.merge(
                        profile.aggregates.result("memory_divergence")
                    )
                else:
                    merged_md.merge(
                        memory_divergence_analysis(
                            profile, self.arch.l1_line_size
                        )
                    )
            report.memory_divergence = merged_md

            if self.heatmap:
                merged_hm = HeatmapTable(cell_rows=self.heatmap_cell_rows)
                for profile in session.profiles:
                    if profile.aggregates is not None:
                        merged_hm.merge(profile.aggregates.result("heatmap"))
                    else:
                        merged_hm.merge(
                            heatmap_analysis(
                                profile, cell_rows=self.heatmap_cell_rows
                            )
                        )
                report.heatmap = merged_hm

            num_ctas = max(p.num_ctas for p in session.profiles)
            report.bypass_prediction = predict_optimal_warps(
                self.arch,
                report.reuse_cache_line,
                report.memory_divergence,
                num_ctas=num_ctas,
                warps_per_cta=program.warps_per_cta,
            )
        if "blocks" in self.modes and session.profiles:
            merged_bd = BranchDivergenceProfile()
            for profile in session.profiles:
                if profile.aggregates is not None:
                    merged_bd.merge(
                        profile.aggregates.result("branch_divergence")
                    )
                else:
                    merged_bd.merge(branch_divergence_analysis(profile))
            report.branch_divergence = merged_bd
        if "arith" in self.modes and session.profiles:
            merged = ArithmeticProfile()
            for profile in session.profiles:
                if profile.aggregates is not None:
                    one = profile.aggregates.result("arithmetic")
                else:
                    one = arithmetic_analysis(profile)
                merged.lane_flops += one.lane_flops
                merged.lane_intops += one.lane_intops
                merged.by_opcode.update(one.by_opcode)
                merged.by_line.update(one.by_line)
            report.arithmetic = merged
        if self.measure_overhead and report.baseline_results:
            report.overhead = overhead_report(
                report.program,
                self.arch.name,
                self.modes,
                report.baseline_results,
                report.instrumented_results,
            )

    def _merged_reuse(
        self, session: ProfilingSession, model: ReuseDistanceModel
    ) -> ReuseDistanceHistogram:
        merged = ReuseDistanceHistogram(model=model)
        name = (
            "reuse_element"
            if model is ReuseDistanceModel.ELEMENT
            else "reuse_cache_line"
        )
        for profile in session.profiles:
            if profile.aggregates is not None:
                merged.merge(profile.aggregates.result(name))
            else:
                merged.merge(
                    reuse_distance_analysis(
                        profile, model=model, line_size=self.arch.l1_line_size
                    )
                )
        return merged

    # -- the Figure 6/7 experiment ------------------------------------------------------
    def evaluate_bypass(
        self, program: GPUProgram, prediction: Optional[BypassPrediction] = None
    ) -> Tuple[BypassSearchResult, BypassPrediction]:
        """Baseline vs oracle vs Eq.(1)-predicted horizontal bypassing.

        Returns the exhaustive search result (cycles per threshold) and
        the prediction. ``result.normalized(prediction.optimal_warps)``
        is the "Prediction" bar of Figures 6/7;
        ``result.oracle_normalized`` is the "Oracle" bar.
        """
        if prediction is None:
            report = self.profile(program)
            prediction = report.bypass_prediction
            if prediction is None:
                raise AnalysisError(
                    "bypass evaluation needs the 'memory' analysis mode"
                )
        module = self._compile(program, instrument=False, bypass=True)

        def run_with_threshold(k: Optional[int]) -> float:
            rt = self._fresh_runtime()
            image = rt.device.load_module(module)
            state = program.prepare(rt)
            results = program.run(rt, image, state, l1_warps_per_cta=k)
            if not program.check(rt, state):
                raise AnalysisError(
                    f"{program.name}: bypassing changed program output"
                )
            return sum(r.cycles for r in results)

        search = oracle_bypass_search(
            run_with_threshold, warps_per_cta=program.warps_per_cta
        )
        return search, prediction
