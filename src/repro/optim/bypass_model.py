"""The Eq.(1) optimal-warp model for horizontal cache bypassing.

The paper's model (Section 4.2-D)::

                              L1_Cache_Size
    Opt_Num_Warps = floor( ----------------------------------------------- )
                            R.D. * Cacheline_Size * M.D. * #CTAs/SM

where R.D. is the application's average (cache-line-granularity) reuse
distance and M.D. its average memory-divergence degree, both computed
from CUDAAdvisor's trace outputs; plain means are used deliberately
("for showcasing purpose we use the average value ... to rather
conservatively estimate the optimal warp number").

The intuition: R.D. x line-size is one warp-stream's working footprint,
M.D. multiplies it by intra-warp spread, #CTAs/SM by inter-CTA sharing
of the same L1; the quotient is how many warps' footprints fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.divergence_memory import MemoryDivergenceProfile
from repro.analysis.reuse_distance import ReuseDistanceHistogram
from repro.gpu.arch import GPUArchitecture


@dataclass
class BypassPrediction:
    """The model's output plus the quantities that produced it."""

    optimal_warps: int  # clamped to [1, warps_per_cta]
    raw_value: float  # the unfloored, unclamped quotient
    avg_reuse_distance: float
    divergence_degree: float
    ctas_per_sm: int
    l1_size: int
    line_size: int
    warps_per_cta: int

    @property
    def bypassing_recommended(self) -> bool:
        """Bypass only if the model wants fewer warps in L1 than exist."""
        return self.optimal_warps < self.warps_per_cta


def ctas_per_sm(arch: GPUArchitecture, num_ctas: int) -> int:
    """Co-resident CTAs per SM for this launch (at least 1)."""
    per_sm = math.ceil(num_ctas / arch.num_sms)
    return max(1, min(arch.max_ctas_per_sm, per_sm))


def predict_optimal_warps(
    arch: GPUArchitecture,
    reuse: ReuseDistanceHistogram,
    divergence: MemoryDivergenceProfile,
    num_ctas: int,
    warps_per_cta: int,
) -> BypassPrediction:
    """Evaluate Eq.(1) from the two CUDAAdvisor analyses."""
    rd = max(reuse.average_distance, 1.0)
    md = max(divergence.divergence_degree, 1.0)
    resident = ctas_per_sm(arch, num_ctas)
    denominator = rd * arch.l1_line_size * md * resident
    raw = arch.l1_size / denominator
    opt = int(math.floor(raw))
    opt = max(1, min(warps_per_cta, opt))
    return BypassPrediction(
        optimal_warps=opt,
        raw_value=raw,
        avg_reuse_distance=rd,
        divergence_degree=md,
        ctas_per_sm=resident,
        l1_size=arch.l1_size,
        line_size=arch.l1_line_size,
        warps_per_cta=warps_per_cta,
    )
