"""Oracle horizontal-bypass search (the comparison point of Figures 6-7).

Adaptive horizontal bypassing [Li et al., SC'15] pre-executes a sampling
period, exhaustively trying every number of warps-per-CTA allowed to use
L1, then locks in the fastest. The oracle here does the same: run the
bypass-transformed program once per threshold k in {1..warps_per_cta}
(k = warps_per_cta is the no-bypass baseline) and report the cycle
counts of all configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class BypassSearchResult:
    """Cycles for every threshold, plus the derived figures of merit."""

    warps_per_cta: int
    cycles_by_warps: Dict[int, float] = field(default_factory=dict)

    @property
    def baseline_cycles(self) -> float:
        """No bypassing: all warps use L1."""
        return self.cycles_by_warps[self.warps_per_cta]

    @property
    def best_warps(self) -> int:
        return min(self.cycles_by_warps, key=self.cycles_by_warps.get)

    @property
    def best_cycles(self) -> float:
        return self.cycles_by_warps[self.best_warps]

    def normalized(self, warps: int) -> float:
        """Execution time of a configuration normalized to baseline."""
        return self.cycles_by_warps[warps] / self.baseline_cycles

    @property
    def oracle_normalized(self) -> float:
        return self.best_cycles / self.baseline_cycles

    @property
    def oracle_speedup(self) -> float:
        return self.baseline_cycles / self.best_cycles


def oracle_bypass_search(
    run_with_threshold: Callable[[Optional[int]], float],
    warps_per_cta: int,
    min_warps: int = 1,
) -> BypassSearchResult:
    """Exhaustive search over L1-warp thresholds.

    ``run_with_threshold(k)`` executes the app with ``l1_warps_per_cta=k``
    and returns total cycles; ``k = warps_per_cta`` must behave as the
    no-bypass baseline (the dynamic cache operator degenerates to .ca).
    """
    result = BypassSearchResult(warps_per_cta=warps_per_cta)
    for k in range(min_warps, warps_per_cta + 1):
        result.cycles_by_warps[k] = run_with_threshold(k)
    return result
