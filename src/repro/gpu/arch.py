"""GPU architecture descriptors (Table 1 of the paper).

Two platforms are modelled, matching the paper's evaluation table:

* **Kepler / Tesla K40c** -- CC 3.5, CUDA 7.0: L1 shares on-chip storage
  with shared memory, configurable 16/32/48 KB, 128-byte cache lines.
* **Pascal / Tesla P100** -- CC 6.0, CUDA 8.0: 24 KB unified L1/Texture
  cache with 32-byte sectors (cache lines, for divergence accounting).

SM counts are the real parts' (15 and 56); latency parameters are
round-number textbook values -- the analyses depend on the structural
parameters (line size, capacity, associativity), not the exact latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUArchitecture:
    """Static description of a simulated GPU."""

    name: str
    chip: str
    compute_capability: str
    cuda_version: str
    driver_version: str
    num_sms: int
    warp_size: int
    max_ctas_per_sm: int
    max_threads_per_cta: int
    shared_mem_per_sm: int
    # L1 data cache (per SM on Kepler; per TPC on Pascal, modelled per SM)
    l1_size: int
    l1_line_size: int
    l1_assoc: int
    l1_write_allocate: bool  # GPUs: False (write-evict / write-no-allocate)
    mshr_entries: int
    # Timing model parameters (cycles)
    issue_cycles: int = 1
    l1_hit_latency: int = 30
    l2_latency: int = 190
    dram_latency: int = 350
    # How much of memory latency co-resident warps hide, per extra warp.
    latency_hiding_per_warp: float = 0.9

    @property
    def l1_num_lines(self) -> int:
        return self.l1_size // self.l1_line_size

    @property
    def l1_num_sets(self) -> int:
        return max(1, self.l1_num_lines // self.l1_assoc)

    def with_l1_size(self, size: int) -> "GPUArchitecture":
        return replace(self, l1_size=size)


KEPLER_K40C = GPUArchitecture(
    name="Kepler",
    chip="Tesla K40c",
    compute_capability="3.5",
    cuda_version="7.0",
    driver_version="361.93",
    num_sms=15,
    warp_size=32,
    max_ctas_per_sm=16,
    max_threads_per_cta=1024,
    shared_mem_per_sm=48 * 1024,
    l1_size=16 * 1024,  # 16/48 KB split with shared memory; 16 KB default
    l1_line_size=128,
    l1_assoc=4,
    l1_write_allocate=False,
    mshr_entries=32,
)

PASCAL_P100 = GPUArchitecture(
    name="Pascal",
    chip="Tesla P100",
    compute_capability="6.0",
    cuda_version="8.0",
    driver_version="375.20",
    num_sms=56,
    warp_size=32,
    max_ctas_per_sm=32,
    max_threads_per_cta=1024,
    shared_mem_per_sm=64 * 1024,
    l1_size=24 * 1024,  # 24 KB unified L1/Texture cache
    l1_line_size=32,  # 32-byte sectors (the paper's Pascal line size)
    l1_assoc=6,
    l1_write_allocate=False,
    mshr_entries=32,
)


def kepler_with_l1(size_kb: int) -> GPUArchitecture:
    """Kepler with one of its configurable L1 sizes (16, 32 or 48 KB)."""
    if size_kb not in (16, 32, 48):
        raise ValueError("Kepler L1 must be 16, 32 or 48 KB")
    return KEPLER_K40C.with_l1_size(size_kb * 1024)
