"""Simulated memory spaces: global, shared (per CTA), local (per thread).

Global memory is a flat byte arena with a bump allocator (256-byte
aligned like ``cudaMalloc``), an allocation table for bounds checking,
and typed vector load/store used by the warp interpreter (all 32 lanes
gathered/scattered in one numpy call).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryError_
from repro.ir.types import Type

#: Device addresses start here so that 0/NULL and small ints fault.
GLOBAL_BASE = 0x1000


class Allocation:
    """One live allocation in an arena."""

    __slots__ = ("base", "nbytes", "tag", "freed")

    def __init__(self, base: int, nbytes: int, tag: str):
        self.base = base
        self.nbytes = nbytes
        self.tag = tag
        self.freed = False

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Allocation {self.tag} [{self.base:#x}, {self.end:#x})>"


class GlobalMemory:
    """The device's global memory arena."""

    def __init__(self, capacity: int = 64 * 1024 * 1024):
        self._buf = np.zeros(capacity, dtype=np.uint8)
        self._next = GLOBAL_BASE
        self._allocations: List[Allocation] = []
        self.check_bounds = True

    @property
    def capacity(self) -> int:
        return len(self._buf)

    def allocate(self, nbytes: int, tag: str = "", align: int = 256) -> Allocation:
        if nbytes <= 0:
            raise MemoryError_(f"cannot allocate {nbytes} bytes")
        base = (self._next + align - 1) // align * align
        if base + nbytes > self.capacity:
            raise MemoryError_(
                f"device out of memory allocating {nbytes} bytes"
            )
        self._next = base + nbytes
        alloc = Allocation(base, nbytes, tag)
        self._allocations.append(alloc)
        return alloc

    def free(self, alloc: Allocation) -> None:
        if alloc.freed:
            raise MemoryError_(f"double free of {alloc!r}")
        alloc.freed = True

    def find_allocation(self, addr: int) -> Optional[Allocation]:
        for alloc in self._allocations:
            if not alloc.freed and alloc.base <= addr < alloc.end:
                return alloc
        return None

    # -- host-side typed access (cudaMemcpy) ---------------------------------
    def write_bytes(self, addr: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        self._check_range(addr, len(raw))
        self._buf[addr: addr + len(raw)] = raw

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        self._check_range(addr, nbytes)
        return self._buf[addr: addr + nbytes].copy()

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < GLOBAL_BASE or addr + nbytes > self.capacity:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside device memory"
            )

    # -- warp-wide typed access ------------------------------------------------
    def gather(self, addrs: np.ndarray, mask: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Load one element of ``dtype`` per active lane; inactive lanes get 0."""
        itemsize = dtype.itemsize
        result = np.zeros(len(addrs), dtype=dtype)
        if not mask.any():
            return result
        active_addrs = addrs[mask]
        self._fault_check(active_addrs, itemsize)
        if itemsize == 1:
            result[mask] = self._buf[active_addrs].view(dtype)
        else:
            # Elements are naturally aligned (allocator + GEP guarantee it).
            view = self._buf.view(dtype)
            result[mask] = view[active_addrs // itemsize]
        return result

    def scatter(self, addrs: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        """Store one element per active lane (last lane wins on conflicts)."""
        if not mask.any():
            return
        dtype = values.dtype
        itemsize = dtype.itemsize
        active_addrs = addrs[mask]
        self._fault_check(active_addrs, itemsize)
        if itemsize == 1:
            self._buf[active_addrs] = values[mask].view(np.uint8)
        else:
            view = self._buf.view(dtype)
            view[active_addrs // itemsize] = values[mask]

    def _fault_check(self, addrs: np.ndarray, itemsize: int) -> None:
        lo = int(addrs.min())
        hi = int(addrs.max()) + itemsize
        if lo < GLOBAL_BASE or hi > self.capacity:
            bad = addrs[(addrs < GLOBAL_BASE) | (addrs + itemsize > self.capacity)]
            raise MemoryError_(
                f"global memory fault at address {int(bad[0]):#x}"
            )
        if self.check_bounds and self._allocations:
            # Cheap check: the whole access range must fall inside the
            # allocated prefix of the arena.
            if hi > self._next:
                raise MemoryError_(
                    f"global memory access at {hi - itemsize:#x} beyond the "
                    f"last allocation (heap ends at {self._next:#x})"
                )


class SharedMemory:
    """One CTA's shared-memory arena (scratchpad)."""

    def __init__(self, nbytes: int):
        self._buf = np.zeros(max(nbytes, 1), dtype=np.uint8)

    @property
    def nbytes(self) -> int:
        return len(self._buf)

    def gather(self, addrs: np.ndarray, mask: np.ndarray, dtype: np.dtype) -> np.ndarray:
        itemsize = dtype.itemsize
        result = np.zeros(len(addrs), dtype=dtype)
        if not mask.any():
            return result
        active = addrs[mask]
        self._fault_check(active, itemsize)
        if itemsize == 1:
            result[mask] = self._buf[active].view(dtype)
        else:
            result[mask] = self._buf.view(dtype)[active // itemsize]
        return result

    def scatter(self, addrs: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        if not mask.any():
            return
        itemsize = values.dtype.itemsize
        active = addrs[mask]
        self._fault_check(active, itemsize)
        if itemsize == 1:
            self._buf[active] = values[mask].view(np.uint8)
        else:
            self._buf.view(values.dtype)[active // itemsize] = values[mask]

    def _fault_check(self, addrs: np.ndarray, itemsize: int) -> None:
        if int(addrs.min()) < 0 or int(addrs.max()) + itemsize > len(self._buf):
            raise MemoryError_(
                f"shared memory fault (arena is {len(self._buf)} bytes, "
                f"access at {int(addrs.max()):#x})"
            )


class LocalMemory:
    """Per-thread local storage for one warp: a (32, arena_size) arena.

    Alloca'd stack slots live here; a per-warp frame pointer advances on
    call and rewinds on return. Addresses are frame-relative byte
    offsets, identical across lanes (each lane has its own copy of the
    arena row).
    """

    def __init__(self, warp_size: int, arena_size: int = 1 << 16):
        # The arena is allocated lazily: most kernels keep every value in
        # registers and never touch local memory, and zeroing a
        # (32, 64KiB) array per resident warp dominates launch setup.
        self._lazy_buf: Optional[np.ndarray] = None
        self._warp_size = warp_size
        self.arena_size = arena_size
        self._lane_index = np.arange(warp_size)

    @property
    def _buf(self) -> np.ndarray:
        buf = self._lazy_buf
        if buf is None:
            buf = np.zeros((self._warp_size, self.arena_size), dtype=np.uint8)
            self._lazy_buf = buf
        return buf

    def gather(self, addrs: np.ndarray, mask: np.ndarray, dtype: np.dtype) -> np.ndarray:
        itemsize = dtype.itemsize
        result = np.zeros(len(addrs), dtype=dtype)
        if not mask.any():
            return result
        active = addrs[mask]
        self._fault_check(active, itemsize)
        lanes = self._lane_index[mask]
        if itemsize == 1:
            result[mask] = self._buf[lanes, active].view(dtype)
        else:
            view = self._buf.view(dtype)
            result[mask] = view[lanes, active // itemsize]
        return result

    def scatter(self, addrs: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        if not mask.any():
            return
        itemsize = values.dtype.itemsize
        active = addrs[mask]
        self._fault_check(active, itemsize)
        lanes = self._lane_index[mask]
        if itemsize == 1:
            self._buf[lanes, active] = values[mask].view(np.uint8)
        else:
            self._buf.view(values.dtype)[lanes, active // itemsize] = values[mask]

    def _fault_check(self, addrs: np.ndarray, itemsize: int) -> None:
        if int(addrs.min()) < 0 or int(addrs.max()) + itemsize > self.arena_size:
            raise MemoryError_("local memory (stack) overflow in a kernel thread")
