"""Per-SM cycle cost model.

A simple additive in-order model with a latency-hiding factor: enough to
rank configurations (baseline vs. bypassing variants, instrumented vs.
uninstrumented), which is all the paper's Figures 6, 7 and 10 need.
Absolute cycle counts are not calibrated against real silicon.

Cost sources:

* every issued warp instruction: ``issue_cycles``
* global-memory transactions: L1 hit / miss (or bypass straight to L2)
  latency divided by a latency-hiding factor that grows with co-resident
  warps (the reason GPUs tolerate misses at all)
* MSHR allocation failures: an extra congestion stall
* shared-memory access: small constant
* instrumentation hooks: a call constant plus per-active-lane cost plus
  an atomic-serialization term -- the paper's three overhead sources
  (Section 5: atomics, hook calls, global-memory trace buffer)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.arch import GPUArchitecture


@dataclass
class TimingParams:
    """Tunable constants of the cost model (architecture-independent)."""

    shared_access_cycles: int = 2
    atomic_cycles_per_lane: int = 8
    mshr_fail_stall: int = 24
    # Instrumentation-hook costs (Section 5 of the paper):
    hook_call_cycles: int = 24  # function-call overhead
    hook_lane_cycles: int = 6  # per-lane trace-record formatting
    hook_atomic_cycles: int = 10  # atomic buffer-pointer bump, serialized
    max_latency_hiding: float = 20.0


class SMTimingModel:
    """Accumulates cycles for one SM."""

    def __init__(self, arch: GPUArchitecture, params: TimingParams = None):
        self.arch = arch
        self.params = params or TimingParams()
        self.cycles = 0.0
        self._hide = 1.0

    def set_resident_warps(self, warps: int) -> None:
        """Update the latency-hiding factor for the current occupancy."""
        hide = 1.0 + self.arch.latency_hiding_per_warp * max(0, warps - 1)
        self._hide = min(hide, self.params.max_latency_hiding)

    # -- cost events -----------------------------------------------------------
    def issue(self) -> None:
        self.cycles += self.arch.issue_cycles

    def global_transactions(self, hits: int, misses: int, bypasses: int) -> None:
        # L1 misses and L1-bypassing (.cg) accesses both hit L2; the
        # difference between the two paths is the L1 hits the cached path
        # earns and the MSHR allocation-failure stalls it risks.
        self.cycles += hits * (self.arch.l1_hit_latency / self._hide)
        self.cycles += (misses + bypasses) * (self.arch.l2_latency / self._hide)

    def mshr_failure(self, count: int = 1) -> None:
        self.cycles += count * self.params.mshr_fail_stall

    def shared_access(self, bank_conflict_degree: int = 1) -> None:
        """An N-way bank conflict replays the access N times."""
        self.cycles += self.params.shared_access_cycles * max(
            1, bank_conflict_degree
        )

    def atomic(self, lanes: int) -> None:
        self.cycles += lanes * self.params.atomic_cycles_per_lane

    def hook_call(self, lanes: int) -> None:
        p = self.params
        self.cycles += (
            p.hook_call_cycles
            + lanes * p.hook_lane_cycles
            + lanes * p.hook_atomic_cycles
        )
