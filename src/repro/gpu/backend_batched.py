"""The batched-warp execution backend (``device.backend = "batched"``).

Executes all resident warps of a CTA *together* as vectorized numpy
operations over ``(num_warps, warp_size)`` arrays -- one dispatch per
CTA-wide instruction instead of one per warp -- and, since the
reconvergence-aware rewrite, keeps executing through *divergence*:

* The CTA runs on a **shared SIMT reconvergence stack** (`_MEntry`
  objects inside `_MFrame` activations). Every entry carries a
  ``(W, warp_size)`` active mask plus a *member* bitmask naming the
  warps whose own (serial) reconvergence stack contains that entry. A
  divergent branch splits the active set exactly the way the per-warp
  interpreter does -- retarget the entry to the immediate post-dominator,
  push the not-taken then the taken paths -- but for all participating
  warps at once. Warp-uniform branches that send different warps down
  different paths split the entry *by warp* instead, and compatible
  entries re-merge when they meet at the same (block, index) again, so
  regular kernels re-batch after guard ``if``\\ s and barriers.

* Byte-identity with the interpreter backend is preserved by the
  **event log**: execution appends every observable side effect (issue
  steps, hook dispatches, global-memory transactions, shared/atomic
  cycle costs, barrier waits, empty-entry "admin" pops) tagged with the
  participating warps, and a per-warp *replay* cursor consumes the log
  in exactly the serial scheduler's visit order -- same quantum, same
  rotate-on-mem points, same step budget. The cycle-reading MSHR/L1
  path runs at replay time in serial order; numerical memory traffic
  runs at execution time (see the caveat below).

* Anything the machine cannot reproduce exactly -- a divergent
  ``__syncthreads()``, a multi-warp atomic after the CTA has split,
  unknown micro-ops, runtime faults -- triggers a **fallback**: per-warp
  interpreter frames are materialized from the shared stack (including
  pending empty entries, so admin-pop steps still happen), the event
  log is drained warp by warp, and the CTA finishes on the
  interpreter. Fallbacks are counted per kernel on the device; a kernel
  that keeps falling back skips the batched attempt for later CTAs
  (``device.batch_fallback_limit``).

Register values are numpy arrays broadcastable to ``(W, warp_size)``:
scalars and decode-time ``(warp_size,)`` immediates are shared by every
warp, ``(W, 1)`` columns are per-warp uniform values, ``(W, warp_size)``
is fully lane-varying. While the CTA is split, register writes are
row-preserving (``np.where`` on the participating warps' rows) so a
warp re-executing a block never corrupts another warp's lanes; values
whose "is it defined yet" state matters per warp (phi destinations,
call results, return values) additionally track a per-warp defined
bitmask so first-write semantics match the interpreter exactly.

Known caveat (shared with real GPUs, where it is a data race): warps
that communicate through memory *between two barriers without
synchronization* can observe each other's writes in a different order
than the serial interpreter, because execution runs ahead of the
serial replay order. ``__syncthreads()`` is a full machine-level
rendezvous, so properly synchronized kernels are unaffected. The same
caveat applied to the previous lock-step backend with a smaller
window (one scheduling segment).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ExecutionError, MemoryError_
from repro.gpu.coalescing import coalesce_lines
from repro.gpu.decode import (
    _I64,
    _ONE_LANE,
    _model_global_lines,
    _mo_alloca,
    _mo_atomic_global,
    _mo_atomic_shared,
    _mo_barrier,
    _mo_binop,
    _mo_br,
    _mo_call,
    _mo_cast,
    _mo_cast_bool,
    _mo_cast_repr,
    _mo_condbr,
    _mo_const,
    _mo_gep,
    _mo_gep_const,
    _mo_hook,
    _mo_intrin,
    _mo_ld_const,
    _mo_ld_global,
    _mo_ld_local,
    _mo_ld_shared,
    _mo_math,
    _mo_ret,
    _mo_select,
    _mo_st_global,
    _mo_st_local,
    _mo_st_shared,
    _undef,
)
from repro.gpu.interpreter import WarpInterpreter
from repro.gpu.simt import Frame, WarpStatus
from repro.gpu.vecops import _apply_math, _bank_conflict_degrees


class _Fallback(Exception):
    """Internal signal: this micro-op cannot run batched; fall back."""


#: Event kinds in the shared log (first tuple element).
_BATCH = 0    # (kind, members, count, done)           issue-only steps
_EXTRA = 1    # (kind, members, calls)                 1 step + timing calls
_MEM = 2      # (kind, members, lines_by_w, mode, is_write, post)
_HOOK = 3     # (kind, members, name, args, am2d, nact, plan)
_BARRIER = 4  # (kind, members)                        instr, no step
_ADMIN = 5    # (kind, members, count, done)           steps, no instr

#: Cache-line keys for batch-wide coalescing pack (row, line) into one
#: int64: lines sit in the low 40 bits (addresses are far below 2^40).
_LINE_SHIFT = 40
_LINE_MASK = (1 << _LINE_SHIFT) - 1


class _MEntry:
    """One shared reconvergence-stack entry.

    ``mask`` is ``(W, warp_size)`` and already excludes returned lanes
    (retires strip it, mirroring ``Warp.retire_lanes``), so it *is* the
    active mask. ``members`` is the bitmask of warps whose serial stack
    contains this entry -- including warps whose rows are empty (their
    serial interpreter still owes an admin pop for it); ``live`` is the
    subset with at least one active lane. Mask arrays are immutable:
    every change rebinds a fresh array, so logged events can keep
    references.
    """

    __slots__ = ("block", "index", "reconv", "mask", "counts", "live",
                 "members", "blocked", "hint")

    def __init__(self, block, index, reconv, mask, members):
        self.block = block
        self.index = index
        self.reconv = reconv
        self.mask = mask
        self.members = members
        self.blocked = False
        #: rendezvous hint: the ipostdom of the warp-divergent branch
        #: that split this entry off; the scheduler holds the entry at
        #: that block until its sibling classes arrive and re-merge.
        self.hint = None
        self.recount()

    def recount(self):
        counts = self.mask.sum(axis=1)
        self.counts = [int(n) for n in counts]
        live = 0
        for w, n in enumerate(self.counts):
            if n:
                live |= 1 << w
        self.live = live & self.members

    def __repr__(self):  # pragma: no cover
        return (f"<_MEntry {self.block.name if self.block else None}"
                f"@{self.index} members={self.members:b} live={self.live:b}>")


class _MFrame:
    """One shared function activation (a set of warps' serial frames).

    ``members`` names the warps still inside this activation; a warp
    leaves when its last entry membership is gone (mirroring the serial
    ``_pop_frame``). ``defined`` tracks, per register slot with
    first-write semantics (phi destinations and call-result slots),
    which warps have written it -- the serial interpreter's
    ``prev is None`` test, per warp.
    """

    __slots__ = ("decoded", "regs", "stack", "sp", "base_sp", "ret_slot",
                 "returned", "ret_values", "ret_defined", "members",
                 "defined", "caller")

    def __init__(self, decoded, regs, sp, base_sp, ret_slot, returned,
                 members, caller):
        self.decoded = decoded
        self.regs = regs
        self.stack: List[_MEntry] = []
        self.sp = sp
        self.base_sp = base_sp
        self.ret_slot = ret_slot
        self.returned = returned          # (W, ws) bool, mutable private
        self.ret_values: Optional[np.ndarray] = None  # (W, ws), private
        self.ret_defined = 0              # warps that executed a value ret
        self.members = members
        self.defined: Dict[int, int] = {}
        self.caller: Optional["_MFrame"] = None if caller is None else caller

    @property
    def function(self):  # _undef renders "@{frame.function.name}"
        return self.decoded.function


# -- operand helpers ---------------------------------------------------------
def _get(m, ref):
    """Register slot or immediate -> batched value."""
    if type(ref) is int:
        v = m._frame.regs[ref]
        if v is None:
            _undef(m._frame, ref)
        return v
    return ref


def _addr2d(m, ref) -> np.ndarray:
    """Resolve an address operand to a ``(W, warp_size)`` view."""
    a = np.asarray(_get(m, ref))
    if a.ndim == 2 and a.shape[1] != 1:
        return a  # already (W, warp_size)
    if a.ndim == 0:
        a = np.full(m.warp_size, a, _I64)  # matches _read_addrs
    return np.broadcast_to(a, (m.W, m.warp_size))


def _store2d(m, op) -> np.ndarray:
    """Resolve a store-value operand (op.b, dtype op.c) to (W, warp_size)."""
    v = op.b
    if type(v) is int:
        v = m._frame.regs[v]
        if v is None:
            _undef(m._frame, op.b)
    v = np.asarray(v)
    dtype = op.c
    if v.ndim == 0:
        v = np.full(m.warp_size, v, dtype)  # matches _read_store_value
    elif v.dtype != dtype:
        v = v.astype(dtype)
    if v.ndim == 2 and v.shape[1] != 1:
        return v  # already (W, warp_size)
    return np.broadcast_to(v, (m.W, m.warp_size))


# -- batched micro-op handlers ----------------------------------------------
# Same contract as the serial handlers in repro.gpu.decode, but one call
# executes the op for every *participating* warp of the current entry
# (m._cur / m._elig / m._mask2d). A handler must raise _Fallback (or
# ExecutionError) *before* any state mutation if the op cannot run
# batched, so the interpreter re-executes it with exact per-warp state.
def _bb_alloca(op, m):
    frame = m._frame
    if m._elig != frame.members:
        # Per-warp stack pointers would drift apart; the serial frames
        # track sp individually, this shared frame cannot.
        raise _Fallback()
    size = op.a
    addr = (frame.sp + size - 1) // size * size
    frame.sp = addr + size * op.b
    if frame.sp > m.warps[0].local_mem.arena_size:
        raise ExecutionError("kernel thread stack overflow (too many allocas)")
    m._log_step()
    m._set(op.dst, _I64(addr))
    m._cur.index += 1


def _bb_gep(op, m):
    frame = m._frame
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    index = frame.regs[op.b]
    if index is None:
        _undef(frame, op.b)
    m._set(op.dst, base + index.astype(_I64) * op.c)
    m._cur.index += 1


def _bb_gep_const(op, m):
    frame = m._frame
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    m._set(op.dst, base + op.b)
    m._cur.index += 1


def _bb_binop(op, m):
    frame = m._frame
    a = op.a
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.a)
    b = op.b
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.b)
    m._set(op.dst, op.c(a, b, m._mask2d))
    m._cur.index += 1


def _bb_const(op, m):
    m._set(op.dst, op.a)
    m._cur.index += 1


def _bb_cast_repr(op, m):
    frame = m._frame
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    if op.b is not None and v.ndim and v.dtype != op.b:
        # (W, 1) columns are the batched form of a serial *scalar*
        # register, and the serial scalar path skips the reinterpret.
        if not (v.ndim == 2 and v.shape[1] == 1):
            v = v.view(op.b)
    m._set(op.dst, v)
    m._cur.index += 1


def _bb_cast_bool(op, m):
    frame = m._frame
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    m._set(op.dst, (np.asarray(v) & 1).astype(np.bool_))
    m._cur.index += 1


def _bb_cast(op, m):
    frame = m._frame
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    m._set(op.dst, np.asarray(v).astype(op.b))
    m._cur.index += 1


def _bb_select(op, m):
    frame = m._frame
    c = op.a
    if type(c) is int:
        c = frame.regs[c]
        if c is None:
            _undef(frame, op.a)
    if np.ndim(c) == 0:
        c = np.full(m.warp_size, c, np.bool_)
    a = op.b
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.b)
    b = op.c
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.c)
    m._set(op.dst, np.where(c, a, b))
    m._cur.index += 1


def _bb_intrin(op, m):
    cache = m._intrin_cache
    v = cache.get(op.a)
    if v is None:
        vals = [op.a(w) for w in m.warps]
        first = vals[0]
        if np.ndim(first) == 0:
            col = np.array(vals)
            v = first if (col == first).all() else col.reshape(m.W, 1)
        else:
            stacked = np.stack(vals)
            v = first if (stacked == first).all() else stacked
        cache[op.a] = v
    m._set(op.dst, v)
    m._cur.index += 1


def _bb_math(op, m):
    frame = m._frame
    regs = frame.regs
    args = []
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            if np.ndim(v) == 0:
                v = np.full(m.warp_size, v, v.dtype)
        else:
            v = r
        args.append(v)
    m._set(op.dst, _apply_math(op.b, args, m._mask2d))
    m._cur.index += 1


def _bb_ld_global(op, m):
    a2d = _addr2d(m, op.a)
    am2d = m._mask2d
    value = m.ctx.global_mem.gather(
        a2d.reshape(-1), am2d.reshape(-1), op.b
    ).reshape(m.W, m.warp_size)
    m._log_mem(a2d, am2d, op.c, op.d, False, None)
    m._set(op.dst, value)
    m._cur.index += 1


def _bb_st_global(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    am2d = m._mask2d
    # One flattened scatter: row-major order is warp order then lane
    # order, so duplicate addresses resolve exactly as the serial
    # per-warp stores (last write wins). The fault check runs before
    # any byte is written, so a faulting batch can still fall back and
    # let the interpreter reproduce the partial writes + exact error.
    try:
        m.ctx.global_mem.scatter(
            a2d.reshape(-1), am2d.reshape(-1), v2d.reshape(-1)
        )
    except MemoryError_:
        raise _Fallback()
    m._log_mem(a2d, am2d, op.c.itemsize, op.d, True, None)
    m._cur.index += 1


def _bb_ld_shared(op, m):
    a2d = _addr2d(m, op.a)
    am2d = m._mask2d
    if m.gang:
        # Each row is its own CTA: gather from the stacked arenas.
        value = m._gang_shared_gather(a2d, am2d, op.b)
    else:
        value = m.ctx.shared_mem.gather(
            a2d.reshape(-1), am2d.reshape(-1), op.b
        ).reshape(m.W, m.warp_size)
    degrees = np.maximum(1, _bank_conflict_degrees(a2d, am2d))
    m._log_extra((("shared_access", degrees),))
    m._set(op.dst, value)
    m._cur.index += 1


def _bb_st_shared(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    am2d = m._mask2d
    if m.gang:
        # Rows write disjoint arenas; within a row the row-major fancy
        # assignment keeps the serial last-lane-wins order.
        m._gang_shared_scatter(a2d, am2d, v2d)
    else:
        shared = m.ctx.shared_mem
        for w in m._warps_of(m._elig):
            shared.scatter(a2d[w], am2d[w], v2d[w])
    degrees = np.maximum(1, _bank_conflict_degrees(a2d, am2d))
    m._log_extra((("shared_access", degrees),))
    m._cur.index += 1


def _bb_ld_local(op, m):
    a2d = _addr2d(m, op.a)
    am2d = m._mask2d
    rows = [
        warp.local_mem.gather(a2d[w], am2d[w], op.b)
        for w, warp in enumerate(m.warps)
    ]
    m._log_step()
    m._set(op.dst, np.stack(rows))
    m._cur.index += 1


def _bb_st_local(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    am2d = m._mask2d
    for w in m._warps_of(m._elig):
        m.warps[w].local_mem.scatter(a2d[w], am2d[w], v2d[w])
    m._log_step()
    m._cur.index += 1


def _bb_ld_const(op, m):
    a2d = _addr2d(m, op.a)
    am2d = m._mask2d
    value = m.ctx.image.constant_gather(
        a2d.reshape(-1), am2d.reshape(-1), op.b
    ).reshape(m.W, m.warp_size)
    m._log_step()
    m._set(op.dst, value)
    m._cur.index += 1


def _run_atomic_all(m, op, a2d, v2d, arena):
    """Serial read-modify-write per lane, warp-major -- the order the
    interpreter's per-warp visits produce, so old values are identical.

    Only exact while the participating warps hit the atomic in one
    lock-step event: after the CTA has ever split, a multi-warp atomic
    falls back to the interpreter (before any mutation)."""
    if m._ever_split and bin(m._elig & m._cur.live).count("1") > 1:
        raise _Fallback()
    dtype = op.c
    am2d = m._mask2d
    old = np.zeros((m.W, m.warp_size), dtype=dtype)
    apply_op = op.d
    lanes_per_warp = np.zeros(m.W, dtype=np.int64)
    for w in m._warps_of(m._elig):
        lanes = np.flatnonzero(am2d[w])
        lanes_per_warp[w] = len(lanes)
        addrs = a2d[w]
        vals = v2d[w]
        row = old[w]
        mem = arena[w] if type(arena) is list else arena
        for lane in lanes:
            addr = addrs[lane: lane + 1]
            current = mem.gather(addr, _ONE_LANE, dtype)[0]
            row[lane] = current
            mem.scatter(
                addr, _ONE_LANE,
                np.array([apply_op(current, vals[lane])], dtype=dtype),
            )
    return old, lanes_per_warp


def _bb_atomic_global(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    old, lanes = _run_atomic_all(m, op, a2d, v2d, m.ctx.global_mem)
    # Atomics always go to L2 (bypass mode 1); timing.atomic runs after
    # the transaction model, exactly as the serial handler orders it.
    m._log_mem(a2d, m._mask2d, op.c.itemsize, 1, True,
               (("atomic", lanes),))
    m._set(op.dst, old)
    m._cur.index += 1


def _bb_atomic_shared(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    degrees = np.maximum(1, _bank_conflict_degrees(a2d, m._mask2d))
    old, lanes = _run_atomic_all(m, op, a2d, v2d, m.shared_mems)
    m._log_extra((("shared_access", degrees), ("atomic", lanes)))
    m._set(op.dst, old)
    m._cur.index += 1


def _bb_barrier(op, m):
    m._exec_barrier(op)


def _bb_hook(op, m):
    frame = m._frame
    regs = frame.regs
    args = []
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            args.append(v)
        else:
            args.append(r)
    m._log_hook(op.b, args)
    m._cur.index += 1


def _bb_call(op, m):
    m._exec_call(op)


def _bb_br(op, m):
    m._log_step()
    m._do_branch(m._frame, m._cur, op.a, op.b)


def _bb_condbr(op, m):
    m._exec_condbr(op)


def _bb_ret(op, m):
    m._exec_ret(op)


#: Serial handler identity -> batched equivalent. Handlers absent here
#: (_mo_raise, _mo_fell_off, _mo_unexpected_phi, and any future micro-op)
#: fall back to the interpreter, which raises/handles them with exact
#: per-warp state -- the backend contract's automatic-fallback rule.
_BATCHED = {
    _mo_alloca: _bb_alloca,
    _mo_gep: _bb_gep,
    _mo_gep_const: _bb_gep_const,
    _mo_binop: _bb_binop,
    _mo_const: _bb_const,
    _mo_cast_repr: _bb_cast_repr,
    _mo_cast_bool: _bb_cast_bool,
    _mo_cast: _bb_cast,
    _mo_select: _bb_select,
    _mo_ld_global: _bb_ld_global,
    _mo_ld_shared: _bb_ld_shared,
    _mo_ld_local: _bb_ld_local,
    _mo_ld_const: _bb_ld_const,
    _mo_st_global: _bb_st_global,
    _mo_st_shared: _bb_st_shared,
    _mo_st_local: _bb_st_local,
    _mo_atomic_global: _bb_atomic_global,
    _mo_atomic_shared: _bb_atomic_shared,
    _mo_barrier: _bb_barrier,
    _mo_intrin: _bb_intrin,
    _mo_math: _bb_math,
    _mo_hook: _bb_hook,
    _mo_call: _bb_call,
    _mo_br: _bb_br,
    _mo_condbr: _bb_condbr,
    _mo_ret: _bb_ret,
}

#: Handlers that only read/write the register file (no events beyond an
#: issue step, no control flow): the JIT trace cache fuses runs of
#: these so the executor can sprint through them without per-op
#: bookkeeping.
_PURE = {
    _bb_gep, _bb_gep_const, _bb_binop, _bb_const, _bb_cast_repr,
    _bb_cast_bool, _bb_cast, _bb_select, _bb_math, _bb_intrin,
}


def _iter_bits(bits: int):
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class _RowIt:
    """Per-row view for ``_model_global`` when rows span CTAs (a gang):
    supplies the row's own ctx (transaction counter, L1 bypass config)
    with the machine's line size and L2 latency."""

    __slots__ = ("ctx", "line_size", "l2_latency")

    def __init__(self, ctx, line_size, l2_latency):
        self.ctx = ctx
        self.line_size = line_size
        self.l2_latency = l2_latency


class BatchedCTA:
    """Masked lock-step machine for one CTA's resident warps.

    Execution (``_exec_step``) advances the shared reconvergence stack
    and appends events; replay (``_replay_visit``) consumes them in the
    serial scheduler's order, pulling the executor forward on demand.
    ``spec`` is the kernel's JIT trace-cache specialization: per decoded
    block, the pre-resolved ``(batched_handler, op, pure_run_len)``
    triples (see :mod:`repro.gpu.jit_cache`).
    """

    def __init__(self, device, ctxs, spec, total_budget: int):
        if not isinstance(ctxs, list):
            ctxs = [ctxs]
        ctx = ctxs[0]
        self.gang = len(ctxs) > 1
        warps = [c.warps[0] for c in ctxs] if self.gang else ctx.warps
        self.device = device
        self.ctx = ctx
        self.warps = warps
        W = len(warps)
        self.W = W
        # Per-row CTA resources: a gang row is one single-warp CTA, so
        # shared memory, transaction counters, and the fallback
        # interpreter are per row; a plain multi-warp CTA shares them.
        self.ctxs = ctxs if self.gang else [ctx] * W
        self.shared_mems = [c.shared_mem for c in self.ctxs]
        if self.gang:
            nb = self.shared_mems[0].nbytes
            stride = -(-nb // 16) * 16  # element alignment per row
            buf = np.zeros((W, stride), dtype=np.uint8)
            for w, c in enumerate(ctxs):
                c.shared_mem._buf = buf[w, :nb]
            self._gang_shared = buf.reshape(-1)
            self._gang_nbytes = nb
            self._gang_row_offs = (
                np.arange(W, dtype=np.int64) * stride
            ).reshape(W, 1)
        ws = warps[0].warp_size
        self.warp_size = ws
        self.line_size = device.arch.l1_line_size
        self.l2_latency = device.arch.l2_latency
        self._row_its = (
            [_RowIt(c, self.line_size, self.l2_latency) for c in ctxs]
            if self.gang else [self] * W
        )
        self._issue_cycles = device.arch.issue_cycles
        self._spec = spec if spec is not None else {}
        self._intrin_cache: Dict[object, object] = {}
        self._sel_cache: Dict[int, np.ndarray] = {}
        self._warps_cache: Dict[int, list] = {}
        self._all = (1 << W) - 1

        # Adopt the per-warp entry frames into one shared activation.
        # Launch binds identical argument values into every warp's
        # frame, so warp 0's register file serves as the shared one.
        f0 = warps[0].frames[-1]
        self.entry_function = f0.function
        mask2d = np.stack([w.frames[-1].stack[0].mask for w in warps])
        frame = _MFrame(
            f0.decoded, list(f0.regs), f0.sp, f0.base_sp, None,
            np.zeros((W, ws), dtype=bool), self._all, None,
        )
        frame.stack.append(_MEntry(f0.decoded.entry, 0, None, mask2d,
                                   self._all))
        self.frames: List[_MFrame] = [frame]
        for w in warps:
            w.frames = []

        # Event log + per-warp replay cursors. ``_wlog[w]`` holds the
        # indices of the events warp ``w`` participates in, so replay
        # never scans past other warps' events (O(own events), not
        # O(all events) -- the log is shared by up to ``W`` rows).
        self._log: list = []
        self._wlog: List[list] = [[] for _ in range(W)]
        self._open = [0, 0, 0]  # [members, count, done] coalesced batch
        self._cursor = [0] * W  # index into _wlog[w]
        self._offset = [0] * W  # intra-batch-event progress

        self._exec_ops = 0
        self._exec_budget = total_budget + 64  # runaway-executor valve
        self._eff_sum = 0    # batching-efficiency monitor: eligible
        self._eff_next = 128   # warps per pick, checked per window
        self._eff_window = 128  # ramps 128 -> 512 -> 2048 as checks pass
        self._exec_done = 0   # warps retired at the execution level
        self._blocked = 0     # warps waiting at a machine-level barrier
        self._ever_split = False
        self.dead = False       # fallback taken: executor frozen
        self._complete = False  # every warp retired at the exec level

        # Dispatch-time temporaries (set per executed micro-op).
        self._frame: Optional[_MFrame] = None
        self._cur: Optional[_MEntry] = None
        self._elig = 0
        self._mask2d: Optional[np.ndarray] = None
        self._sel: Optional[np.ndarray] = None

    # -- gang shared memory (stacked per-row arenas) -------------------------
    def _gang_shared_gather(self, a2d, am2d, dtype):
        result = np.zeros((self.W, self.warp_size), dtype=dtype)
        if not am2d.any():
            return result
        act = a2d[am2d]
        itemsize = dtype.itemsize
        if int(act.min()) < 0 or int(act.max()) + itemsize > self._gang_nbytes:
            raise _Fallback()  # interpreter reproduces the exact fault
        idx = (a2d + self._gang_row_offs)[am2d]
        flat = self._gang_shared
        if itemsize == 1:
            result[am2d] = flat[idx].view(dtype)
        else:
            result[am2d] = flat.view(dtype)[idx // itemsize]
        return result

    def _gang_shared_scatter(self, a2d, am2d, v2d):
        if not am2d.any():
            return
        act = a2d[am2d]
        itemsize = v2d.dtype.itemsize
        if int(act.min()) < 0 or int(act.max()) + itemsize > self._gang_nbytes:
            raise _Fallback()
        idx = (a2d + self._gang_row_offs)[am2d]
        vals = v2d[am2d]
        flat = self._gang_shared
        if itemsize == 1:
            flat[idx] = vals.view(np.uint8)
        else:
            flat.view(v2d.dtype)[idx // itemsize] = vals

    # -- small caches --------------------------------------------------------
    def _row_sel(self, bits: int) -> np.ndarray:
        sel = self._sel_cache.get(bits)
        if sel is None:
            sel = np.zeros((self.W, 1), dtype=bool)
            for w in _iter_bits(bits):
                sel[w, 0] = True
            sel.setflags(write=False)
            self._sel_cache[bits] = sel
        return sel

    def _warps_of(self, bits: int) -> list:
        lst = self._warps_cache.get(bits)
        if lst is None:
            lst = list(_iter_bits(bits))
            self._warps_cache[bits] = lst
        return lst

    @staticmethod
    def _row(a, w: int):
        """Batched register value -> the serial value warp ``w`` holds."""
        if isinstance(a, np.ndarray) and a.ndim == 2:
            return a[w, 0] if a.shape[1] == 1 else a[w]
        return a

    # -- register writes -----------------------------------------------------
    def _set(self, slot: int, value) -> None:
        """Define ``slot`` for the participating warps.

        Full rebind when every warp of the activation participates;
        row-preserving merge otherwise, so a warp re-executing a block
        later (split CTA) cannot corrupt rows it does not own.
        """
        frame = self._frame
        sel = self._sel
        if sel is None:
            frame.regs[slot] = value
        else:
            prev = frame.regs[slot]
            frame.regs[slot] = (
                value if prev is None else np.where(sel, value, prev)
            )

    # -- event log -----------------------------------------------------------
    def _append_ev(self, ev, members: int) -> None:
        idx = len(self._log)
        self._log.append(ev)
        wlog = self._wlog
        warps = self._warps_cache.get(members)
        if warps is None:
            warps = self._warps_of(members)
        for w in warps:
            wlog[w].append(idx)

    def _flush_open(self) -> None:
        o = self._open
        if o[1] or o[2]:
            self._append_ev((_BATCH, o[0], o[1], o[2]), o[0])
            o[0] = 0
            o[1] = 0
            o[2] = 0

    def _log_step(self, n: int = 1) -> None:
        o = self._open
        if o[0] == self._elig:
            o[1] += n
        else:
            self._flush_open()
            o[0] = self._elig
            o[1] = n

    def _emit(self, ev: tuple) -> None:
        self._flush_open()
        self._append_ev(ev, ev[1])

    def _log_extra(self, calls: tuple) -> None:
        self._emit((_EXTRA, self._elig, calls))

    def _log_mem(self, a2d, am2d, width, mode, is_write, post) -> None:
        # Coalesce the whole batch's address matrix here, once, so
        # replay hands each warp a precomputed cache-line list instead
        # of re-running the per-lane Python loop warp by warp.
        elig = self._elig
        ls = self.line_size
        lines_by_w: list = [None] * self.W
        members = self._warps_of(elig)
        if len(members) == 1:
            w = members[0]
            lines_by_w[w] = coalesce_lines(a2d[w], am2d[w], width, ls)
        else:
            # Entry masks are False outside their member rows, so the
            # matrix can be scanned whole.
            rows, lanes = np.nonzero(am2d)
            if len(rows):
                addr = a2d[rows, lanes]
                first = addr // ls
                span = width - 1
                if span:
                    last = (addr + span) // ls
                    straddle = last != first
                    if straddle.any():
                        rows = np.concatenate([rows, rows[straddle]])
                        first = np.concatenate([first, last[straddle]])
                keys = np.unique(
                    (rows.astype(np.int64) << _LINE_SHIFT) + first
                )
                counts = np.bincount(keys >> _LINE_SHIFT, minlength=self.W)
                vals = (keys & _LINE_MASK).tolist()
                pos = 0
                for w in range(self.W):
                    c = int(counts[w])
                    if c:
                        lines_by_w[w] = vals[pos:pos + c]
                    pos += c
            for w in members:
                if lines_by_w[w] is None:
                    lines_by_w[w] = []
        self._emit((_MEM, elig, lines_by_w, mode, is_write, post))

    def _log_hook(self, name, args) -> None:
        cur = self._cur
        # Classify each arg once at emit time so replay can extract a
        # warp's view without per-warp isinstance checks: 0 = shared
        # scalar, 1 = (W, 1) column, 2 = full (W, ws) row. ``None``
        # means every arg is shared and the tuple can be dispatched
        # as-is for all warps (hooks never mutate their args).
        plan = None
        for k, a in enumerate(args):
            if isinstance(a, np.ndarray) and a.ndim == 2:
                if plan is None:
                    plan = [0] * len(args)
                plan[k] = 1 if a.shape[1] == 1 else 2
        self._emit((_HOOK, self._elig, name, tuple(args), cur.mask,
                    tuple(cur.counts), plan))

    # -- executor ------------------------------------------------------------
    _RESCAN = object()

    def _choose(self):
        """Pick the next (frame, entry, eligible-warps) to execute.

        Walks activations newest-first and stacks top-down, mirroring
        each warp's serial priority: a warp executes its topmost entry
        of its innermost frame. Entries that are some warp's top but
        hold no active lanes for it are popped as logged admin steps
        (the serial interpreter's empty-entry / empty-frame pops).

        Re-batching heuristic: an entry waiting at a reconvergence
        point that a sibling entry above it will still pop into is
        *deferred* -- its warps wait for the stragglers so both sides
        merge back into one batch. A deferred pick is only returned
        when nothing else in the CTA can run (progress guarantee).
        """
        above = 0
        deferred = None
        for fi in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[fi]
            stack = frame.stack
            seen = 0
            reconvs = None  # ids of reconv blocks of entries above
            j = len(stack) - 1
            while j >= 0:
                e = stack[j]
                mem = e.members
                if not mem:
                    del stack[j]
                    j -= 1
                    continue
                top_for = mem & ~(above | seen)
                ghosts = top_for & ~e.live
                if ghosts:
                    self._admin_pop(frame, j, ghosts)
                    return self._RESCAN
                if not e.blocked:
                    elig = e.live & top_for
                    if elig:
                        wait = False
                        if e.index == 0 and e.block is not None:
                            if reconvs is not None and id(e.block) in reconvs:
                                wait = True
                            elif e.hint is e.block:
                                # Rendezvous: hold at the branch's
                                # ipostdom while a live sibling class
                                # still shares the hint; clear it once
                                # no sharer remains (sibling returned
                                # or already merged).
                                for o in stack:
                                    if (o is not e and o.hint is e.hint
                                            and o.live):
                                        wait = True
                                        break
                                if not wait:
                                    e.hint = None
                        if not wait:
                            return (frame, e, elig)
                        if deferred is None:
                            deferred = (frame, e, elig)
                seen |= mem
                if e.reconv is not None:
                    if reconvs is None:
                        reconvs = {id(e.reconv)}
                    else:
                        reconvs.add(id(e.reconv))
                j -= 1
            orphans = frame.members & ~(above | seen)
            if orphans:
                self._admin_frame_exit(frame, orphans)
                return self._RESCAN
            above |= frame.members
        return deferred

    def _admin_pop(self, frame, j, ghosts) -> None:
        """Serial "empty top entry" pop: one admin step per warp."""
        e = frame.stack[j]
        e.members &= ~ghosts
        e.live &= e.members
        if not e.members:
            del frame.stack[j]
        self._emit((_ADMIN, ghosts, 1, 0))

    def _admin_frame_exit(self, frame, orphans) -> None:
        """Serial "empty frame stack" pop: one admin step per warp."""
        done = self._frame_exit(frame, orphans)
        self._emit((_ADMIN, orphans, 1, done))

    def _split_entry(self, frame, e, keep: int) -> None:
        """Split ``e``: ``keep`` warps stay in ``e`` (on top), the rest
        move to a twin entry directly below it."""
        rest = e.members & ~keep
        sel = self._row_sel(keep)
        twin = _MEntry(e.block, e.index, e.reconv,
                       np.where(sel, False, e.mask), rest)
        twin.blocked = e.blocked
        twin.hint = e.hint
        e.mask = np.where(sel, e.mask, False)
        e.members = keep
        e.recount()
        frame.stack.insert(frame.stack.index(e), twin)
        self._ever_split = True

    def _merge_frame(self, frame) -> None:
        """Re-batch: coalesce adjacent twin entries that met again."""
        st = frame.stack
        k = 1
        while k < len(st):
            a, b = st[k - 1], st[k]
            if (a.block is b.block and a.index == b.index
                    and a.reconv is b.reconv
                    and not a.blocked and not b.blocked
                    and not (a.members & b.members)):
                a.mask = a.mask | b.mask
                a.members |= b.members
                if a.hint is None:
                    a.hint = b.hint
                a.recount()
                del st[k]
            else:
                k += 1

    def _release_barrier(self) -> bool:
        waiting = self._all & ~self._exec_done
        if not waiting or self._blocked != waiting:
            return False
        self._blocked = 0
        for frame in self.frames:
            for e in frame.stack:
                e.blocked = False
            self._merge_frame(frame)
        return True

    def _exec_step(self) -> bool:
        """Execute one micro-op (or admin cascade). False when frozen."""
        if self.dead or self._complete:
            return False
        try:
            while True:
                pick = self._choose()
                if pick is self._RESCAN:
                    return True
                if pick is not None:
                    break
                if self._release_barrier():
                    continue
                if self._exec_done == self._all:
                    self._complete = True
                    return False
                # Live warps that can never proceed (e.g. a barrier some
                # exited warps will never reach): hand the CTA back so
                # the serial driver raises its exact deadlock diagnostic.
                self._fallback()
                return False
        except (_Fallback, ExecutionError):
            self._fallback()
            return False
        frame, e, elig = pick
        if e.members != elig:
            self._split_entry(frame, e, elig)
        self._eff_sum += elig.bit_count()
        if self._exec_ops >= self._eff_next:
            # Batching-efficiency monitor: a machine whose picks stay
            # near one eligible warp is pure overhead (heavy per-warp
            # divergence, e.g. data-dependent trip counts) -- hand the
            # warps back to the interpreter (always exact) and let the
            # per-kernel fallback counter stop future attempts. The
            # first check comes early (hopeless kernels show mean
            # eligibility near 1 within ~100 ops; healthy ones sit far
            # above threshold) and the window ramps up once passed.
            self._eff_window = min(2048, self._eff_window * 4)
            self._eff_next = self._exec_ops + self._eff_window
            if self._eff_sum < self._exec_ops * min(2.0, 0.45 * self.W):
                self._fallback()
                return False
        block = e.block
        if block is None:
            # Return-divergent branch with no post-dominator: the serial
            # interpreter raises "unstructured control flow" here.
            self._fallback()
            return False
        pairs = self._spec.get(id(block))
        if pairs is None:
            self._fallback()
            return False
        self._exec_ops += 1
        if self._exec_ops > self._exec_budget:
            # Replay would have raised the step-budget error already if
            # this much work were reachable; freeze and let it.
            self._fallback()
            return False
        self._frame = frame
        self._cur = e
        self._elig = elig
        self._mask2d = e.mask
        self._sel = None if elig == frame.members else self._row_sel(elig)
        i = e.index
        if i >= len(pairs):
            self._fallback()
            return False
        handler, op, run = pairs[i]
        if handler is None:
            self._fallback()
            return False
        try:
            if run:  # pure run (possibly length 1): handlers don't log
                end = i + run
                k = i
                try:
                    while k < end:
                        h2, op2, _ = pairs[k]
                        h2(op2, self)
                        k += 1
                finally:
                    if k > i:
                        self._log_step(k - i)
            else:
                handler(op, self)
        except (_Fallback, ExecutionError):
            self._fallback()
            return False
        return True

    # -- control flow --------------------------------------------------------
    def _phi_moves(self, frame, moves, pmask2d, bits) -> None:
        """Parallel-copy phi semantics for the ``bits`` warps, with the
        serial per-warp first-write rule via ``frame.defined``."""
        regs = frame.regs
        ws = self.warp_size
        vals = []
        for dst, src, dtype in moves:
            if type(src) is int:
                v = regs[src]
                if v is None:
                    _undef(frame, src)
                if np.ndim(v) == 0:
                    v = np.full(ws, v, dtype)
                elif (isinstance(v, np.ndarray) and v.ndim == 2
                        and v.shape[1] == 1 and v.dtype != dtype):
                    v = v.astype(dtype)
            else:
                v = src
            vals.append(v)
        for (dst, _, _), v in zip(moves, vals):
            defined = frame.defined.get(dst, 0)
            prev = regs[dst]
            if not defined:
                regs[dst] = v
            else:
                first = bits & ~defined
                rest = bits & defined
                new = np.broadcast_to(prev, (self.W, ws))
                if rest:
                    psel = self._row_sel(rest) & pmask2d
                    new = np.where(psel, v, new)
                if first:
                    new = np.where(self._row_sel(first), v, new)
                regs[dst] = new
            frame.defined[dst] = defined | bits

    def _do_branch(self, frame, e, target, moves) -> None:
        if moves:
            self._phi_moves(frame, moves, e.mask, e.members)
        if e.reconv is target:
            frame.stack.remove(e)
        else:
            e.block = target
            e.index = 0
        self._merge_frame(frame)

    def _exec_condbr(self, op) -> None:
        e = self._cur
        frame = self._frame
        elig = self._elig
        for w in self._warps_of(elig):
            self.warps[w].branch_count += 1
        cond = op.a
        if type(cond) is int:
            cond = frame.regs[cond]
            if cond is None:
                _undef(frame, op.a)
        c2d = np.broadcast_to(
            np.asarray(cond, dtype=np.bool_)
            if np.ndim(cond) == 0 else cond,
            (self.W, self.warp_size),
        )
        mask = e.mask
        t2d = c2d & mask
        n2d = ~c2d & mask
        t_any = t2d.any(axis=1)
        n_any = n2d.any(axis=1)
        div = tak = ntk = 0
        for w in self._warps_of(elig):
            if t_any[w]:
                if n_any[w]:
                    div |= 1 << w
                else:
                    tak |= 1 << w
            else:
                ntk |= 1 << w
        self._log_step()
        classes = [bits for bits in (div, tak, ntk) if bits]
        if len(classes) == 1:
            # Every participating warp agrees (though lanes may still
            # diverge within each warp): keep the batch together.
            if tak:
                self._do_branch(frame, e, op.b[0], op.b[1])
            elif ntk:
                self._do_branch(frame, e, op.c[0], op.c[1])
            else:
                self._diverge(frame, e, op, t2d, n2d)
            return
        # Warps disagree: split the entry into per-class twins, each
        # advanced exactly as its warps' serial interpreters would.
        # Every twin is tagged with the branch's immediate post-dominator
        # as a *rendezvous hint*: the scheduler holds a twin that reaches
        # that block until its sibling classes arrive, so the classes
        # re-merge into one batch instead of racing past each other.
        hint = op.d
        cur = e
        split = []
        for bits in classes[:-1]:
            self._split_entry(frame, cur, bits)
            twin = frame.stack[frame.stack.index(cur) - 1]
            split.append((bits, cur))
            cur = twin
        split.append((classes[-1], cur))
        for bits, ent in split:
            ent.hint = hint
            if bits == tak:
                self._do_branch(frame, ent, op.b[0], op.b[1])
            elif bits == ntk:
                self._do_branch(frame, ent, op.c[0], op.c[1])
            else:
                self._diverge(frame, ent, op, t2d, n2d)

    def _diverge(self, frame, ent, op, t2d, n2d) -> None:
        """Lane-divergent branch for every member warp: serial push."""
        bits = ent.members
        for w in self._warps_of(bits):
            self.warps[w].divergent_branch_count += 1
        reconv = op.d
        ent.block = reconv
        ent.index = 0
        sel = self._row_sel(bits)
        pos = frame.stack.index(ent)
        for (target, moves), p2d in ((op.c, n2d), (op.b, t2d)):
            pmask = np.where(sel, p2d, False)
            if moves:
                self._phi_moves(frame, moves, pmask, bits)
            if target is not reconv:
                pos += 1
                frame.stack.insert(
                    pos, _MEntry(target, 0, reconv, pmask, bits)
                )

    def _exec_call(self, op) -> None:
        e = self._cur
        caller = self._frame
        elig = self._elig
        e.index += 1
        callee = op.b
        new = _MFrame(
            callee, [None] * callee.n_slots, caller.sp, caller.sp,
            op.dst, np.zeros((self.W, self.warp_size), dtype=bool),
            elig, caller,
        )
        new.stack.append(_MEntry(callee.entry, 0, None, e.mask, elig))
        regs = caller.regs
        new_regs = new.regs
        for slot, ref in zip(callee.arg_slots, op.a):
            if type(ref) is int:
                v = regs[ref]
                if v is None:
                    _undef(caller, ref)
            else:
                v = ref
            new_regs[slot] = v
            if elig != self._all:
                new.defined[slot] = elig
        self.frames.append(new)
        self._log_step()

    def _exec_barrier(self, op) -> None:
        e = self._cur
        frame = self._frame
        mask = e.mask
        for w in self._warps_of(self._elig):
            live = self.warps[w].resident_mask & ~frame.returned[w]
            if not np.array_equal(mask[w], live):
                # Divergent __syncthreads(): undefined in CUDA; the
                # interpreter raises with per-warp context.
                raise _Fallback()
        self._emit((_BARRIER, self._elig))
        e.index += 1
        if self.gang:
            # Every row is its own single-warp CTA: __syncthreads() is
            # already satisfied, no machine-level wait needed (replay's
            # _BARRIER event still ends the warp's quantum turn).
            return
        e.blocked = True
        self._blocked |= self._elig

    def _exec_ret(self, op) -> None:
        e = self._cur
        frame = self._frame
        elig = self._elig
        W, ws = self.W, self.warp_size
        mask2d = e.mask
        ref = op.a
        if ref is not None:
            if type(ref) is int:
                value = frame.regs[ref]
                if value is None:
                    _undef(frame, ref)
                if np.ndim(value) == 0:
                    value = np.full(ws, value, frame.decoded.ret_dtype)
                elif (isinstance(value, np.ndarray) and value.ndim == 2
                        and value.shape[1] == 1
                        and value.dtype != frame.decoded.ret_dtype):
                    value = value.astype(frame.decoded.ret_dtype)
            else:
                value = ref
            v2d = np.broadcast_to(value, (W, ws))
            first = elig & ~frame.ret_defined
            rest = elig & frame.ret_defined
            buf = frame.ret_values
            if buf is None:
                buf = np.zeros((W, ws), dtype=v2d.dtype)
            new = buf
            if rest:
                new = np.where(self._row_sel(rest) & mask2d, v2d, new)
            if first:
                new = np.where(self._row_sel(first), v2d, new)
            frame.ret_values = new
            frame.ret_defined |= elig
        # Retire: strip the returned lanes from every entry (serial
        # Warp.retire_lanes), then pop memberships that emptied out.
        frame.returned = frame.returned | mask2d
        for ent in frame.stack:
            if ent.members & elig:
                ent.mask = ent.mask & ~mask2d
                ent.recount()
        self._log_step()
        exited = 0
        stack = frame.stack
        for w in self._warps_of(elig):
            bit = 1 << w
            while True:
                top = None
                for k in range(len(stack) - 1, -1, -1):
                    if stack[k].members & bit:
                        top = stack[k]
                        break
                if top is None:
                    exited |= bit
                    break
                if top.counts[w]:
                    break
                top.members &= ~bit
                top.live &= top.members
                if not top.members:
                    stack.remove(top)
        if exited:
            done = self._frame_exit(frame, exited)
            if done:
                self._open[2] |= done
                self._flush_open()

    def _frame_exit(self, frame, wbits: int) -> int:
        """Warps in ``wbits`` leave ``frame`` (serial ``_pop_frame``).

        Returns the subset that retired the kernel (done bits)."""
        caller = frame.caller
        if caller is None:
            self._exec_done |= wbits
            frame.members &= ~wbits
            if not frame.members:
                self.frames.remove(frame)
            return wbits
        rs = frame.ret_slot
        if rs is not None:
            if wbits & ~frame.ret_defined:
                # Serial raises "@f returned no value" during this pop;
                # the interpreter will, with the exact message.
                raise _Fallback()
            v = frame.ret_values
            prev = caller.regs[rs]
            defined = caller.defined.get(rs, 0)
            first = wbits & ~defined
            rest = wbits & defined
            if prev is None:
                caller.regs[rs] = v
            else:
                new = np.broadcast_to(prev, (self.W, self.warp_size))
                if rest:
                    new = np.where(
                        self._row_sel(rest) & frame.returned, v, new
                    )
                if first:
                    new = np.where(self._row_sel(first), v, new)
                caller.regs[rs] = new
            caller.defined[rs] = defined | wbits
        frame.members &= ~wbits
        if not frame.members:
            caller.sp = frame.base_sp
            self.frames.remove(frame)
        return 0

    # -- fallback ------------------------------------------------------------
    def _fallback(self) -> None:
        """Freeze the executor and rebuild per-warp interpreter frames.

        Nothing was mutated for the op that triggered this, so each
        warp resumes serially at exactly its logged position; pending
        events still replay normally (they only touch counters, hooks
        and the memory model, never frames)."""
        if self.dead:
            return
        self.dead = True
        self._flush_open()
        for w, warp in enumerate(self.warps):
            bit = 1 << w
            if self._exec_done & bit:
                continue  # its done event is already in the log
            frames = []
            for mf in self.frames:
                if not (mf.members & bit):
                    continue
                entries = [
                    (ent.block, ent.index, ent.reconv, ent.mask[w].copy())
                    for ent in mf.stack
                    if ent.members & bit
                ]
                regs: List[Optional[np.ndarray]] = []
                for slot, v in enumerate(mf.regs):
                    dbits = mf.defined.get(slot)
                    if v is None or (dbits is not None
                                     and not (dbits & bit)):
                        regs.append(None)
                    else:
                        regs.append(self._row(v, w))
                rv = None
                if mf.ret_values is not None and (mf.ret_defined & bit):
                    rv = mf.ret_values[w].copy()
                frames.append(Frame.resume_multi(
                    mf.decoded, entries, regs, mf.sp, mf.base_sp,
                    mf.ret_slot, mf.returned[w].copy(), rv,
                ))
            warp.frames = frames

    # -- replay --------------------------------------------------------------
    def _pull(self, w: int) -> bool:
        """Advance the executor until warp ``w`` has a replayable event."""
        bit = 1 << w
        wl = self._wlog[w]
        while True:
            if self._cursor[w] < len(wl):
                return True
            if self._open[1] and (self._open[0] & bit):
                self._flush_open()
                return True
            if not self._exec_step():
                return False

    def _replay_visit(self, w, warp, quantum, rotate_on_mem, steps,
                      budget) -> int:
        """Replay warp ``w``'s events: the serial ``_visit_warp``."""
        bit = 1 << w
        ctx = self.ctxs[w]
        timing = ctx.timing
        issue = self._issue_cycles
        consumed = 0
        wl = self._wlog[w]
        log = self._log
        cursor = self._cursor
        dispatch = ctx.hooks.dispatch
        hook_call = timing.hook_call
        while consumed < quantum:
            i = cursor[w]
            if i >= len(wl):
                if self._open[1] and (self._open[0] & bit):
                    self._flush_open()
                    continue
                if not self.dead and not self._complete:
                    self._pull(w)
                    continue
                if self.dead:
                    # Continue this visit on the interpreter with the
                    # frames materialized at fallback time.
                    return self.device._visit_warp(
                        ctx.interp, warp, quantum - consumed,
                        rotate_on_mem, steps, budget,
                    )
                break  # complete: no further events can involve w
            ev = log[wl[i]]
            kind = ev[0]
            if kind == _BATCH or kind == _ADMIN:
                count = ev[2]
                off = self._offset[w]
                avail = count - off
                room = quantum - consumed
                take = avail if avail < room else room
                dies = bool(ev[3] & bit) and take == avail
                # The step that retires the warp skips the budget check
                # (serial: `if warp.done: break` comes first).
                limit = budget + 1 if dies else budget
                if steps + take > limit:
                    over = budget - steps + 1
                    if kind == _BATCH:
                        warp.instructions_executed += over
                        timing.cycles += over * issue
                    raise ExecutionError(
                        "kernel exceeded the step budget (infinite loop?)"
                    )
                if kind == _BATCH:
                    warp.instructions_executed += take
                    timing.cycles += take * issue
                steps += take
                consumed += take
                if take < avail:
                    self._offset[w] = off + take
                    return steps
                self._offset[w] = 0
                cursor[w] = i + 1
                if dies:
                    warp.status = WarpStatus.DONE
                    warp.frames = []
                    return steps
            elif kind == _EXTRA:
                warp.instructions_executed += 1
                timing.cycles += issue
                for meth, args in ev[2]:
                    getattr(timing, meth)(int(args[w]))
                steps += 1
                consumed += 1
                cursor[w] = i + 1
                if steps > budget:
                    raise ExecutionError(
                        "kernel exceeded the step budget (infinite loop?)"
                    )
            elif kind == _MEM:
                _, _, lines_by_w, mode, is_write, post = ev
                warp.instructions_executed += 1
                timing.cycles += issue
                _model_global_lines(self._row_its[w], warp, lines_by_w[w],
                                    mode, is_write)
                if post:
                    for meth, args in post:
                        getattr(timing, meth)(int(args[w]))
                steps += 1
                consumed += 1
                cursor[w] = i + 1
                if steps > budget:
                    raise ExecutionError(
                        "kernel exceeded the step budget (infinite loop?)"
                    )
                if rotate_on_mem:
                    return steps
            elif kind == _HOOK:
                _, _, name, args, am2d, nact, plan = ev
                warp.instructions_executed += 1
                timing.cycles += issue
                na = nact[w]
                hook_call(na)
                if plan is None:
                    row_args = args
                else:
                    row_args = [
                        a if c == 0 else a[w, 0] if c == 1 else a[w]
                        for c, a in zip(plan, args)
                    ]
                dispatch(name, row_args, am2d[w], warp, ctx, na)
                steps += 1
                consumed += 1
                cursor[w] = i + 1
                if steps > budget:
                    raise ExecutionError(
                        "kernel exceeded the step budget (infinite loop?)"
                    )
            else:  # _BARRIER
                warp.instructions_executed += 1
                timing.cycles += issue
                cursor[w] = i + 1
                warp.status = WarpStatus.AT_BARRIER
                return steps
        return steps

    def run_round(self, quantum, rotate_on_mem, steps, total_budget,
                  rows=None):
        """One scheduler round over the machine's warps.

        ``rows`` restricts the round to a subset of row indices: a
        launch-wide gang spans several SMs, and each SM's drive loop
        replays only its own rows (execution is pull-driven, so the
        lock-step executor still advances all rows together).

        Returns ``(steps, progressed, debatched)``; ``debatched`` turns
        True once a fallback has fully drained and the CTA should hand
        its warps to the serial driver."""
        progressed = False
        for w in (range(self.W) if rows is None else rows):
            warp = self.warps[w]
            if warp.status is not WarpStatus.READY:
                continue
            before = steps
            steps = self._replay_visit(
                w, warp, quantum, rotate_on_mem, steps, total_budget
            )
            if steps != before:
                progressed = True
        return steps, progressed, self._drained()

    def _drained(self) -> bool:
        if not self.dead:
            return False
        for w, warp in enumerate(self.warps):
            if warp.done:
                continue
            if self._cursor[w] < len(self._wlog[w]):
                return False
        return True


def _max_resident_ctas(device, image) -> int:
    max_resident = device.arch.max_ctas_per_sm
    if image.shared_bytes_per_cta > 0:
        by_shared = device.arch.shared_mem_per_sm // image.shared_bytes_per_cta
        max_resident = max(1, min(max_resident, by_shared))
    return max_resident


def form_launch_gangs(device, sms, image, total_budget: int) -> None:
    """Launch-wide batching pre-pass for the batched backend.

    Stages each SM's initial resident set, then fuses *single-warp*
    CTAs into lock-step gang machines **across SMs**: grids that
    round-robin one small CTA per SM (e.g. nw's 16-thread tiles) would
    otherwise never see two batchable warps on the same SM. Rows are
    ordered SM-major (the serial driver runs SMs to completion in
    index order), and each SM's drive loop replays only its own rows.
    Multi-warp CTAs get their usual per-CTA machine here too, since
    ``run_sm_batched``'s refill only sees CTAs it stages itself.
    """
    max_resident = _max_resident_ctas(device, image)
    fresh = []
    for index in sorted(sms):
        sm = sms[index]
        while sm.pending and len(sm.resident) < max_resident:
            ctx = sm.pending.pop(0)
            ctx.interp = WarpInterpreter(ctx)
            ctx.batched = None
            sm.resident.append(ctx)
            fresh.append(ctx)
    if not fresh:
        return
    fn = fresh[0].warps[0].frames[-1].function
    if (device._batch_fallbacks.get(fn.name, 0)
            >= device.batch_fallback_limit):
        return
    singles = [c for c in fresh if len(c.warps) == 1]
    for ctx in fresh:
        if len(ctx.warps) >= 2:
            ctx.batched = BatchedCTA(
                device, ctx, device._launch_spec, total_budget
            )
    width = device.batch_gang_width
    for i in range(0, len(singles), width):
        members = singles[i: i + width]
        if len(members) < 2:
            break
        machine = BatchedCTA(
            device, members, device._launch_spec, total_budget
        )
        for row, c in enumerate(members):
            c.batched = machine
            c.gang_row = row


def run_sm_batched(device, sm, image, total_budget: int) -> int:
    """Drive one SM with batched CTAs; mirrors ``Device._run_sm``."""
    steps = 0
    quantum = device.scheduler_quantum if device.scheduler == "gto" else 1
    rotate_on_mem = device.scheduler == "gto"
    finished: list = []

    max_resident = _max_resident_ctas(device, image)

    def form_machines(fresh) -> None:
        """Attach batched machines to newly-resident CTAs.

        A multi-warp CTA gets its own machine. Consecutive runs of
        *single-warp* CTAs -- where per-CTA batching has nothing to
        batch -- are fused into one **gang** machine whose rows are the
        CTAs' lone warps: they execute the same kernel from the same
        launch in lock step, with per-row shared-memory arenas and
        trivially-satisfied barriers. Contiguity preserves the serial
        scheduler's replay order (rows replay in resident order, with
        no other CTA interleaved between gang members).
        """
        i = 0
        n = len(fresh)
        while i < n:
            ctx = fresh[i]
            fn = ctx.warps[0].frames[-1].function
            if (device._batch_fallbacks.get(fn.name, 0)
                    >= device.batch_fallback_limit):
                i += 1
                continue
            if len(ctx.warps) >= 2:
                ctx.batched = BatchedCTA(
                    device, ctx, device._launch_spec, total_budget
                )
                i += 1
                continue
            j = i
            while (j < n and len(fresh[j].warps) == 1
                   and j - i < device.batch_gang_width):
                j += 1
            if j - i >= 2:
                members = fresh[i:j]
                machine = BatchedCTA(
                    device, members, device._launch_spec, total_budget
                )
                for row, c in enumerate(members):
                    c.batched = machine
                    c.gang_row = row
            i = max(j, i + 1)

    def refill() -> None:
        added = []
        while sm.pending and len(
            [c for c in sm.resident if c not in finished]
        ) < max_resident:
            ctx = sm.pending.pop(0)
            ctx.interp = WarpInterpreter(ctx)
            ctx.batched = None
            sm.resident.append(ctx)
            added.append(ctx)
        if added:
            form_machines(added)
        live_warps = sum(
            1
            for c in sm.resident
            if c not in finished
            for w in c.warps
            if not w.done
        )
        sm.timing.set_resident_warps(live_warps)

    refill()
    while True:
        active_ctxs = [c for c in sm.resident if c not in finished]
        if not active_ctxs:
            break
        progressed = False
        ran: set = set()       # machines already run this round
        retired: list = []     # machines that drained after a fallback
        for ctx in active_ctxs:
            machine = getattr(ctx, "batched", None)
            if machine is not None:
                # A gang machine spans several CTAs: run it once, at
                # its first member's slot (rows replay in member
                # order, matching the serial scheduler's CTA order).
                if id(machine) not in ran:
                    ran.add(id(machine))
                    rows = None
                    if machine.gang:
                        rows = [
                            c.gang_row for c in active_ctxs
                            if getattr(c, "batched", None) is machine
                        ]
                    steps, progress, debatched = machine.run_round(
                        quantum, rotate_on_mem, steps, total_budget, rows
                    )
                    progressed = progressed or progress
                    if debatched:
                        retired.append(machine)
                        name = machine.entry_function.name
                        device._batch_fallbacks[name] = (
                            device._batch_fallbacks.get(name, 0) + 1
                        )
            else:
                for warp in ctx.warps:
                    if warp.status != WarpStatus.READY:
                        continue
                    before = steps
                    steps = device._visit_warp(
                        ctx.interp, warp, quantum, rotate_on_mem, steps,
                        total_budget,
                    )
                    progressed = progressed or steps != before
            live = [w for w in ctx.warps if not w.done]
            if live and all(
                w.status == WarpStatus.AT_BARRIER for w in live
            ):
                for w in live:
                    w.status = WarpStatus.READY
                progressed = True
            if all(w.done for w in ctx.warps):
                finished.append(ctx)
                refill()
        for machine in retired:
            # Detach only after the round: members later in the list
            # already had their quantum replayed by the machine.
            for c in machine.ctxs:
                c.batched = None
        if not progressed:
            raise ExecutionError(
                "SM deadlock: warps waiting at a barrier that can never "
                "complete (diverged exits before __syncthreads()?)"
            )
    return steps
