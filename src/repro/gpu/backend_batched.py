"""The batched-warp execution backend (``device.backend = "batched"``).

Executes all resident warps of a CTA *together*, one micro-op at a time,
as vectorized numpy operations over ``(num_warps, warp_size)`` arrays --
one interpreter dispatch per CTA-wide instruction instead of one per
warp. This is legal exactly while the CTA's warps are in lock-step on
the same control path, which is the common case for the regular
Rodinia/Polybench kernels of the paper; the first micro-op that breaks
lock-step (a warp-divergent or warp-varying branch) or that has no
batched equivalent *de-batches* the CTA back onto the per-warp
:class:`~repro.gpu.interpreter.WarpInterpreter`, permanently for that
CTA.

Byte-identity with the interpreter backend (the contract pinned by
``tests/test_fastpath_equivalence.py`` and documented in
``docs/architecture.md``) follows from three properties of the
simulator:

1. Under the greedy-then-oldest scheduler, the serial event order of
   lock-step warps is *segment-major*: warp 0 runs a whole scheduling
   segment (until a global-memory access, ``scheduler_quantum``
   instructions, or a barrier), then warp 1 runs the same ops, and so
   on. So the batched stepper executes ops CTA-wide but *defers every
   observable side effect* -- hook dispatches, cycle costs, cache/MSHR
   traffic -- into per-segment buffers, and flushes them warp-by-warp in
   warp order at the segment boundary, reproducing the serial order
   exactly.
2. All intra-segment cycle costs (issue, shared access, hooks, atomics)
   are integer-valued and additive, so accumulating them per warp and
   adding them in one go at flush time is bit-exact.
3. The only cycle-*reading* consumer, the MSHR file, is only touched by
   the segment-final global-memory op, which is modeled per warp at
   flush time via the same :func:`repro.gpu.decode._model_global` the
   interpreter uses -- after that warp's deferred costs were added.

Register values are numpy arrays broadcastable to ``(W, warp_size)``:
scalars and decode-time ``(warp_size,)`` immediates are shared by every
warp, ``(W, 1)`` columns are per-warp uniform values (the counterpart of
a serial scalar register), ``(W, warp_size)`` is fully lane-varying.

Known caveat (shared with real GPUs, where it is a data race): warps
that communicate through shared memory *within one scheduling segment
without a barrier* can observe each other's writes in a different order
than the serial interpreter. ``__syncthreads()`` ends the segment, so
properly synchronized kernels are unaffected.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.decode import (
    _I64,
    _ONE_LANE,
    _model_global,
    _mo_alloca,
    _mo_atomic_global,
    _mo_atomic_shared,
    _mo_barrier,
    _mo_binop,
    _mo_br,
    _mo_call,
    _mo_cast,
    _mo_cast_bool,
    _mo_cast_repr,
    _mo_condbr,
    _mo_const,
    _mo_gep,
    _mo_gep_const,
    _mo_hook,
    _mo_intrin,
    _mo_ld_const,
    _mo_ld_global,
    _mo_ld_local,
    _mo_ld_shared,
    _mo_math,
    _mo_ret,
    _mo_select,
    _mo_st_global,
    _mo_st_local,
    _mo_st_shared,
    _undef,
)
from repro.gpu.interpreter import WarpInterpreter
from repro.gpu.simt import Frame, WarpStatus
from repro.gpu.vecops import _apply_math, _bank_conflict_degrees


class _Debatch(Exception):
    """Internal signal: this micro-op cannot run batched; fall back."""


class _BFrame:
    """One function activation of a whole CTA (lock-step warps).

    The batched counterpart of :class:`repro.gpu.simt.Frame`: because
    control flow is uniform, there is no reconvergence stack -- just the
    current block and op index.
    """

    __slots__ = ("decoded", "block", "index", "regs", "sp", "base_sp",
                 "ret_slot")

    def __init__(self, decoded, block, index, regs, sp, base_sp, ret_slot):
        self.decoded = decoded
        self.block = block
        self.index = index
        self.regs = regs
        self.sp = sp
        self.base_sp = base_sp
        self.ret_slot = ret_slot

    @property
    def function(self):  # _undef renders "@{frame.function.name}"
        return self.decoded.function


# -- operand helpers ---------------------------------------------------------
def _get(m, ref):
    """Register slot or immediate -> batched value."""
    if type(ref) is int:
        v = m.frames[-1].regs[ref]
        if v is None:
            _undef(m.frames[-1], ref)
        return v
    return ref


def _addr2d(m, ref) -> np.ndarray:
    """Resolve an address operand to a ``(W, warp_size)`` view."""
    a = np.asarray(_get(m, ref))
    if a.ndim == 0:
        a = np.full(m.warp_size, a, _I64)  # matches _read_addrs
    return np.broadcast_to(a, (m.W, m.warp_size))


def _store2d(m, op) -> np.ndarray:
    """Resolve a store-value operand (op.b, dtype op.c) to (W, warp_size)."""
    v = op.b
    if type(v) is int:
        v = m.frames[-1].regs[v]
        if v is None:
            _undef(m.frames[-1], op.b)
    v = np.asarray(v)
    dtype = op.c
    if v.ndim == 0:
        v = np.full(m.warp_size, v, dtype)  # matches _read_store_value
    elif v.dtype != dtype:
        v = v.astype(dtype)
    return np.broadcast_to(v, (m.W, m.warp_size))


# -- batched micro-op handlers ----------------------------------------------
# Same contract as the serial handlers in repro.gpu.decode, but one call
# executes the op for every warp of the CTA. A handler must raise
# _Debatch *before* any state mutation if the op cannot run batched.
def _bb_alloca(op, m):
    frame = m.frames[-1]
    size = op.a
    addr = (frame.sp + size - 1) // size * size
    frame.sp = addr + size * op.b
    if frame.sp > m.warps[0].local_mem.arena_size:
        raise ExecutionError("kernel thread stack overflow (too many allocas)")
    frame.regs[op.dst] = _I64(addr)
    frame.index += 1


def _bb_gep(op, m):
    frame = m.frames[-1]
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    index = frame.regs[op.b]
    if index is None:
        _undef(frame, op.b)
    frame.regs[op.dst] = base + index.astype(_I64) * op.c
    frame.index += 1


def _bb_gep_const(op, m):
    frame = m.frames[-1]
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    frame.regs[op.dst] = base + op.b
    frame.index += 1


def _bb_binop(op, m):
    frame = m.frames[-1]
    a = op.a
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.a)
    b = op.b
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.b)
    frame.regs[op.dst] = op.c(a, b, m.masks)
    frame.index += 1


def _bb_const(op, m):
    frame = m.frames[-1]
    frame.regs[op.dst] = op.a
    frame.index += 1


def _bb_cast_repr(op, m):
    frame = m.frames[-1]
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    if op.b is not None and v.ndim and v.dtype != op.b:
        # (W, 1) columns are the batched form of a serial *scalar*
        # register, and the serial scalar path skips the reinterpret.
        if not (v.ndim == 2 and v.shape[1] == 1):
            v = v.view(op.b)
    frame.regs[op.dst] = v
    frame.index += 1


def _bb_cast_bool(op, m):
    frame = m.frames[-1]
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    frame.regs[op.dst] = (np.asarray(v) & 1).astype(np.bool_)
    frame.index += 1


def _bb_cast(op, m):
    frame = m.frames[-1]
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    frame.regs[op.dst] = np.asarray(v).astype(op.b)
    frame.index += 1


def _bb_select(op, m):
    frame = m.frames[-1]
    c = op.a
    if type(c) is int:
        c = frame.regs[c]
        if c is None:
            _undef(frame, op.a)
    if np.ndim(c) == 0:
        c = np.full(m.warp_size, c, np.bool_)
    a = op.b
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.b)
    b = op.c
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.c)
    frame.regs[op.dst] = np.where(c, a, b)
    frame.index += 1


def _bb_ld_global(op, m):
    a2d = _addr2d(m, op.a)
    m._pend_mem(a2d, op.c, op.d, False)
    frame = m.frames[-1]
    frame.regs[op.dst] = m.ctx.global_mem.gather(
        a2d.reshape(-1), m.masks_flat, op.b
    ).reshape(m.W, m.warp_size)
    frame.index += 1
    return "mem"


def _bb_st_global(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    m._pend_mem(a2d, op.c.itemsize, op.d, True)
    mem = m.ctx.global_mem
    masks = m.masks
    for w in range(m.W):  # warp order: last-lane/last-warp wins, as serial
        mem.scatter(a2d[w], masks[w], v2d[w])
    m.frames[-1].index += 1
    return "mem"


def _bb_ld_shared(op, m):
    a2d = _addr2d(m, op.a)
    m._pending += m._shared_cycles * np.maximum(
        1, _bank_conflict_degrees(a2d, m.masks)
    )
    frame = m.frames[-1]
    frame.regs[op.dst] = m.ctx.shared_mem.gather(
        a2d.reshape(-1), m.masks_flat, op.b
    ).reshape(m.W, m.warp_size)
    frame.index += 1


def _bb_st_shared(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    m._pending += m._shared_cycles * np.maximum(
        1, _bank_conflict_degrees(a2d, m.masks)
    )
    shared = m.ctx.shared_mem
    masks = m.masks
    for w in range(m.W):
        shared.scatter(a2d[w], masks[w], v2d[w])
    m.frames[-1].index += 1


def _bb_ld_local(op, m):
    a2d = _addr2d(m, op.a)
    frame = m.frames[-1]
    frame.regs[op.dst] = np.stack([
        warp.local_mem.gather(a2d[w], m.masks[w], op.b)
        for w, warp in enumerate(m.warps)
    ])
    frame.index += 1


def _bb_st_local(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    for w, warp in enumerate(m.warps):
        warp.local_mem.scatter(a2d[w], m.masks[w], v2d[w])
    m.frames[-1].index += 1


def _bb_ld_const(op, m):
    a2d = _addr2d(m, op.a)
    frame = m.frames[-1]
    frame.regs[op.dst] = m.ctx.image.constant_gather(
        a2d.reshape(-1), m.masks_flat, op.b
    ).reshape(m.W, m.warp_size)
    frame.index += 1


def _run_atomic_all(m, op, a2d, v2d, arena):
    """Serial read-modify-write per lane, warp-major -- the order the
    interpreter's per-warp visits produce, so old values are identical."""
    dtype = op.c
    old = np.zeros((m.W, m.warp_size), dtype=dtype)
    apply_op = op.d
    for w in range(m.W):
        lanes = np.flatnonzero(m.masks[w])
        addrs = a2d[w]
        vals = v2d[w]
        row = old[w]
        for lane in lanes:
            addr = addrs[lane: lane + 1]
            current = arena.gather(addr, _ONE_LANE, dtype)[0]
            row[lane] = current
            arena.scatter(
                addr, _ONE_LANE,
                np.array([apply_op(current, vals[lane])], dtype=dtype),
            )
    m._pending += m._atomic_per_lane * m.nactive_arr
    frame = m.frames[-1]
    frame.regs[op.dst] = old
    frame.index += 1


def _bb_atomic_global(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    m._pend_mem(a2d, op.c.itemsize, 1, True)  # atomics bypass L1
    _run_atomic_all(m, op, a2d, v2d, m.ctx.global_mem)
    return "mem"


def _bb_atomic_shared(op, m):
    a2d = _addr2d(m, op.a)
    v2d = _store2d(m, op)
    m._pending += m._shared_cycles * np.maximum(
        1, _bank_conflict_degrees(a2d, m.masks)
    )
    _run_atomic_all(m, op, a2d, v2d, m.ctx.shared_mem)


def _bb_barrier(op, m):
    # Serial raises on a divergent barrier; lock-step warps always
    # arrive with mask == live lanes, so no check is needed here.
    m.frames[-1].index += 1
    return "barrier"


def _bb_intrin(op, m):
    cache = m._intrin_cache
    v = cache.get(op.a)
    if v is None:
        vals = [op.a(w) for w in m.warps]
        first = vals[0]
        if np.ndim(first) == 0:
            col = np.array(vals)
            v = first if (col == first).all() else col.reshape(m.W, 1)
        else:
            stacked = np.stack(vals)
            v = first if (stacked == first).all() else stacked
        cache[op.a] = v
    frame = m.frames[-1]
    frame.regs[op.dst] = v
    frame.index += 1


def _bb_math(op, m):
    frame = m.frames[-1]
    regs = frame.regs
    args = []
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            if np.ndim(v) == 0:
                v = np.full(m.warp_size, v, v.dtype)
        else:
            v = r
        args.append(v)
    regs[op.dst] = _apply_math(op.b, args, m.masks)
    frame.index += 1


def _bb_hook(op, m):
    frame = m.frames[-1]
    regs = frame.regs
    args = []
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            args.append(v)
        else:
            args.append(r)
    m._pending += m._hook_pending
    m._hook_events.append((op.b, args))
    frame.index += 1


def _bb_call(op, m):
    frame = m.frames[-1]
    frame.index += 1  # resume after the call on return
    callee = op.b
    new = _BFrame(callee, callee.entry, 0, [None] * callee.n_slots,
                  frame.sp, frame.sp, op.dst)
    regs = frame.regs
    new_regs = new.regs
    for slot, ref in zip(callee.arg_slots, op.a):
        if type(ref) is int:
            v = regs[ref]
            if v is None:
                _undef(frame, ref)
        else:
            v = ref
        new_regs[slot] = v
    m.frames.append(new)


def _apply_phi_moves_all(m, frame, moves):
    regs = frame.regs
    vals = []
    for dst, src, dtype in moves:
        if type(src) is int:
            v = regs[src]
            if v is None:
                _undef(frame, src)
            if np.ndim(v) == 0:
                v = np.full(m.warp_size, v, dtype)
            elif v.ndim == 2 and v.shape[1] == 1 and v.dtype != dtype:
                v = v.astype(dtype)  # serial scalars are cast by np.full
        else:
            v = src
        vals.append(v)
    full = m._all_resident
    for (dst, _, _), v in zip(moves, vals):
        prev = regs[dst]
        if full or prev is None:
            # Serial writes v to every lane here too (np.where under a
            # full mask, or the first definition's v.copy()).
            regs[dst] = v
        else:
            # Partially-resident warps: dead lanes keep their previous
            # values, exactly as the serial masked merge leaves them.
            regs[dst] = np.where(m.masks, v, prev)


def _do_branch_all(m, edge):
    target, moves = edge
    frame = m.frames[-1]
    if moves:
        _apply_phi_moves_all(m, frame, moves)
    frame.block = target
    frame.index = 0


def _bb_br(op, m):
    _do_branch_all(m, (op.a, op.b))


def _bb_condbr(op, m):
    frame = m.frames[-1]
    c = op.a
    if type(c) is int:
        c = frame.regs[c]
        if c is None:
            _undef(frame, op.a)
    cond = np.broadcast_to(np.asarray(c), (m.W, m.warp_size))
    taken = cond & m.masks
    not_taken = ~cond & m.masks
    if not not_taken.any():
        edge = op.b
    elif not taken.any():
        edge = op.c
    else:
        # In-warp divergence, or warps going different ways: the CTA
        # leaves lock-step. Raised before any mutation, so the serial
        # interpreter re-executes this branch (and counts it).
        raise _Debatch()
    for warp in m.warps:
        warp.branch_count += 1
    _do_branch_all(m, edge)


def _bb_ret(op, m):
    frame = m.frames[-1]
    value = None
    ref = op.a
    if ref is not None:
        if type(ref) is int:
            value = frame.regs[ref]
            if value is None:
                _undef(frame, ref)
            ret_dtype = frame.decoded.ret_dtype
            if np.ndim(value) == 0:
                value = np.full(m.warp_size, value, ret_dtype)
            elif (value.ndim == 2 and value.shape[1] == 1
                  and value.dtype != ret_dtype):
                value = value.astype(ret_dtype)
        else:
            value = ref
    m.frames.pop()
    if not m.frames:
        for warp in m.warps:
            warp.status = WarpStatus.DONE
            warp.frames = []
        return "done"
    caller = m.frames[-1]
    if frame.ret_slot is not None:
        if value is None:
            raise ExecutionError(f"@{frame.decoded.name} returned no value")
        caller.regs[frame.ret_slot] = value
    caller.sp = frame.base_sp  # rewind the local stack
    return None


#: Serial handler identity -> batched equivalent. Handlers absent here
#: (_mo_raise, _mo_fell_off, _mo_unexpected_phi, and any future micro-op)
#: de-batch the CTA, so the interpreter raises/handles them with exact
#: per-warp state -- the backend contract's automatic-fallback rule.
_BATCHED = {
    _mo_alloca: _bb_alloca,
    _mo_gep: _bb_gep,
    _mo_gep_const: _bb_gep_const,
    _mo_binop: _bb_binop,
    _mo_const: _bb_const,
    _mo_cast_repr: _bb_cast_repr,
    _mo_cast_bool: _bb_cast_bool,
    _mo_cast: _bb_cast,
    _mo_select: _bb_select,
    _mo_ld_global: _bb_ld_global,
    _mo_ld_shared: _bb_ld_shared,
    _mo_ld_local: _bb_ld_local,
    _mo_ld_const: _bb_ld_const,
    _mo_st_global: _bb_st_global,
    _mo_st_shared: _bb_st_shared,
    _mo_st_local: _bb_st_local,
    _mo_atomic_global: _bb_atomic_global,
    _mo_atomic_shared: _bb_atomic_shared,
    _mo_barrier: _bb_barrier,
    _mo_intrin: _bb_intrin,
    _mo_math: _bb_math,
    _mo_hook: _bb_hook,
    _mo_call: _bb_call,
    _mo_br: _bb_br,
    _mo_condbr: _bb_condbr,
    _mo_ret: _bb_ret,
}


class BatchedCTA:
    """Lock-step executor for one CTA's warps.

    Created at CTA residency when the CTA has >= 2 warps; ``run_round``
    executes one scheduling round (the batched equivalent of the
    per-warp quantum visits in ``Device._run_sm``) and either stays
    batched or de-batches onto ``ctx.interp`` forever.
    """

    def __init__(self, device, ctx):
        self.device = device
        self.ctx = ctx
        warps = ctx.warps
        self.warps = warps
        self.W = len(warps)
        self.warp_size = warps[0].warp_size
        self.masks = np.stack([w.resident_mask for w in warps])
        self.masks_flat = self.masks.reshape(-1)
        self.nactive_arr = self.masks.sum(axis=1)
        self._nactive_int = [int(n) for n in self.nactive_arr]
        self._all_resident = bool(self.masks.all())

        arch = ctx.arch
        # _model_global reads these three names off its `it` argument.
        self.line_size = arch.l1_line_size
        self.l2_latency = arch.l2_latency
        self._issue_cycles = arch.issue_cycles
        p = ctx.timing.params
        self._shared_cycles = p.shared_access_cycles
        self._atomic_per_lane = p.atomic_cycles_per_lane
        self._hook_pending = (
            p.hook_call_cycles
            + self.nactive_arr * (p.hook_lane_cycles + p.hook_atomic_cycles)
        ).astype(np.float64)

        # Adopt the entry frames _build_sms pushed (identical across the
        # CTA's warps: same decoded kernel, same bound-argument scalars).
        f0 = warps[0].frames[-1]
        self.entry_function = f0.function
        entry = f0.stack[0]
        self.frames: List[_BFrame] = [_BFrame(
            f0.decoded, entry.block, entry.index, list(f0.regs),
            f0.sp, f0.base_sp, f0.ret_slot,
        )]
        for warp in warps:
            warp.frames = []

        self._intrin_cache = {}
        # Deferred per-segment side effects (flushed warp-major).
        self._pending = np.zeros(self.W, dtype=np.float64)
        self._hook_events: List[tuple] = []
        self._seg_mem: Optional[tuple] = None
        self._seg_steps = 0
        self._seg_instr = 0

    # -- segment-state plumbing ---------------------------------------------
    def _pend_mem(self, a2d, width, mode, is_write) -> None:
        if self._seg_mem is not None:
            raise ExecutionError(
                "batched backend invariant violated: two global-memory "
                "micro-ops in one scheduling segment"
            )
        self._seg_mem = (a2d, width, mode, is_write)

    def _row(self, v, w):
        """Extract warp ``w``'s view of a batched value (hook replay)."""
        if getattr(v, "ndim", 0) == 2:
            return v[w, 0] if v.shape[1] == 1 else v[w]
        return v

    def _row_reg(self, v, w):
        """Like :meth:`_row` but preserves ``None`` (undefined slots)."""
        if v is None or getattr(v, "ndim", 0) != 2:
            return v
        return v[w, 0] if v.shape[1] == 1 else v[w]

    def _replay_warp(self, w: int, warp) -> None:
        """Apply one warp's share of the deferred segment side effects,
        in the order the serial interpreter would have produced them."""
        ctx = self.ctx
        timing = ctx.timing
        instr = self._seg_instr
        warp.instructions_executed += instr
        timing.cycles += instr * self._issue_cycles + float(self._pending[w])
        events = self._hook_events
        if events:
            hooks = ctx.hooks
            mask = self.masks[w]
            nactive = self._nactive_int[w]
            for name, args in events:
                hooks.dispatch(
                    name, [self._row(a, w) for a in args],
                    mask, warp, ctx, nactive,
                )
        mem = self._seg_mem
        if mem is not None:
            a2d, width, mode, is_write = mem
            _model_global(self, warp, a2d[w], self.masks[w], width, mode,
                          is_write)

    def _reset_segment(self) -> None:
        self._hook_events.clear()
        self._pending[:] = 0.0
        self._seg_mem = None
        self._seg_instr = 0
        self._seg_steps = 0

    def _flush(self) -> None:
        if self._seg_instr or self._hook_events or self._seg_mem is not None:
            for w, warp in enumerate(self.warps):
                self._replay_warp(w, warp)
        self._reset_segment()

    # -- execution -----------------------------------------------------------
    def run_round(self, quantum: int, rotate_on_mem: bool, steps: int,
                  total_budget: int):
        """One scheduling round for the whole CTA.

        Returns ``(steps, progressed, debatched)`` with ``steps`` already
        advanced by every warp's executed instructions.
        """
        frames = self.frames
        table = _BATCHED
        outcome = None
        while self._seg_steps < quantum:
            frame = frames[-1]
            op = frame.block.ops[frame.index]
            handler = table.get(op.run)
            if handler is None:
                return self._debatch(quantum, rotate_on_mem, steps,
                                     total_budget)
            try:
                outcome = handler(op, self)
            except _Debatch:
                return self._debatch(quantum, rotate_on_mem, steps,
                                     total_budget)
            self._seg_instr += 1
            if outcome is None:
                self._seg_steps += 1
                continue
            if outcome == "barrier":
                # Counts as an issued instruction but (like the serial
                # BarrierReached path) not as a scheduler step.
                break
            self._seg_steps += 1
            if outcome == "done" or rotate_on_mem:  # outcome == "mem"
                break
        steps += self._seg_steps * self.W
        progressed = self._seg_steps > 0
        self._flush()
        if steps > total_budget:
            raise ExecutionError(
                "kernel exceeded the step budget (infinite loop?)"
            )
        if outcome == "barrier":
            for warp in self.warps:
                warp.status = WarpStatus.AT_BARRIER
        return steps, progressed, False

    def _debatch(self, quantum: int, rotate_on_mem: bool, steps: int,
                 total_budget: int):
        """Fall back to per-warp interpretation, mid-segment.

        Materializes per-warp frames from the batched state, then -- per
        warp, in warp order -- replays the segment's deferred side
        effects and finishes the warp's scheduler visit (its remaining
        quantum) on the interpreter. Afterwards the CTA runs interpreted
        for good.
        """
        for w, warp in enumerate(self.warps):
            warp.frames = [
                Frame.resume(
                    bf.decoded, bf.block, bf.index,
                    [self._row_reg(v, w) for v in bf.regs],
                    bf.sp, bf.base_sp, bf.ret_slot, warp.resident_mask,
                )
                for bf in self.frames
            ]
        steps += self._seg_steps * self.W
        if steps > total_budget:
            raise ExecutionError(
                "kernel exceeded the step budget (infinite loop?)"
            )
        remaining = quantum - self._seg_steps
        progressed = self._seg_steps > 0
        device = self.device
        interp = self.ctx.interp
        for w, warp in enumerate(self.warps):
            self._replay_warp(w, warp)
            before = steps
            steps = device._visit_warp(
                interp, warp, remaining, rotate_on_mem, steps, total_budget
            )
            progressed = progressed or steps != before
        self._reset_segment()
        return steps, progressed, True


def run_sm_batched(device, sm, image, total_budget: int) -> int:
    """Run one SM's CTAs to completion with the batched backend.

    Mirrors ``Device._run_sm`` exactly -- same occupancy, refill,
    barrier-release, deadlock and budget rules -- but CTAs with >= 2
    warps execute on a :class:`BatchedCTA` until they de-batch.
    ``Device.launch`` never routes pc-sampling launches here (they need
    per-instruction stepping).
    """
    steps = 0
    quantum = device.scheduler_quantum if device.scheduler == "gto" else 1
    rotate_on_mem = device.scheduler == "gto"
    finished: List[object] = []

    max_resident = device.arch.max_ctas_per_sm
    if image.shared_bytes_per_cta > 0:
        by_shared = device.arch.shared_mem_per_sm // image.shared_bytes_per_cta
        max_resident = max(1, min(max_resident, by_shared))

    def refill() -> None:
        while sm.pending and len(
            [c for c in sm.resident if c not in finished]
        ) < max_resident:
            ctx = sm.pending.pop(0)
            ctx.interp = WarpInterpreter(ctx)
            # Kernels that already de-batched once (divergent control
            # flow, unbatchable micro-op) will do it again: skip the
            # doomed batched attempt for their later CTAs. Results are
            # backend-independent, so this is purely a speed heuristic.
            entry_fn = ctx.warps[0].frames[-1].function
            ctx.batched = (
                BatchedCTA(device, ctx)
                if len(ctx.warps) >= 2
                and entry_fn not in device._debatched_kernels
                else None
            )
            sm.resident.append(ctx)
        live_warps = sum(
            1
            for c in sm.resident
            if c not in finished
            for w in c.warps
            if not w.done
        )
        sm.timing.set_resident_warps(live_warps)

    refill()
    while True:
        active_ctxs = [c for c in sm.resident if c not in finished]
        if not active_ctxs:
            break
        progressed = False
        for ctx in active_ctxs:
            if ctx.batched is not None:
                steps, cta_progress, debatched = ctx.batched.run_round(
                    quantum, rotate_on_mem, steps, total_budget
                )
                if debatched:
                    device._debatched_kernels.add(
                        ctx.batched.entry_function
                    )
                    ctx.batched = None
                progressed = progressed or cta_progress
            else:
                cta_progress = False
                for warp in ctx.warps:
                    if warp.status != WarpStatus.READY:
                        continue
                    before = steps
                    steps = device._visit_warp(
                        ctx.interp, warp, quantum, rotate_on_mem, steps,
                        total_budget,
                    )
                    cta_progress = cta_progress or steps != before
                progressed = progressed or cta_progress
            # Barrier release: all live warps waiting.
            live = [w for w in ctx.warps if not w.done]
            if live and all(w.status == WarpStatus.AT_BARRIER for w in live):
                for w in live:
                    w.status = WarpStatus.READY
                progressed = True
            if all(w.done for w in ctx.warps):
                finished.append(ctx)
                refill()
        if not progressed:
            raise ExecutionError(
                "SM deadlock: warps waiting at a barrier that can never "
                "complete (diverged exits before __syncthreads()?)"
            )
    return steps
