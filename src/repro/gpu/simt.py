"""SIMT warp state: reconvergence stacks, call frames, warp status.

Divergence is handled with the classic immediate-post-dominator
reconvergence stack (the mechanism NVIDIA hardware implements): a warp
executes the top :class:`StackEntry`; a divergent branch at block ``B``
with ipostdom ``R`` retargets the current entry to ``R`` (it waits there
with the union mask) and pushes one entry per taken path with the split
masks; an entry is popped when it reaches its reconvergence block. The
branch-divergence analysis of the paper (Table 3) counts exactly these
divergence events via instrumented basic-block hooks.

Frames execute pre-decoded code (:class:`repro.gpu.decode.
DecodedFunction`): the register file is a dense list indexed by the
slot numbers assigned at decode time, and stack entries point at
:class:`~repro.gpu.decode.DecodedBlock` micro-op arrays.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

import numpy as np

from repro.gpu.memory import LocalMemory


class WarpStatus(enum.Enum):
    READY = "ready"
    AT_BARRIER = "at_barrier"
    DONE = "done"


class StackEntry:
    """One reconvergence-stack entry: where to execute, under which mask.

    ``amask``/``nactive`` cache ``mask & ~frame.returned_mask`` (and its
    popcount) between steps; :meth:`Warp.retire_lanes` -- the only place
    either input changes -- invalidates them.
    """

    __slots__ = ("block", "index", "reconv", "mask", "amask", "nactive")

    def __init__(
        self,
        block,
        index: int,
        reconv,
        mask: np.ndarray,
    ):
        self.block = block
        self.index = index
        self.reconv = reconv
        self.mask = mask
        self.amask: Optional[np.ndarray] = None
        self.nactive = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StackEntry {self.block.name}@{self.index} "
            f"reconv={self.reconv.name if self.reconv else None} "
            f"mask={int(self.mask.sum())}>"
        )


class Frame:
    """One function activation of a warp."""

    __slots__ = (
        "function",
        "decoded",
        "regs",
        "stack",
        "sp",
        "base_sp",
        "ret_slot",
        "returned_mask",
        "ret_values",
    )

    def __init__(self, decoded, mask: np.ndarray, sp: int, ret_slot=None):
        self.function = decoded.function
        self.decoded = decoded
        self.regs: List[Optional[np.ndarray]] = [None] * decoded.n_slots
        self.stack: List[StackEntry] = [
            StackEntry(decoded.entry, 0, None, mask.copy())
        ]
        self.sp = sp  # local-memory stack pointer (byte offset)
        self.base_sp = sp
        self.ret_slot = ret_slot  # caller register slot to define, or None
        self.returned_mask = np.zeros_like(mask)
        self.ret_values: Optional[np.ndarray] = None

    @property
    def top(self) -> StackEntry:
        return self.stack[-1]

    @classmethod
    def resume(cls, decoded, block, index: int, regs, sp: int, base_sp: int,
               ret_slot, mask: np.ndarray) -> "Frame":
        """Rebuild a frame mid-execution at ``block``/``index``.

        Used by the batched backend's de-batch fallback: batched frames
        only exist under uniform control flow, so the rebuilt frame has a
        single stack entry carrying the full mask and no returned lanes.
        """
        frame = cls(decoded, mask, sp, ret_slot)
        frame.regs = regs
        frame.base_sp = base_sp
        entry = frame.stack[0]
        entry.block = block
        entry.index = index
        return frame

    @classmethod
    def resume_multi(cls, decoded, entries, regs, sp: int, base_sp: int,
                     ret_slot, returned_mask: np.ndarray,
                     ret_values: Optional[np.ndarray]) -> "Frame":
        """Rebuild a frame mid-execution with an explicit stack.

        Used by the masked batched backend's fallback, which must
        reconstruct arbitrary divergent state: ``entries`` is the
        bottom-to-top list of ``(block, index, reconv, mask)`` tuples
        (masks may be empty -- the interpreter pops those as admin
        steps, exactly as it would have serially), and the returned
        lanes / pending return values are restored verbatim.
        """
        frame = cls(decoded, returned_mask, sp, ret_slot)
        frame.regs = regs
        frame.base_sp = base_sp
        frame.returned_mask = returned_mask
        frame.ret_values = ret_values
        frame.stack = [
            StackEntry(block, index, reconv, mask)
            for block, index, reconv, mask in entries
        ]
        return frame


class Warp:
    """A 32-lane warp plus its execution state."""

    __slots__ = (
        "warp_size",
        "global_warp_id",
        "warp_in_cta",
        "cta_id",
        "cta_linear",
        "block_dim",
        "grid_dim",
        "resident_mask",
        "tid_x",
        "tid_y",
        "tid_z",
        "linear_tid",
        "ctaid_x",
        "ctaid_y",
        "ctaid_z",
        "ntid_x",
        "ntid_y",
        "ntid_z",
        "nctaid_x",
        "nctaid_y",
        "nctaid_z",
        "warpid_np",
        "lane_ids",
        "frames",
        "status",
        "local_mem",
        "instructions_executed",
        "branch_count",
        "divergent_branch_count",
    )

    def __init__(
        self,
        warp_size: int,
        global_warp_id: int,
        warp_in_cta: int,
        cta_id: Tuple[int, int, int],
        cta_linear: int,
        block_dim: Tuple[int, int, int],
        grid_dim: Tuple[int, int, int],
        first_thread: int,
    ):
        self.warp_size = warp_size
        self.global_warp_id = global_warp_id
        self.warp_in_cta = warp_in_cta
        self.cta_id = cta_id
        self.cta_linear = cta_linear
        self.block_dim = block_dim
        self.grid_dim = grid_dim

        bx, by, bz = block_dim
        threads_per_cta = bx * by * bz
        linear = first_thread + np.arange(warp_size)
        self.resident_mask = linear < threads_per_cta
        linear = np.minimum(linear, threads_per_cta - 1)
        self.tid_x = (linear % bx).astype(np.int32)
        self.tid_y = ((linear // bx) % by).astype(np.int32)
        self.tid_z = (linear // (bx * by)).astype(np.int32)
        self.linear_tid = linear.astype(np.int32)

        # Launch-constant intrinsic values, materialized once per warp
        # (register values are never mutated in place, so sharing these
        # arrays/scalars across reads is safe).
        self.ctaid_x = np.int32(cta_id[0])
        self.ctaid_y = np.int32(cta_id[1])
        self.ctaid_z = np.int32(cta_id[2])
        self.ntid_x = np.int32(bx)
        self.ntid_y = np.int32(by)
        self.ntid_z = np.int32(bz)
        self.nctaid_x = np.int32(grid_dim[0])
        self.nctaid_y = np.int32(grid_dim[1])
        self.nctaid_z = np.int32(grid_dim[2])
        self.warpid_np = np.int32(warp_in_cta)
        self.lane_ids = np.arange(warp_size, dtype=np.int32)

        self.frames: List[Frame] = []
        self.status = WarpStatus.READY
        self.local_mem: Optional[LocalMemory] = None  # set by the SM
        self.instructions_executed = 0
        self.branch_count = 0
        self.divergent_branch_count = 0

    # -- frame / stack plumbing ---------------------------------------------
    def push_frame(self, decoded, mask: np.ndarray, ret_slot=None) -> Frame:
        sp = self.frames[-1].sp if self.frames else 0
        frame = Frame(decoded, mask, sp, ret_slot)
        self.frames.append(frame)
        return frame

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    @property
    def active_mask(self) -> np.ndarray:
        if not self.frames:
            return np.zeros(self.warp_size, dtype=bool)
        frame = self.current_frame
        return frame.top.mask & ~frame.returned_mask

    @property
    def done(self) -> bool:
        return self.status == WarpStatus.DONE

    def retire_lanes(self, mask: np.ndarray) -> None:
        """Lanes in ``mask`` executed ``ret``: strip them from every entry."""
        frame = self.current_frame
        frame.returned_mask |= mask
        for entry in frame.stack:
            entry.mask = entry.mask & ~mask
            entry.amask = None
        while frame.stack and not frame.stack[-1].mask.any():
            frame.stack.pop()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Warp {self.global_warp_id} cta={self.cta_linear} "
            f"w{self.warp_in_cta} {self.status.value}>"
        )
