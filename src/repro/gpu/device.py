"""The simulated GPU device: module loading, CTA/SM scheduling, launch.

``Device.load_module`` turns a device IR module into a
:class:`DeviceModuleImage` (the analogue of loading a fat binary):
shared-memory globals get CTA-arena offsets, constant strings get
addresses in a constant arena, per-function ipostdom tables are
precomputed for the reconvergence stacks.

``Device.launch`` enumerates CTAs over the grid, assigns them
round-robin to SMs (each SM runs up to ``max_ctas_per_sm`` co-resident
CTAs with per-instruction round-robin warp scheduling), executes to
completion, and returns a :class:`LaunchResult` with hardware-level
statistics (cycles, cache stats, divergence counts).
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExecutionError, LaunchError
from repro.gpu.arch import GPUArchitecture, KEPLER_K40C
from repro.gpu.backend_batched import form_launch_gangs, run_sm_batched
from repro.gpu.cache import CacheStats, MSHRFile, SetAssociativeCache
from repro.gpu.decode import decode_module
from repro.gpu.interpreter import BarrierReached, WarpInterpreter
from repro.gpu.jit_cache import JitTraceCache
from repro.gpu.memory import Allocation, GlobalMemory, LocalMemory, SharedMemory
from repro.gpu.simt import Warp, WarpStatus
from repro.gpu.timing import SMTimingModel, TimingParams
from repro.ir.cfg import immediate_post_dominators
from repro.reliability.shards import (
    CRASH,
    TIMEOUT,
    run_shards_supervised,
)
from repro.reliability.supervisor import (
    FORK_UNAVAILABLE,
    FUSED_RECORDS_UNAVAILABLE,
    PC_SAMPLING_BATCHED,
    PC_SAMPLING_PARALLEL,
    SHARD_TIMEOUT,
    SHARD_WORKER_CRASH,
    SHARD_WORKER_ERROR,
    SHARD_WRITE_CONFLICT,
    LaunchSupervisor,
)
from repro.ir.instructions import Phi
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import AddressSpace, FloatType, IntType, PointerType
from repro.ir.values import GlobalString, GlobalVariable

#: Constant-arena (strings) addresses start here; disjoint by addrspace.
CONSTANT_BASE = 0x100


class DevicePointer:
    """A host-side handle to device global memory (what cudaMalloc returns)."""

    def __init__(self, allocation: Allocation):
        self.allocation = allocation

    @property
    def addr(self) -> int:
        return self.allocation.base

    @property
    def nbytes(self) -> int:
        return self.allocation.nbytes

    def offset(self, nbytes: int) -> "DevicePointer":
        """Pointer arithmetic: a sub-range view of this allocation."""
        if nbytes < 0 or nbytes >= self.nbytes:
            raise LaunchError("pointer offset outside allocation")
        sub = Allocation(self.addr + nbytes, self.nbytes - nbytes,
                         self.allocation.tag + f"+{nbytes}")
        return DevicePointer(sub)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DevicePointer {self.addr:#x} ({self.nbytes} bytes)>"


class DeviceModuleImage:
    """A loaded device module plus precomputed execution metadata."""

    def __init__(self, module: Module, device: "Device"):
        self.module = module
        self.device = device

        # Shared-memory layout (per-CTA arena offsets).
        self.shared_offsets: Dict[str, int] = {}
        offset = 0
        for var in module.globals.values():
            if var.addrspace == AddressSpace.SHARED:
                size = var.element_type.size_bytes()
                offset = (offset + size - 1) // size * size
                self.shared_offsets[var.name] = offset
                offset += size * var.count
        self.shared_bytes_per_cta = offset

        # Constant arena: strings.
        self._const_buf = np.zeros(1, dtype=np.uint8)
        self.string_addrs: Dict[str, int] = {}
        self._strings_by_addr: List[Tuple[int, str]] = []
        chunks: List[bytes] = []
        addr = CONSTANT_BASE
        for s in module.strings.values():
            data = s.text.encode() + b"\x00"
            self.string_addrs[s.name] = addr
            self._strings_by_addr.append((addr, s.text))
            chunks.append(data)
            addr += len(data)
        if chunks:
            blob = b"\x00" * CONSTANT_BASE + b"".join(chunks)
            self._const_buf = np.frombuffer(blob, dtype=np.uint8).copy()

        # Device globals in GLOBAL space get real allocations.
        self.global_addrs: Dict[str, int] = {}
        for var in module.globals.values():
            if var.addrspace == AddressSpace.GLOBAL:
                nbytes = var.element_type.size_bytes() * var.count
                alloc = device.memory.allocate(nbytes, tag=f"@{var.name}")
                self.global_addrs[var.name] = alloc.base
                if var.initializer is not None:
                    data = np.asarray(
                        var.initializer, dtype=var.element_type.numpy_dtype()
                    )
                    device.memory.write_bytes(alloc.base, data)

        # Per-function CFG metadata.
        self._ipostdom: Dict[str, Dict[BasicBlock, Optional[BasicBlock]]] = {}
        self._first_non_phi: Dict[int, int] = {}
        for fn in module.functions.values():
            if fn.is_declaration:
                continue
            self._ipostdom[fn.name] = immediate_post_dominators(fn)
            for block in fn.blocks:
                index = 0
                for inst in block.instructions:
                    if not isinstance(inst, Phi):
                        break
                    index += 1
                self._first_non_phi[id(block)] = index

        # Function table for code-centric profiling: id <-> function.
        self.function_ids: Dict[str, int] = {}
        self.functions_by_id: List[Function] = []
        for fn in module.functions.values():
            if fn.kind in ("kernel", "device"):
                self.function_ids[fn.name] = len(self.functions_by_id)
                self.functions_by_id.append(fn)

        # Pre-decode every function body into micro-op arrays (the fast
        # path the interpreter executes; see repro.gpu.decode). The
        # device's JIT trace cache shares streams between images whose
        # module text is identical.
        self.decoded = device.jit_cache.decode(self)

    # -- queries used by the interpreter ------------------------------------
    def ipostdom(self, fn: Function, block: BasicBlock) -> Optional[BasicBlock]:
        return self._ipostdom[fn.name].get(block)

    def first_non_phi(self, block: BasicBlock) -> int:
        return self._first_non_phi.get(id(block), 0)

    def address_of(self, value) -> int:
        if isinstance(value, GlobalString):
            return self.string_addrs[value.name]
        if isinstance(value, GlobalVariable):
            if value.addrspace == AddressSpace.SHARED:
                return self.shared_offsets[value.name]
            return self.global_addrs[value.name]
        raise ExecutionError(f"no address for {value!r}")

    def constant_gather(self, addrs, mask, dtype) -> np.ndarray:
        result = np.zeros(len(addrs), dtype=dtype)
        if mask.any():
            active = addrs[mask]
            if int(active.max()) + dtype.itemsize > len(self._const_buf):
                raise ExecutionError("constant memory fault")
            if dtype.itemsize == 1:
                result[mask] = self._const_buf[active].view(dtype)
            else:
                result[mask] = self._const_buf.view(dtype)[active // dtype.itemsize]
        return result

    def string_at(self, addr: int) -> str:
        """Reverse-map a constant-arena address to its string."""
        for base, text in self._strings_by_addr:
            if base <= addr < base + len(text) + 1:
                return text[addr - base:]
        raise ExecutionError(f"no constant string at {addr:#x}")

    def kernel(self, name: str) -> Function:
        fn = self.module.get_function(name)
        if fn.kind != "kernel":
            raise LaunchError(f"@{name} is not a kernel")
        return fn


@dataclass
class LaunchResult:
    """Hardware-level statistics for one kernel launch."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    cycles: float
    instructions: int
    transactions: int
    cache: CacheStats
    branches: int
    divergent_branches: int
    wall_seconds: float
    num_ctas: int
    warps_per_cta: int

    @property
    def l1_hit_rate(self) -> float:
        return self.cache.read_hit_rate


class _CTAContext:
    """Everything a warp needs to execute: per-CTA and per-SM resources."""

    def __init__(self, image, arch, global_mem, shared_mem, sm, hooks,
                 l1_warps_per_cta, cta_linear, pc_sampler=None):
        self.image = image
        self.arch = arch
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.l1 = sm.l1
        self.mshr = sm.mshr
        self.timing = sm.timing
        self.hooks = hooks
        self.l1_warps_per_cta = l1_warps_per_cta
        self.cta_linear = cta_linear
        self.pc_sampler = pc_sampler
        self.transactions = 0
        self.warps: List[Warp] = []

    def record_transactions(self, count: int) -> None:
        self.transactions += count


class _SM:
    """One streaming multiprocessor: an L1, MSHRs, a timing model."""

    def __init__(self, arch: GPUArchitecture, params: TimingParams):
        self.arch = arch
        self.l1 = SetAssociativeCache(arch.l1_size, arch.l1_line_size, arch.l1_assoc)
        self.mshr = MSHRFile(arch.mshr_entries)
        self.timing = SMTimingModel(arch, params)
        self.pending: List[_CTAContext] = []
        self.resident: List[_CTAContext] = []


class _NullHookRuntime:
    """Hook sink for uninstrumented launches."""

    def dispatch(self, name, args, mask, warp, ctx, nactive=None) -> None:  # pragma: no cover
        raise ExecutionError(
            f"instrumented code called hook @{name} but no hook runtime was "
            f"attached to the launch (pass hooks=... to Device.launch)"
        )

    def kernel_begin(self, launch_info) -> None:
        pass

    def kernel_end(self, result) -> None:
        pass


#: Launch state for parallel shard workers; set by the parent right
#: before the pool forks, so workers inherit it copy-on-write instead of
#: pickling the image/device graph.
_SHARD_PAYLOAD: Optional[dict] = None


def _shard_entry(shard_index: int, attempt: int, conn) -> None:
    """Worker-process entry: run one SM shard under supervision.

    Streams ``("hb", t)`` heartbeats (one on start, one per finished
    SM) and ends with ``("ok", result)`` or ``("err", detail)``.  The
    device's fault injector can crash the worker before it reports in
    (EOF on the pipe -> crash detection) or wedge it after the first
    heartbeat (silence -> timeout detection).
    """
    p = _SHARD_PAYLOAD
    device = p["device"]
    injector = device.fault_injector
    if injector is not None and injector.fires(
        "worker_crash", shard=shard_index, attempt=attempt
    ):
        os._exit(17)  # hard death: no traceback, no result, just EOF
    conn.send(("hb", time.monotonic()))
    if injector is not None and injector.fires(
        "shard_hang", shard=shard_index, attempt=attempt
    ):
        while True:  # wedged: heartbeats stop, the timeout reaps us
            time.sleep(0.5)
    device._heartbeat = lambda: conn.send(("hb", time.monotonic()))
    try:
        result = device._execute_shard(
            p["image"],
            p["kernel_name"],
            p["grid3"],
            p["block3"],
            p["bound_args"],
            p["hooks"],
            p["l1_warps_per_cta"],
            p["warps_per_cta"],
            p["shards"][shard_index],
            p["base_mem"],
        )
    except BaseException as exc:  # noqa: BLE001 -- report, parent decides
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


Dim = Union[int, Tuple[int, ...]]


def _as_dim3(value: Dim) -> Tuple[int, int, int]:
    if isinstance(value, int):
        value = (value,)
    dims = tuple(value) + (1,) * (3 - len(value))
    if len(dims) != 3 or any(d < 1 for d in dims):
        raise LaunchError(f"bad grid/block dimension {value!r}")
    return dims  # type: ignore[return-value]


class Device:
    """A simulated GPU."""

    def __init__(
        self,
        arch: GPUArchitecture = KEPLER_K40C,
        memory_capacity: int = 64 * 1024 * 1024,
        timing_params: Optional[TimingParams] = None,
    ):
        self.arch = arch
        self.memory = GlobalMemory(memory_capacity)
        self.timing_params = timing_params or TimingParams()
        #: "gto" runs each warp until its next global-memory access (or
        #: ``scheduler_quantum`` instructions) before rotating -- the
        #: greedy-then-oldest policy of real SMs, which lets warps drift
        #: apart. "rr" rotates after every instruction (lock-step).
        self.scheduler = "gto"
        self.scheduler_quantum = 48  # max instructions per warp per visit
        self.max_steps = 200_000_000
        #: >=2 shards CTAs across worker processes in Device.launch.
        self.parallel_workers: Optional[int] = None
        #: "interpreter" steps each warp on its own; "batched" executes
        #: a CTA's lock-step warps as one numpy op per instruction and
        #: falls back to the interpreter per CTA on divergence or
        #: unsupported micro-ops (see docs/architecture.md). Both
        #: backends produce byte-identical traces and statistics.
        self.backend = "interpreter"
        self._launch_backend = "interpreter"  # resolved per launch
        self._launch_spec = None  # JIT spec resolved per batched launch
        #: per-kernel count of CTAs that fell back from the batched
        #: machine; once it reaches ``batch_fallback_limit`` later CTAs
        #: skip the batched attempt (a speed heuristic, never a
        #: semantic one -- fallbacks are always exact).
        self._batch_fallbacks: Dict[str, int] = {}
        self.batch_fallback_limit = 2
        #: max rows in a CTA *gang*: single-warp CTAs (where per-CTA
        #: batching has nothing to batch) fused into one lock-step
        #: machine, one CTA per row.
        self.batch_gang_width = 16
        self._jit_cache = None
        #: how launches react when they cannot run as requested:
        #: "strict" raises LaunchDegradedError, "degrade" (default)
        #: falls back with one warning per (reason, kernel), and
        #: "best_effort" falls back silently. See docs/reliability.md.
        self.failure_policy = "degrade"
        #: seconds without a shard heartbeat before the worker is
        #: killed and retried; None disables hang detection.
        self.shard_timeout: Optional[float] = None
        #: relaunch attempts for a faulted shard before the parent
        #: re-executes it serially ("strict" never retries).
        self.shard_max_retries = 2
        #: base of the exponential backoff between shard relaunches.
        self.shard_retry_backoff = 0.05
        #: optional repro.reliability.FaultInjector for chaos testing.
        self.fault_injector = None
        self._heartbeat = None  # bound to the result pipe in workers
        self._supervisor: Optional[LaunchSupervisor] = None

    @property
    def supervisor(self) -> LaunchSupervisor:
        """The launch supervisor enforcing ``failure_policy`` (lazy)."""
        if self._supervisor is None:
            self._supervisor = LaunchSupervisor(self)
        return self._supervisor

    @property
    def jit_cache(self) -> JitTraceCache:
        """The per-kernel JIT trace cache (lazy; batched backend)."""
        if self._jit_cache is None:
            self._jit_cache = JitTraceCache(self.arch.name)
        return self._jit_cache

    # -- memory API (used by the host runtime) ---------------------------------
    def malloc(self, nbytes: int, tag: str = "") -> DevicePointer:
        return DevicePointer(self.memory.allocate(nbytes, tag))

    def free(self, pointer: DevicePointer) -> None:
        self.memory.free(pointer.allocation)

    def memcpy_htod(self, dst: DevicePointer, data: np.ndarray) -> None:
        if data.nbytes > dst.nbytes:
            raise LaunchError(
                f"memcpy of {data.nbytes} bytes into {dst.nbytes}-byte allocation"
            )
        self.memory.write_bytes(dst.addr, data)

    def memcpy_dtoh(self, src: DevicePointer, dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.memory.read_bytes(src.addr, dtype.itemsize * count)
        return raw.view(dtype).copy()

    def load_module(self, module: Module) -> DeviceModuleImage:
        if module.target != "nvptx":
            raise LaunchError(f"module {module.name} is not a device module")
        return DeviceModuleImage(module, self)

    # -- launching ----------------------------------------------------------------
    def launch(
        self,
        image: DeviceModuleImage,
        kernel_name: str,
        grid: Dim,
        block: Dim,
        args: Sequence[object],
        hooks=None,
        l1_warps_per_cta: Optional[int] = None,
        pc_sampler=None,
    ) -> LaunchResult:
        """Run one kernel to completion.

        ``l1_warps_per_cta`` activates the horizontal-bypass threshold for
        loads/stores carrying the ``dyn`` cache operator (Listing 5 of the
        paper): warps with index >= threshold bypass L1.
        ``pc_sampler`` attaches a :class:`~repro.profiler.pc_sampling.
        PCSampler` (the sparse hardware-sampling baseline).

        With ``self.parallel_workers >= 2`` eligible launches shard
        their SMs across forked worker processes; traces and statistics
        are merged back in SM order so the result is identical to a
        serial run (launches whose CTAs write overlapping global memory
        fall back to serial execution).
        """
        start = time.perf_counter()
        if self.backend not in ("interpreter", "batched"):
            raise LaunchError(
                f"unknown execution backend {self.backend!r}: expected "
                f"'interpreter' or 'batched'"
            )
        backend = self.backend
        if backend == "batched" and pc_sampler is not None:
            self.supervisor.degrade(
                PC_SAMPLING_BATCHED,
                kernel_name,
                "pc sampling needs per-instruction stepping: this launch "
                "falls back from the batched backend to the interpreter",
                backend=backend,
            )
            backend = "interpreter"
        if pc_sampler is not None and getattr(hooks, "fused", False):
            # Sample attribution needs the raw trace records; this
            # launch materializes its trace like a non-fused run.
            self.supervisor.degrade(
                FUSED_RECORDS_UNAVAILABLE,
                kernel_name,
                "pc sampling needs raw trace records: fused in-flight "
                "analysis is disabled for this launch and the trace is "
                "materialized",
                backend=backend,
            )
            hooks.disable_fused()
        self._launch_backend = backend
        self._launch_spec = (
            self.jit_cache.specialize(image, kernel_name)
            if backend == "batched"
            else None
        )
        kernel = image.kernel(kernel_name)
        grid3 = _as_dim3(grid)
        block3 = _as_dim3(block)
        threads_per_cta = block3[0] * block3[1] * block3[2]
        if threads_per_cta > self.arch.max_threads_per_cta:
            raise LaunchError(f"block of {threads_per_cta} threads is too large")
        bound_args = self._bind_args(kernel, args)
        hooks = hooks if hooks is not None else _NullHookRuntime()

        warp_size = self.arch.warp_size
        warps_per_cta = (threads_per_cta + warp_size - 1) // warp_size
        num_ctas = grid3[0] * grid3[1] * grid3[2]

        hooks.kernel_begin(
            {
                "kernel": kernel_name,
                "grid": grid3,
                "block": block3,
                "image": image,
                "num_ctas": num_ctas,
                "warps_per_cta": warps_per_cta,
            }
        )

        result = None
        if self._parallel_eligible(hooks, pc_sampler, num_ctas, kernel_name):
            result = self._launch_parallel(
                image, kernel_name, grid3, block3, bound_args, hooks,
                l1_warps_per_cta, warps_per_cta, num_ctas, start,
            )
            if result is None:
                self.supervisor.degrade(
                    SHARD_WRITE_CONFLICT,
                    kernel_name,
                    "parallel launch fell back to serial: CTAs in "
                    "different shards wrote overlapping global memory",
                )
        if result is None:
            sms = self._build_sms(
                image, kernel_name, grid3, block3, bound_args, hooks,
                l1_warps_per_cta, pc_sampler, warps_per_cta, None,
            )
            if self._launch_backend == "batched":
                form_launch_gangs(self, sms, image, self.max_steps)
            total_steps = 0
            for index in sorted(sms):
                total_steps += self._run_sm_any(
                    sms[index], image, total_budget=self.max_steps
                )
            result = self._collect_result(
                kernel_name, grid3, block3, sms, total_steps, num_ctas,
                warps_per_cta, start,
            )
        hooks.kernel_end(result)
        return result

    def _build_sms(
        self,
        image: DeviceModuleImage,
        kernel_name: str,
        grid3: Tuple[int, int, int],
        block3: Tuple[int, int, int],
        bound_args: List[object],
        hooks,
        l1_warps_per_cta: Optional[int],
        pc_sampler,
        warps_per_cta: int,
        sm_indices: Optional[Sequence[int]],
    ) -> Dict[int, _SM]:
        """Build SMs and their CTAs, round-robin over the full grid.

        ``sm_indices`` restricts construction to a shard of SMs; CTA
        linear ids and global warp ids still advance over skipped CTAs,
        so a shard's warps are indistinguishable from a full build.
        """
        decoded = image.decoded[kernel_name]
        warp_size = self.arch.warp_size
        num_sms = self.arch.num_sms
        wanted = range(num_sms) if sm_indices is None else sm_indices
        sms = {i: _SM(self.arch, self.timing_params) for i in wanted}
        global_warp_id = 0
        cta_linear = 0
        for cz in range(grid3[2]):
            for cy in range(grid3[1]):
                for cx in range(grid3[0]):
                    sm = sms.get(cta_linear % num_sms)
                    if sm is None:
                        cta_linear += 1
                        global_warp_id += warps_per_cta
                        continue
                    ctx = _CTAContext(
                        image,
                        self.arch,
                        self.memory,
                        SharedMemory(image.shared_bytes_per_cta),
                        sm,
                        hooks,
                        l1_warps_per_cta,
                        cta_linear,
                        pc_sampler=pc_sampler,
                    )
                    for w in range(warps_per_cta):
                        warp = Warp(
                            warp_size,
                            global_warp_id,
                            w,
                            (cx, cy, cz),
                            cta_linear,
                            block3,
                            grid3,
                            w * warp_size,
                        )
                        warp.local_mem = LocalMemory(warp_size)
                        frame = warp.push_frame(decoded, warp.resident_mask)
                        for arg_value, slot in zip(bound_args, decoded.arg_slots):
                            frame.regs[slot] = arg_value
                        ctx.warps.append(warp)
                        global_warp_id += 1
                    sm.pending.append(ctx)
                    cta_linear += 1
        return sms

    def _collect_result(
        self,
        kernel_name: str,
        grid3: Tuple[int, int, int],
        block3: Tuple[int, int, int],
        sms: Dict[int, _SM],
        total_steps: int,
        num_ctas: int,
        warps_per_cta: int,
        start: float,
    ) -> LaunchResult:
        result = LaunchResult(
            kernel=kernel_name,
            grid=grid3,
            block=block3,
            cycles=max(sm.timing.cycles for sm in sms.values()),
            instructions=total_steps,
            transactions=sum(
                c.transactions for sm in sms.values() for c in sm.resident
            ),
            cache=self._merge_cache_stats(list(sms.values())),
            branches=0,
            divergent_branches=0,
            wall_seconds=time.perf_counter() - start,
            num_ctas=num_ctas,
            warps_per_cta=warps_per_cta,
        )
        for sm in sms.values():
            for ctx in sm.resident:
                for warp in ctx.warps:
                    result.branches += warp.branch_count
                    result.divergent_branches += warp.divergent_branch_count
        return result

    # -- parallel launch ----------------------------------------------------------
    def _parallel_eligible(
        self, hooks, pc_sampler, num_ctas: int, kernel_name: str
    ) -> bool:
        # Sampled launches (hooks.sample_rate > 1) ARE eligible: the
        # stride filter runs at drain time over the merged trace, so
        # sharding cannot change which events are kept.
        workers = self.parallel_workers
        if not workers or workers < 2 or num_ctas < 2:
            return False
        if pc_sampler is not None:
            self.supervisor.degrade(
                PC_SAMPLING_PARALLEL,
                kernel_name,
                "pc sampling keeps one global sample clock: this launch "
                "runs serially despite device.parallel_workers",
                stacklevel=4,
                workers=workers,
            )
            return False
        if ("fork" not in multiprocessing.get_all_start_methods()
                or not hasattr(os, "fork")):
            self.supervisor.degrade(
                FORK_UNAVAILABLE,
                kernel_name,
                "this platform cannot fork worker processes: this launch "
                "runs serially despite device.parallel_workers",
                stacklevel=4,
                workers=workers,
            )
            return False
        return True

    def _launch_parallel(
        self,
        image: DeviceModuleImage,
        kernel_name: str,
        grid3: Tuple[int, int, int],
        block3: Tuple[int, int, int],
        bound_args: List[object],
        hooks,
        l1_warps_per_cta: Optional[int],
        warps_per_cta: int,
        num_ctas: int,
        start: float,
    ) -> Optional[LaunchResult]:
        """Shard SMs across supervised forked workers.

        Returns None to fall back to serial (cross-shard write
        conflict).  Workers are supervised: a crashed or hung worker is
        relaunched up to ``shard_max_retries`` times, and any shard
        still failed after that is re-executed serially in the parent,
        so the merged trace stays byte-identical to a clean run.
        """
        global _SHARD_PAYLOAD
        num_sms = self.arch.num_sms
        workers = min(self.parallel_workers, num_sms)
        # Contiguous SM ranges: concatenating shard traces in shard
        # order reproduces the serial SM-major event order.
        bounds = np.linspace(0, num_sms, workers + 1, dtype=int)
        shards = [
            list(range(bounds[i], bounds[i + 1]))
            for i in range(workers)
            if bounds[i] < bounds[i + 1]
        ]
        base_mem = self.memory._buf.copy()
        _SHARD_PAYLOAD = {
            "device": self,
            "image": image,
            "kernel_name": kernel_name,
            "grid3": grid3,
            "block3": block3,
            "bound_args": bound_args,
            "hooks": hooks,
            "l1_warps_per_cta": l1_warps_per_cta,
            "warps_per_cta": warps_per_cta,
            "shards": shards,
            "base_mem": base_mem,
        }
        # Strict never retries: the first fault must surface as-is.
        strict = self.supervisor.policy == "strict"
        try:
            ctx = multiprocessing.get_context("fork")
            outcomes = run_shards_supervised(
                ctx,
                _shard_entry,
                range(len(shards)),
                timeout=self.shard_timeout,
                max_attempts=1 if strict else self.shard_max_retries + 1,
                backoff=self.shard_retry_backoff,
            )
        finally:
            _SHARD_PAYLOAD = None

        shard_results = []
        fault_reasons = {CRASH: SHARD_WORKER_CRASH, TIMEOUT: SHARD_TIMEOUT}
        for index in sorted(outcomes):
            outcome = outcomes[index]
            if outcome.failed:
                kind = outcome.faults[-1] if outcome.faults else "error"
                reason = fault_reasons.get(kind, SHARD_WORKER_ERROR)
                detail = f" ({outcome.detail})" if outcome.detail != kind else ""
                self.supervisor.degrade(
                    reason,
                    kernel_name,
                    f"shard {index} {kind} after {outcome.attempts} "
                    f"attempt(s){detail}: re-executing it serially",
                    shard=index,
                    attempts=outcome.attempts,
                    faults=list(outcome.faults),
                )
                outcome.result = self._rerun_shard_in_parent(
                    image, kernel_name, grid3, block3, bound_args, hooks,
                    l1_warps_per_cta, warps_per_cta, shards[index], base_mem,
                )
            shard_results.append(outcome.result)

        # CTAs in different shards wrote overlapping bytes: the merge
        # cannot reproduce the serial interleaving, so rerun serially
        # (device memory is still untouched here in the parent).
        dirty = np.concatenate([r["dirty_idx"] for r in shard_results])
        if np.unique(dirty).size != dirty.size:
            return None
        for r in shard_results:
            self.memory._buf[r["dirty_idx"]] = r["dirty_bytes"]

        cache = CacheStats()
        for r in shard_results:
            cache.merge(r["cache"])
        result = LaunchResult(
            kernel=kernel_name,
            grid=grid3,
            block=block3,
            cycles=max(r["cycles"] for r in shard_results),
            instructions=sum(r["steps"] for r in shard_results),
            transactions=sum(r["transactions"] for r in shard_results),
            cache=cache,
            branches=sum(r["branches"] for r in shard_results),
            divergent_branches=sum(r["divergent"] for r in shard_results),
            wall_seconds=time.perf_counter() - start,
            num_ctas=num_ctas,
            warps_per_cta=warps_per_cta,
        )
        states = [r["hooks"] for r in shard_results if r["hooks"] is not None]
        if states:
            hooks.absorb_shards(states)
        return result

    def _rerun_shard_in_parent(
        self,
        image: DeviceModuleImage,
        kernel_name: str,
        grid3: Tuple[int, int, int],
        block3: Tuple[int, int, int],
        bound_args: List[object],
        hooks,
        l1_warps_per_cta: Optional[int],
        warps_per_cta: int,
        sm_indices: Sequence[int],
        base_mem: np.ndarray,
    ) -> dict:
        """Serially re-execute one permanently failed shard, in-process.

        A shallow copy of the hook runtime gets fresh shard buffers
        (``reset_for_shard``), and parent memory is restored to the
        pre-launch snapshot afterwards, so the recovered result is
        indistinguishable from a clean worker's and the usual dirty-byte
        merge still applies.
        """
        shard_hooks = hooks
        if hasattr(hooks, "reset_for_shard"):
            shard_hooks = copy.copy(hooks)
        try:
            return self._execute_shard(
                image, kernel_name, grid3, block3, bound_args, shard_hooks,
                l1_warps_per_cta, warps_per_cta, sm_indices, base_mem,
            )
        finally:
            self.memory._buf[:] = base_mem

    def _execute_shard(
        self,
        image: DeviceModuleImage,
        kernel_name: str,
        grid3: Tuple[int, int, int],
        block3: Tuple[int, int, int],
        bound_args: List[object],
        hooks,
        l1_warps_per_cta: Optional[int],
        warps_per_cta: int,
        sm_indices: Sequence[int],
        base_mem: np.ndarray,
    ) -> dict:
        """Run one shard of SMs (in a forked worker, or in-parent rerun)."""
        # A worker can run several shards; each starts from the
        # pre-launch memory state captured at fork time.
        self.memory._buf[:] = base_mem
        if hasattr(hooks, "reset_for_shard"):
            hooks.reset_for_shard()
        sms = self._build_sms(
            image, kernel_name, grid3, block3, bound_args, hooks,
            l1_warps_per_cta, None, warps_per_cta, sm_indices,
        )
        if self._launch_backend == "batched":
            form_launch_gangs(self, sms, image, self.max_steps)
        steps = 0
        for index in sorted(sms):
            steps += self._run_sm_any(
                sms[index], image, total_budget=self.max_steps
            )
            if self._heartbeat is not None:
                self._heartbeat()
        dirty = np.flatnonzero(self.memory._buf != base_mem).astype(np.int64)
        branches = divergent = 0
        for sm in sms.values():
            for ctx in sm.resident:
                for warp in ctx.warps:
                    branches += warp.branch_count
                    divergent += warp.divergent_branch_count
        return {
            "steps": steps,
            "cycles": max(sm.timing.cycles for sm in sms.values()),
            "transactions": sum(
                c.transactions for sm in sms.values() for c in sm.resident
            ),
            "cache": self._merge_cache_stats(list(sms.values())),
            "branches": branches,
            "divergent": divergent,
            "dirty_idx": dirty,
            "dirty_bytes": self.memory._buf[dirty].copy(),
            "hooks": (
                hooks.export_shard()
                if hasattr(hooks, "export_shard")
                else None
            ),
        }

    def _merge_cache_stats(self, sms: List[_SM]) -> CacheStats:
        merged = CacheStats()
        for sm in sms:
            merged.merge(sm.l1.stats)
        return merged

    def _bind_args(self, kernel: Function, args: Sequence[object]) -> List[object]:
        if len(args) != len(kernel.args):
            raise LaunchError(
                f"kernel @{kernel.name} takes {len(kernel.args)} arguments, "
                f"got {len(args)}"
            )
        bound: List[object] = []
        for formal, actual in zip(kernel.args, args):
            t = formal.type
            if isinstance(t, PointerType):
                if isinstance(actual, DevicePointer):
                    bound.append(np.int64(actual.addr))
                elif isinstance(actual, (int, np.integer)):
                    bound.append(np.int64(actual))
                else:
                    raise LaunchError(
                        f"argument {formal.name!r} expects a device pointer"
                    )
            elif isinstance(t, IntType):
                bound.append(t.numpy_dtype().type(actual))
            elif isinstance(t, FloatType):
                bound.append(t.numpy_dtype().type(actual))
            else:
                raise LaunchError(f"unsupported parameter type {t}")
        return bound

    def _run_sm_any(
        self, sm: _SM, image: DeviceModuleImage, total_budget: int
    ) -> int:
        """Run one SM on the backend resolved for the current launch."""
        if self._launch_backend == "batched":
            return run_sm_batched(self, sm, image, total_budget)
        return self._run_sm(sm, image, total_budget)

    def _visit_warp(
        self,
        interp: WarpInterpreter,
        warp: Warp,
        quantum: int,
        rotate_on_mem: bool,
        steps: int,
        total_budget: int,
    ) -> int:
        """One scheduler visit: step ``warp`` up to ``quantum`` times.

        Returns the updated SM step count; callers detect progress by
        comparing it with the value they passed in. Shared by the serial
        driver below and the batched backend's de-batch fallback.
        """
        for _ in range(quantum):
            try:
                outcome = interp.step(warp)
            except BarrierReached:
                warp.status = WarpStatus.AT_BARRIER
                break
            steps += 1
            if warp.done:
                break
            if steps > total_budget:
                raise ExecutionError(
                    "kernel exceeded the step budget (infinite loop?)"
                )
            if rotate_on_mem and outcome == "mem":
                break
        return steps

    def _run_sm(self, sm: _SM, image: DeviceModuleImage, total_budget: int) -> int:
        """Run one SM's CTAs to completion; returns instructions executed."""
        steps = 0
        quantum = self.scheduler_quantum if self.scheduler == "gto" else 1
        rotate_on_mem = self.scheduler == "gto"
        finished: List[_CTAContext] = []

        # Occupancy: CTA residency is limited by the hardware cap and by
        # shared-memory capacity (each CTA reserves its static arena).
        max_resident = self.arch.max_ctas_per_sm
        if image.shared_bytes_per_cta > 0:
            by_shared = self.arch.shared_mem_per_sm // image.shared_bytes_per_cta
            max_resident = max(1, min(max_resident, by_shared))

        def refill() -> None:
            while sm.pending and len(
                [c for c in sm.resident if c not in finished]
            ) < max_resident:
                ctx = sm.pending.pop(0)
                ctx.interp = WarpInterpreter(ctx)
                sm.resident.append(ctx)
            live_warps = sum(
                1
                for c in sm.resident
                if c not in finished
                for w in c.warps
                if not w.done
            )
            sm.timing.set_resident_warps(live_warps)

        refill()
        while True:
            active_ctxs = [c for c in sm.resident if c not in finished]
            if not active_ctxs:
                break
            progressed = False
            for ctx in active_ctxs:
                cta_progress = False
                for warp in ctx.warps:
                    if warp.status != WarpStatus.READY:
                        continue
                    before = steps
                    steps = self._visit_warp(
                        ctx.interp, warp, quantum, rotate_on_mem, steps,
                        total_budget,
                    )
                    cta_progress = cta_progress or steps != before
                    progressed = progressed or cta_progress
                # Barrier release: all live warps waiting.
                live = [w for w in ctx.warps if not w.done]
                if live and all(w.status == WarpStatus.AT_BARRIER for w in live):
                    for w in live:
                        w.status = WarpStatus.READY
                    progressed = True
                if all(w.done for w in ctx.warps):
                    finished.append(ctx)
                    refill()
            if not progressed:
                raise ExecutionError(
                    "SM deadlock: warps waiting at a barrier that can never "
                    "complete (diverged exits before __syncthreads()?)"
                )
        return steps
