"""A SIMT GPU execution engine (the reproduction's "real hardware").

Executes device IR modules the way an NVIDIA GPU executes SASS: 32-lane
warps in lock-step with an immediate-post-dominator reconvergence stack,
CTAs scheduled onto SMs, a coalescing unit in front of a set-associative
write-evict L1, and a cycle cost model. Every profiled quantity in the
paper (effective addresses, cache lines per access, divergence events)
is produced by these mechanisms, so the instrumentation-based profiler
measures the same things it measures on hardware.
"""

from repro.gpu.arch import (
    GPUArchitecture,
    KEPLER_K40C,
    PASCAL_P100,
    kepler_with_l1,
)
from repro.gpu.device import Device, DevicePointer, LaunchResult
from repro.gpu.cache import CacheStats, SetAssociativeCache
from repro.gpu.coalescing import coalesce

__all__ = [
    "CacheStats",
    "Device",
    "DevicePointer",
    "GPUArchitecture",
    "KEPLER_K40C",
    "LaunchResult",
    "PASCAL_P100",
    "SetAssociativeCache",
    "coalesce",
    "kepler_with_l1",
]
