"""A set-associative L1 data-cache model with GPU write semantics.

NVIDIA L1 data caches are *write-evict / write-no-allocate* (the paper
leans on this to motivate its restart-on-write reuse-distance variant):

* a **write hit** evicts (invalidates) the line rather than updating it;
* a **write miss** does not allocate.

Reads allocate on miss with LRU replacement. A per-SM :class:`MSHRFile`
tracks outstanding misses for the timing model's congestion estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0  # write-evict events
    write_misses: int = 0
    bypassed: int = 0
    evictions: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def accesses(self) -> int:
        return self.reads + self.write_hits + self.write_misses

    @property
    def read_hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.read_hits += other.read_hits
        self.read_misses += other.read_misses
        self.write_hits += other.write_hits
        self.write_misses += other.write_misses
        self.bypassed += other.bypassed
        self.evictions += other.evictions


class SetAssociativeCache:
    """LRU set-associative cache over line addresses.

    ``access`` takes a *line address* (byte address // line size is done
    by the coalescer) and returns ``True`` on hit.
    """

    def __init__(self, size: int, line_size: int, assoc: int):
        if size % line_size:
            raise ValueError("cache size must be a multiple of the line size")
        self.size = size
        self.line_size = line_size
        num_lines = size // line_size
        self.assoc = min(assoc, num_lines)
        self.num_sets = max(1, num_lines // self.assoc)
        # Per set: list of line tags in LRU order (front = LRU, back = MRU).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()
        self._tick = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def read(self, line_addr: int, bypass: bool = False) -> bool:
        """A read transaction; returns hit?"""
        if bypass:
            self.stats.bypassed += 1
            return False
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            ways.append(line_addr)
            self.stats.read_hits += 1
            return True
        self.stats.read_misses += 1
        ways.append(line_addr)
        if len(ways) > self.assoc:
            ways.pop(0)
            self.stats.evictions += 1
        return False

    def write(self, line_addr: int, bypass: bool = False) -> bool:
        """A write transaction (write-evict / no-allocate); returns hit?"""
        if bypass:
            self.stats.bypassed += 1
            return False
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)  # write-evict
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[self._set_index(line_addr)]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


class MSHRFile:
    """Miss-status holding registers: time-based outstanding-miss tracking.

    Each miss occupies an entry until its fill returns (``latency``
    cycles later on the SM's clock); a burst of divergent misses that
    exceeds the file causes *allocation failures*, which the paper
    (citing Li et al. [32]) identifies as a key L1 bottleneck and the
    mechanism horizontal bypassing relieves. Requests to an
    already-outstanding line merge for free.
    """

    def __init__(self, entries: int):
        self.entries = entries
        self._ready_at: Dict[int, float] = {}  # line -> fill-complete time
        self.allocation_failures = 0
        self.merges = 0
        self.requests = 0

    def request(self, line_addr: int, now: float, latency: float) -> bool:
        """Register a miss at SM time ``now``; False on allocation failure."""
        self.requests += 1
        if line_addr in self._ready_at:
            if self._ready_at[line_addr] > now:
                self.merges += 1
                return True
            del self._ready_at[line_addr]
        self._retire(now)
        if len(self._ready_at) >= self.entries:
            self.allocation_failures += 1
            return False
        self._ready_at[line_addr] = now + latency
        return True

    def _retire(self, now: float) -> None:
        if len(self._ready_at) < self.entries:
            return
        done = [line for line, t in self._ready_at.items() if t <= now]
        for line in done:
            del self._ready_at[line]

    @property
    def occupancy(self) -> int:
        return len(self._ready_at)

    @property
    def failure_rate(self) -> float:
        return self.allocation_failures / self.requests if self.requests else 0.0
