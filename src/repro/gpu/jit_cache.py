"""Per-kernel JIT trace cache for the batched backend.

Two content-addressed layers, both living on the :class:`Device` (the
spirit of numba's ``function_cache``: specialize once, reuse on every
later launch of the same code):

* **Decode reuse** -- ``decode(image)`` returns the module's pre-decoded
  micro-op streams, sharing them between images whose printed IR is
  identical (decode bakes absolute addresses, so modules that allocate
  ``GLOBAL``-space variables -- whose addresses depend on allocator
  state -- always re-decode).

* **Kernel specialization** -- ``specialize(image, kernel_name)`` lowers
  the kernel's decoded stream (and every device function it can reach)
  into the batched backend's dispatch form: per block, a tuple of
  ``(masked_handler, micro_op, pure_run_len)`` triples with the handler
  pre-resolved and runs of pure register-only ops pre-measured so the
  executor can sprint through them without per-op table lookups.
  Keyed on ``(module content hash, kernel name, arch)``; a repeated
  launch of the same module skips decode *and* dispatch resolution.

Counters (``device.jit_cache.stats``) are surfaced in the profiler
report and the CLI's ``--verbose`` output.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.gpu.backend_batched import _BATCHED, _PURE
from repro.gpu.decode import _mo_call, decode_module
from repro.ir import print_module


class JitCacheStats:
    """Hit/miss/specialization counters for one device's trace cache."""

    __slots__ = ("hits", "misses", "specializations", "decode_reuses")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.specializations = 0
        self.decode_reuses = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "specializations": self.specializations,
            "decode_reuses": self.decode_reuses,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<JitCacheStats hits={self.hits} misses={self.misses} "
                f"specializations={self.specializations}>")


def _content_key(image) -> str:
    """Content hash of the image's module text (cached on the image)."""
    key = getattr(image, "_jit_content_key", None)
    if key is None:
        key = hashlib.sha256(print_module(image.module).encode()).hexdigest()
        image._jit_content_key = key
    return key


def build_spec(decoded_map, kernel_name: str) -> Dict[int, list]:
    """Lower a kernel (+ reachable callees) to batched dispatch form."""
    spec: Dict[int, list] = {}
    seen = set()
    work = [decoded_map[kernel_name]]
    while work:
        fn = work.pop()
        if fn.name in seen:
            continue
        seen.add(fn.name)
        for blk in fn.blocks:
            rows: List[list] = []
            for op in blk.ops:
                handler = _BATCHED.get(op.run)
                rows.append([handler, op, 0])
                if op.run is _mo_call:
                    work.append(op.b)
            run = 0
            for k in range(len(rows) - 1, -1, -1):
                handler = rows[k][0]
                if handler is not None and handler in _PURE:
                    run += 1
                else:
                    run = 0
                rows[k][2] = run
            spec[id(blk)] = [tuple(row) for row in rows]
    return spec


class JitTraceCache:
    """Device-resident cache of decoded modules and kernel specs."""

    def __init__(self, arch_name: str):
        self.arch_name = arch_name
        self.stats = JitCacheStats()
        self._decoded: Dict[Tuple[str, str], object] = {}
        self._specs: Dict[Tuple[str, str, str], Tuple[object, dict]] = {}

    # -- decode layer --------------------------------------------------------
    def decode(self, image):
        """Decode ``image``'s module, reusing streams by content hash."""
        if image.global_addrs:
            # GLOBAL-space variables get allocator-dependent addresses
            # baked into the stream: never share across images.
            return decode_module(image)
        key = (_content_key(image), self.arch_name)
        cached = self._decoded.get(key)
        if cached is not None:
            self.stats.decode_reuses += 1
            return cached
        decoded = decode_module(image)
        self._decoded[key] = decoded
        return decoded

    # -- specialization layer ------------------------------------------------
    def specialize(self, image, kernel_name: str) -> Optional[dict]:
        """Fetch (or build) the batched dispatch spec for one kernel."""
        key = (_content_key(image), kernel_name, self.arch_name)
        entry = self._specs.get(key)
        if entry is not None and entry[0] is image.decoded:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        spec = build_spec(image.decoded, kernel_name)
        self.stats.specializations += 1
        self._specs[key] = (image.decoded, spec)
        return spec
