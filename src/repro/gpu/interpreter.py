"""The warp-level micro-op interpreter.

Executes one pre-decoded micro-op per call for a whole warp: every value
is a 32-lane numpy vector and every operation applies to all lanes at
once, which is both the literal SIMT execution model and the reason the
simulator is fast enough to run the paper's benchmark suite.

All per-instruction decode work (type dispatch, operand resolution,
constant materialization, branch-target/phi-move lookup) happens once at
module load time in :mod:`repro.gpu.decode`; the step loop here just
indexes the current micro-op and calls its bound handler. Instrumentation
hooks (functions with kind ``"hook"``) inserted by the engine's passes
are dispatched to the launch's
:class:`~repro.profiler.profiler.HookRuntime`; the interpreter itself
collects nothing beyond hardware-level cache/timing statistics -- all
profiling data flows through the instrumented calls, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.decode import BarrierReached
from repro.gpu.simt import Frame, StackEntry, Warp, WarpStatus
from repro.gpu.vecops import (
    _active_and_nonzero,
    _apply_atomic,
    _apply_binop,
    _apply_cmp,
    _apply_math,
    _bank_conflict_degree,
)

__all__ = [
    "BarrierReached",
    "WarpInterpreter",
    "_active_and_nonzero",
    "_apply_atomic",
    "_apply_binop",
    "_apply_cmp",
    "_apply_math",
    "_bank_conflict_degree",
]


class WarpInterpreter:
    """Interprets pre-decoded micro-ops for warps of one CTA."""

    def __init__(self, exec_ctx):
        """``exec_ctx`` is a :class:`repro.gpu.device._CTAContext`."""
        self.ctx = exec_ctx
        self.image = exec_ctx.image
        arch = exec_ctx.arch
        self.arch = arch
        # Hot-loop caches: attribute chains resolved once per CTA.
        self.warp_size = arch.warp_size
        self.line_size = arch.l1_line_size
        self.l2_latency = arch.l2_latency
        self.timing = exec_ctx.timing
        self.pc_sampler = exec_ctx.pc_sampler

    # -- main step ---------------------------------------------------------------
    def step(self, warp: Warp):
        """Execute one micro-op of ``warp``; updates its state.

        Returns ``"mem"`` when the instruction was a global-memory
        access (the scheduler's greedy-then-oldest policy rotates warps
        at these long-latency points), else ``None``.
        """
        frame = warp.frames[-1]
        stack = frame.stack
        if not stack:
            self._pop_frame(warp)
            return
        entry = stack[-1]
        block = entry.block
        if block is None:
            raise ExecutionError(
                f"unstructured control flow in @{frame.function.name}: lanes "
                f"waiting at a branch whose paths never reconverge or return"
            )
        mask = entry.amask
        if mask is None:
            mask = entry.mask & ~frame.returned_mask
            entry.amask = mask
            entry.nactive = int(mask.sum())
        if not entry.nactive:
            stack.pop()
            return None

        op = block.ops[entry.index]
        warp.instructions_executed += 1
        self.timing.issue()
        sampler = self.pc_sampler
        if sampler is not None:
            sampler.tick(warp, frame.function.name, op.loc)
        return op.run(op, self, warp, frame, entry, mask)

    def _pop_frame(self, warp: Warp) -> None:
        frame = warp.frames.pop()
        if not warp.frames:
            warp.status = WarpStatus.DONE
            return
        caller = warp.frames[-1]
        if frame.ret_slot is not None:
            result = frame.ret_values
            if result is None:
                raise ExecutionError(
                    f"@{frame.function.name} returned no value"
                )
            previous = caller.regs[frame.ret_slot]
            if previous is not None:
                result = np.where(frame.returned_mask, result, previous)
            caller.regs[frame.ret_slot] = result
        caller.sp = frame.base_sp  # rewind the local stack
