"""The warp-level IR interpreter.

Executes one instruction per call for a whole warp: every value is a
32-lane numpy vector and every operation applies to all lanes at once,
which is both the literal SIMT execution model and the reason the
simulator is fast enough to run the paper's benchmark suite.

Instrumentation hooks (functions with kind ``"hook"``) inserted by the
engine's passes are dispatched to the launch's
:class:`~repro.profiler.profiler.HookRuntime`; the interpreter itself
collects nothing beyond hardware-level cache/timing statistics -- all
profiling data flows through the instrumented calls, as in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.coalescing import coalesce
from repro.gpu.simt import Frame, StackEntry, Warp, WarpStatus
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, PointerType
from repro.ir.values import Argument, Constant, GlobalString, GlobalVariable, Value

_I64 = np.int64


class BarrierReached(Exception):
    """Internal signal: the warp must wait at a CTA barrier."""


class WarpInterpreter:
    """Interprets instructions for warps of one CTA."""

    def __init__(self, exec_ctx):
        """``exec_ctx`` is a :class:`repro.gpu.device._CTAContext`."""
        self.ctx = exec_ctx
        self.image = exec_ctx.image
        self.arch = exec_ctx.arch
        self._dispatch: Dict[type, Callable] = {
            Alloca: self._exec_alloca,
            Load: self._exec_load,
            Store: self._exec_store,
            GetElementPtr: self._exec_gep,
            BinOp: self._exec_binop,
            ICmp: self._exec_icmp,
            FCmp: self._exec_fcmp,
            Cast: self._exec_cast,
            Select: self._exec_select,
            AtomicRMW: self._exec_atomic,
            Call: self._exec_call,
            Br: self._exec_br,
            CondBr: self._exec_condbr,
            Ret: self._exec_ret,
            Phi: self._exec_phi,
        }

    # -- value plumbing ---------------------------------------------------------
    def value_of(self, frame: Frame, v: Value):
        if isinstance(v, Constant):
            cached = getattr(v, "_np_cache", None)
            if cached is None:
                cached = v.type.numpy_dtype().type(v.value)
                v._np_cache = cached
            return cached
        if isinstance(v, (GlobalVariable, GlobalString)):
            return _I64(self.image.address_of(v))
        reg = frame.regs.get(id(v))
        if reg is None:
            raise ExecutionError(
                f"read of undefined value %{v.name} in @{frame.function.name}"
            )
        return reg

    def _define(self, frame: Frame, inst: Instruction, value) -> None:
        frame.regs[id(inst)] = value

    def _vector(self, value, dtype=None) -> np.ndarray:
        """Broadcast a scalar register to a full lane vector."""
        if np.ndim(value) == 0:
            return np.full(self.arch.warp_size, value, dtype=dtype or np.asarray(value).dtype)
        return value

    # -- main step ---------------------------------------------------------------
    def step(self, warp: Warp):
        """Execute one instruction of ``warp``; updates its state.

        Returns ``"mem"`` when the instruction was a global-memory
        access (the scheduler's greedy-then-oldest policy rotates warps
        at these long-latency points), else ``None``.
        """
        frame = warp.current_frame
        if not frame.stack:
            self._pop_frame(warp)
            return
        entry = frame.top
        if entry.block is None:
            raise ExecutionError(
                f"unstructured control flow in @{frame.function.name}: lanes "
                f"waiting at a branch whose paths never reconverge or return"
            )
        if entry.index >= len(entry.block.instructions):
            raise ExecutionError(
                f"fell off the end of block {entry.block.name} "
                f"in @{frame.function.name}"
            )
        inst = entry.block.instructions[entry.index]
        mask = entry.mask & ~frame.returned_mask
        if not mask.any():
            frame.stack.pop()
            return None

        warp.instructions_executed += 1
        self.ctx.timing.issue()
        sampler = self.ctx.pc_sampler
        if sampler is not None:
            sampler.tick(warp, frame.function.name, inst.debug_loc)
        handler = self._dispatch.get(type(inst))
        if handler is None:
            raise ExecutionError(f"cannot execute instruction {inst!r}")
        return handler(warp, frame, entry, inst, mask)

    # -- straight-line instructions -------------------------------------------------
    def _exec_alloca(self, warp, frame, entry, inst: Alloca, mask) -> None:
        size = inst.element_type.size_bytes()
        addr = (frame.sp + size - 1) // size * size
        frame.sp = addr + size * inst.count
        if frame.sp > warp.local_mem.arena_size:
            raise ExecutionError("kernel thread stack overflow (too many allocas)")
        self._define(frame, inst, _I64(addr))
        entry.index += 1

    def _exec_gep(self, warp, frame, entry, inst: GetElementPtr, mask) -> None:
        base = self.value_of(frame, inst.base)
        index = self.value_of(frame, inst.index)
        size = inst.type.pointee.size_bytes()
        self._define(frame, inst, base + index.astype(_I64) * size)
        entry.index += 1

    def _exec_load(self, warp, frame, entry, inst: Load, mask) -> None:
        space = inst.pointer.type.addrspace
        addrs = self._vector(self.value_of(frame, inst.pointer), _I64)
        dtype = inst.type.numpy_dtype()
        if space == AddressSpace.GLOBAL:
            self._model_global_access(warp, inst, addrs, mask, dtype.itemsize, False)
            data = self.ctx.global_mem.gather(addrs, mask, dtype)
        elif space == AddressSpace.SHARED:
            self.ctx.timing.shared_access(_bank_conflict_degree(addrs, mask))
            data = self.ctx.shared_mem.gather(addrs, mask, dtype)
        elif space == AddressSpace.LOCAL:
            data = warp.local_mem.gather(addrs, mask, dtype)
        elif space == AddressSpace.CONSTANT:
            data = self.image.constant_gather(addrs, mask, dtype)
        else:
            raise ExecutionError(f"load from unsupported address space {space}")
        self._define(frame, inst, data)
        entry.index += 1
        return "mem" if space == AddressSpace.GLOBAL else None

    def _exec_store(self, warp, frame, entry, inst: Store, mask) -> None:
        space = inst.pointer.type.addrspace
        addrs = self._vector(self.value_of(frame, inst.pointer), _I64)
        dtype = inst.value.type.numpy_dtype()
        values = self._vector(self.value_of(frame, inst.value), dtype)
        if values.dtype != dtype:
            values = values.astype(dtype)
        if space == AddressSpace.GLOBAL:
            self._model_global_access(warp, inst, addrs, mask, dtype.itemsize, True)
            self.ctx.global_mem.scatter(addrs, mask, values)
        elif space == AddressSpace.SHARED:
            self.ctx.timing.shared_access(_bank_conflict_degree(addrs, mask))
            self.ctx.shared_mem.scatter(addrs, mask, values)
        elif space == AddressSpace.LOCAL:
            warp.local_mem.scatter(addrs, mask, values)
        else:
            raise ExecutionError(f"store to unsupported address space {space}")
        entry.index += 1
        return "mem" if space == AddressSpace.GLOBAL else None

    def _model_global_access(
        self, warp, inst, addrs: np.ndarray, mask: np.ndarray, width: int, is_write: bool
    ) -> None:
        """Coalesce and send transactions through L1 + MSHRs + timing."""
        lines = coalesce(addrs, mask, width, self.arch.l1_line_size)
        # Atomics always go to L2 on GPUs; loads/stores follow cache_op.
        cache_op = getattr(inst, "cache_op", CacheOp.CACHE_GLOBAL)
        bypass = self._bypasses_l1(warp, cache_op)
        l1 = self.ctx.l1
        timing = self.ctx.timing
        hits = misses = bypassed = 0
        for line in lines:
            line = int(line)
            if is_write:
                hit = l1.write(line, bypass)
            else:
                hit = l1.read(line, bypass)
            if bypass:
                bypassed += 1
            elif hit:
                hits += 1
            else:
                misses += 1
                if not self.ctx.mshr.request(
                    line, timing.cycles, self.arch.l2_latency
                ):
                    timing.mshr_failure()
        timing.global_transactions(hits, misses, bypassed)
        self.ctx.record_transactions(len(lines))

    def _bypasses_l1(self, warp, cache_op: CacheOp) -> bool:
        if cache_op == CacheOp.CACHE_GLOBAL:
            return True
        if cache_op == CacheOp.DYNAMIC:
            threshold = self.ctx.l1_warps_per_cta
            if threshold is None:
                return False
            return warp.warp_in_cta >= threshold
        return False

    def _exec_binop(self, warp, frame, entry, inst: BinOp, mask) -> None:
        lhs = self.value_of(frame, inst.lhs)
        rhs = self.value_of(frame, inst.rhs)
        self._define(frame, inst, _apply_binop(inst.opcode, lhs, rhs, mask))
        entry.index += 1

    def _exec_icmp(self, warp, frame, entry, inst: ICmp, mask) -> None:
        lhs = self.value_of(frame, inst.lhs)
        rhs = self.value_of(frame, inst.rhs)
        self._define(frame, inst, _apply_cmp(inst.pred, lhs, rhs))
        entry.index += 1

    _exec_fcmp = _exec_icmp

    def _exec_cast(self, warp, frame, entry, inst: Cast, mask) -> None:
        value = self.value_of(frame, inst.value)
        dtype = inst.type.numpy_dtype()
        kind = inst.kind
        if kind in (CastKind.BITCAST, CastKind.PTRTOINT, CastKind.INTTOPTR):
            result = value  # pointers and i64 share representation
            if np.ndim(value) and value.dtype != dtype and kind == CastKind.BITCAST:
                result = value.view(dtype)
        elif kind == CastKind.TRUNC and inst.type.is_bool:
            result = (np.asarray(value) & 1).astype(np.bool_)
        else:
            result = np.asarray(value).astype(dtype)
        self._define(frame, inst, result)
        entry.index += 1

    def _exec_select(self, warp, frame, entry, inst: Select, mask) -> None:
        cond = self._vector(self.value_of(frame, inst.cond), np.bool_)
        a = self.value_of(frame, inst.iftrue)
        b = self.value_of(frame, inst.iffalse)
        self._define(frame, inst, np.where(cond, a, b))
        entry.index += 1

    def _exec_phi(self, warp, frame, entry, inst: Phi, mask) -> None:
        # Phis never execute: their registers are written by the parallel
        # phi-moves performed on each traversed CFG edge (_phi_moves).
        # Reaching one means a branch forgot to skip the phi prefix.
        raise ExecutionError(
            f"phi reached by sequential execution in {entry.block.name}"
        )

    def _phi_moves(self, frame: Frame, from_block, to_block, mask) -> None:
        """Parallel-copy semantics for the edge from_block -> to_block.

        All incoming values are read before any phi register is written,
        and only ``mask`` lanes are updated (predicated writes, which is
        how hardware realises SSA merges under divergence).
        """
        moves = []
        for inst in to_block.instructions:
            if not isinstance(inst, Phi):
                break
            chosen = None
            for value, block in inst.incoming:
                if block is from_block:
                    chosen = value
                    break
            if chosen is None:
                raise ExecutionError(
                    f"phi in {to_block.name} lacks an arm for "
                    f"{from_block.name}"
                )
            moves.append(
                (inst, self._vector(self.value_of(frame, chosen),
                                    inst.type.numpy_dtype()))
            )
        for inst, incoming in moves:
            previous = frame.regs.get(id(inst))
            if previous is None:
                result = incoming.copy()
            else:
                result = np.where(mask, incoming, previous)
            frame.regs[id(inst)] = result

    def _exec_atomic(self, warp, frame, entry, inst: AtomicRMW, mask) -> None:
        space = inst.pointer.type.addrspace
        addrs = self._vector(self.value_of(frame, inst.pointer), _I64)
        dtype = inst.value.type.numpy_dtype()
        values = self._vector(self.value_of(frame, inst.value), dtype)
        if values.dtype != dtype:
            values = values.astype(dtype)

        if space == AddressSpace.GLOBAL:
            arena = self.ctx.global_mem
            self._model_global_access(warp, inst, addrs, mask, dtype.itemsize, True)
        elif space == AddressSpace.SHARED:
            arena = self.ctx.shared_mem
            self.ctx.timing.shared_access(_bank_conflict_degree(addrs, mask))
        else:
            raise ExecutionError(f"atomic on unsupported address space {space}")

        lanes = np.flatnonzero(mask)
        self.ctx.timing.atomic(len(lanes))
        old = np.zeros(self.arch.warp_size, dtype=dtype)
        one = np.ones(1, dtype=bool)
        for lane in lanes:
            addr = addrs[lane: lane + 1]
            current = arena.gather(addr, one, dtype)[0]
            old[lane] = current
            new = _apply_atomic(inst.op, current, values[lane])
            arena.scatter(addr, one, np.array([new], dtype=dtype))
        self._define(frame, inst, old)
        entry.index += 1
        return "mem" if space == AddressSpace.GLOBAL else None

    # -- calls ---------------------------------------------------------------------
    def _exec_call(self, warp, frame, entry, inst: Call, mask) -> None:
        callee = inst.callee
        if callee.kind == "intrinsic":
            if callee.name == "nvvm.barrier0":
                live = warp.resident_mask & ~frame.returned_mask
                if not np.array_equal(mask, live):
                    raise ExecutionError(
                        "__syncthreads() reached under divergent control "
                        f"flow in @{frame.function.name} (undefined in CUDA)"
                    )
                entry.index += 1  # resume after the barrier
                raise BarrierReached()
            result = self._exec_intrinsic(warp, frame, inst, mask)
            if result is not None:
                self._define(frame, inst, result)
            entry.index += 1
            return
        if callee.kind == "hook":
            args = [self.value_of(frame, a) for a in inst.args]
            self.ctx.timing.hook_call(int(mask.sum()))
            self.ctx.hooks.dispatch(callee.name, args, mask, warp, self.ctx)
            entry.index += 1
            return
        if callee.is_declaration:
            raise ExecutionError(f"call to undefined function @{callee.name}")
        # Real device-function call: push a frame.
        entry.index += 1  # resume after the call on return
        new_frame = warp.push_frame(callee, mask, call_inst=inst)
        for arg, actual in zip(callee.args, inst.args):
            value = self.value_of(frame, actual)
            new_frame.regs[id(arg)] = value

    def _exec_intrinsic(self, warp: Warp, frame, inst: Call, mask):
        name = inst.callee.name
        ctx = self.ctx
        if name == "nvvm.tid.x":
            return warp.tid_x
        if name == "nvvm.tid.y":
            return warp.tid_y
        if name == "nvvm.tid.z":
            return warp.tid_z
        if name == "nvvm.ctaid.x":
            return np.int32(warp.cta_id[0])
        if name == "nvvm.ctaid.y":
            return np.int32(warp.cta_id[1])
        if name == "nvvm.ctaid.z":
            return np.int32(warp.cta_id[2])
        if name == "nvvm.ntid.x":
            return np.int32(warp.block_dim[0])
        if name == "nvvm.ntid.y":
            return np.int32(warp.block_dim[1])
        if name == "nvvm.ntid.z":
            return np.int32(warp.block_dim[2])
        if name == "nvvm.nctaid.x":
            return np.int32(warp.grid_dim[0])
        if name == "nvvm.nctaid.y":
            return np.int32(warp.grid_dim[1])
        if name == "nvvm.nctaid.z":
            return np.int32(warp.grid_dim[2])
        if name == "nvvm.warpsize":
            return np.int32(self.arch.warp_size)
        if name == "nvvm.laneid":
            return np.arange(self.arch.warp_size, dtype=np.int32)
        if name == "nvvm.warpid":
            return np.int32(warp.warp_in_cta)
        if name == "nvvm.barrier0":
            raise BarrierReached()
        if name.startswith("nv."):
            args = [
                self._vector(self.value_of(frame, a)) for a in inst.args
            ]
            return _apply_math(name, args, mask)
        raise ExecutionError(f"unknown intrinsic @{name}")

    # -- control flow ------------------------------------------------------------------
    def _branch_to(self, warp, frame, entry: StackEntry, target, mask) -> None:
        came_from = entry.block
        self._phi_moves(frame, came_from, target, mask)
        if entry.reconv is target:
            # This path reached its reconvergence point; its lanes are
            # already represented in the waiting entry's union mask.
            frame.stack.pop()
            return
        entry.block = target
        entry.index = self.image.first_non_phi(target)
        entry.came_from = came_from

    def _exec_br(self, warp, frame, entry, inst: Br, mask) -> None:
        self._branch_to(warp, frame, entry, inst.target, mask)

    def _exec_condbr(self, warp, frame, entry, inst: CondBr, mask) -> None:
        warp.branch_count += 1
        cond = self._vector(self.value_of(frame, inst.cond), np.bool_)
        taken = cond & mask
        not_taken = ~cond & mask
        if not not_taken.any():
            self._branch_to(warp, frame, entry, inst.iftrue, mask)
            return
        if not taken.any():
            self._branch_to(warp, frame, entry, inst.iffalse, mask)
            return

        # Divergence: retarget this entry to the reconvergence point and
        # push one entry per path (paths that start at the reconvergence
        # point just wait there -- their lanes stay in this entry's mask).
        warp.divergent_branch_count += 1
        reconv = self.image.ipostdom(frame.function, entry.block)
        came_from = entry.block
        entry.block = reconv  # may be None: wait for returns
        entry.index = self.image.first_non_phi(reconv) if reconv else 0
        entry.came_from = came_from
        for target, path_mask in ((inst.iffalse, not_taken), (inst.iftrue, taken)):
            self._phi_moves(frame, came_from, target, path_mask)
            if target is not reconv:
                e = StackEntry(
                    target, self.image.first_non_phi(target), reconv, path_mask
                )
                e.came_from = came_from
                frame.stack.append(e)

    def _exec_ret(self, warp, frame, entry, inst: Ret, mask) -> None:
        if inst.value is not None:
            value = self._vector(
                self.value_of(frame, inst.value),
                frame.function.return_type.numpy_dtype(),
            )
            if frame.ret_values is None:
                frame.ret_values = value.copy()
            else:
                frame.ret_values = np.where(mask, value, frame.ret_values)
        warp.retire_lanes(mask)
        if not frame.stack:
            self._pop_frame(warp)

    def _pop_frame(self, warp: Warp) -> None:
        frame = warp.frames.pop()
        if not warp.frames:
            warp.status = WarpStatus.DONE
            return
        caller = warp.current_frame
        if frame.call_inst is not None and not frame.call_inst.type.is_void:
            result = frame.ret_values
            if result is None:
                raise ExecutionError(
                    f"@{frame.function.name} returned no value"
                )
            previous = caller.regs.get(id(frame.call_inst))
            if previous is not None:
                result = np.where(frame.returned_mask, result, previous)
            caller.regs[id(frame.call_inst)] = result
        caller.sp = frame.base_sp  # rewind the local stack


def _bank_conflict_degree(addrs: np.ndarray, mask: np.ndarray) -> int:
    """Shared memory is banked (32 banks, 4-byte words): lanes hitting
    different words of the same bank serialize. Returns the worst-case
    bank multiplicity (1 = conflict-free; broadcasts of the *same* word
    are free, as on hardware)."""
    if not mask.any():
        return 1
    words = addrs[mask] // 4
    unique_words = np.unique(words)
    if len(unique_words) <= 1:
        return 1  # single word: broadcast
    banks = unique_words % 32
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


# -- pure vector semantics ----------------------------------------------------------
def _apply_binop(opcode: Opcode, lhs, rhs, mask) -> np.ndarray:
    lhs = np.asarray(lhs)
    rhs = np.asarray(rhs)
    if opcode == Opcode.ADD:
        return lhs + rhs
    if opcode == Opcode.SUB:
        return lhs - rhs
    if opcode == Opcode.MUL:
        return lhs * rhs
    if opcode == Opcode.FADD:
        return lhs + rhs
    if opcode == Opcode.FSUB:
        return lhs - rhs
    if opcode == Opcode.FMUL:
        return lhs * rhs
    if opcode == Opcode.AND:
        return lhs & rhs
    if opcode == Opcode.OR:
        return lhs | rhs
    if opcode == Opcode.XOR:
        return lhs ^ rhs
    if opcode == Opcode.SHL:
        return lhs << rhs
    if opcode in (Opcode.LSHR, Opcode.ASHR):
        # ASHR on signed dtypes is arithmetic in numpy; LSHR shifts the
        # same-width *unsigned* reinterpretation (sign-extending through
        # a wider type would smear the sign bits back in).
        if opcode == Opcode.LSHR:
            unsigned_dtype = np.dtype(f"u{lhs.dtype.itemsize}")
            unsigned = lhs.view(unsigned_dtype) if lhs.ndim else np.asarray(
                lhs
            ).astype(lhs.dtype).view(unsigned_dtype)
            shifted = unsigned >> rhs.astype(unsigned_dtype)
            return shifted.view(lhs.dtype) if shifted.ndim else np.asarray(
                shifted
            ).astype(lhs.dtype)
        return lhs >> rhs
    if opcode == Opcode.SMIN or opcode == Opcode.FMIN:
        return np.minimum(lhs, rhs)
    if opcode == Opcode.SMAX or opcode == Opcode.FMAX:
        return np.maximum(lhs, rhs)
    if opcode == Opcode.FDIV:
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        with np.errstate(divide="ignore", invalid="ignore"):
            return lhs / safe_rhs
    if opcode == Opcode.FREM:
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        return np.fmod(lhs, safe_rhs)
    if opcode in (Opcode.SDIV, Opcode.SREM, Opcode.UDIV, Opcode.UREM):
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        if opcode in (Opcode.UDIV, Opcode.UREM):
            q = (lhs.astype(np.uint64) // safe_rhs.astype(np.uint64)).astype(lhs.dtype)
            if opcode == Opcode.UDIV:
                return q
            return lhs - q * safe_rhs
        # C-style truncating signed division.
        q = np.floor_divide(lhs, safe_rhs)
        r = lhs - q * safe_rhs
        adjust = (r != 0) & ((lhs < 0) ^ (safe_rhs < 0))
        q = q + adjust.astype(q.dtype)
        if opcode == Opcode.SDIV:
            return q
        return lhs - q * safe_rhs
    raise ExecutionError(f"unhandled opcode {opcode}")


def _active_and_nonzero(rhs, mask) -> np.ndarray:
    nonzero = np.asarray(rhs) != 0
    if np.ndim(nonzero) == 0:
        return np.logical_and(nonzero, True)
    if np.ndim(mask) and np.ndim(nonzero):
        return nonzero & mask
    return nonzero


def _apply_cmp(pred: CmpPred, lhs, rhs) -> np.ndarray:
    lhs = np.asarray(lhs)
    rhs = np.asarray(rhs)
    if pred == CmpPred.EQ:
        return lhs == rhs
    if pred == CmpPred.NE:
        return lhs != rhs
    if pred == CmpPred.LT:
        return lhs < rhs
    if pred == CmpPred.LE:
        return lhs <= rhs
    if pred == CmpPred.GT:
        return lhs > rhs
    return lhs >= rhs


def _apply_atomic(op: AtomicOp, current, value):
    if op == AtomicOp.ADD:
        return current + value
    if op == AtomicOp.SUB:
        return current - value
    if op == AtomicOp.MIN:
        return min(current, value)
    if op == AtomicOp.MAX:
        return max(current, value)
    if op == AtomicOp.EXCH:
        return value
    if op == AtomicOp.AND:
        return current & value
    if op == AtomicOp.OR:
        return current | value
    if op == AtomicOp.XOR:
        return current ^ value
    raise ExecutionError(f"unhandled atomic {op}")


def _apply_math(name: str, args: List[np.ndarray], mask) -> np.ndarray:
    a = args[0]
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        if name in ("nv.sqrt.f32", "nv.sqrt.f64"):
            return np.sqrt(np.where(mask & (a >= 0), a, 0)).astype(a.dtype)
        if name in ("nv.exp.f32", "nv.exp.f64"):
            return np.exp(a).astype(a.dtype)
        if name in ("nv.log.f32", "nv.log.f64"):
            return np.log(np.where(mask & (a > 0), a, 1)).astype(a.dtype)
        if name in ("nv.fabs.f32", "nv.fabs.f64"):
            return np.abs(a)
        if name == "nv.floor.f32":
            return np.floor(a).astype(a.dtype)
        if name == "nv.pow.f32":
            return np.power(a, args[1]).astype(a.dtype)
        if name == "nv.fmin.f32":
            return np.minimum(a, args[1])
        if name == "nv.fmax.f32":
            return np.maximum(a, args[1])
    raise ExecutionError(f"unknown math intrinsic {name}")
