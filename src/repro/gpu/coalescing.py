"""The memory-coalescing unit.

Sits in the data path before L1 (as on real GPUs): a warp's per-lane
byte addresses for one memory instruction are combined into the minimal
set of cache-line transactions. The number of unique lines touched *is*
the paper's memory-divergence metric for that instruction (1 = fully
coalesced, 32 = fully divergent).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def coalesce(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> np.ndarray:
    """Unique cache-line addresses touched by the active lanes.

    ``access_bytes`` is the per-lane access width; an element straddling
    a line boundary contributes both lines (cannot happen for naturally
    aligned accesses, but the model stays correct for byte-addressed
    i8 data of any width).
    """
    if not mask.any():
        return np.empty(0, dtype=np.int64)
    active = addrs[mask]
    first = active // line_size
    last = (active + access_bytes - 1) // line_size
    if (first == last).all():
        return np.unique(first)
    return np.unique(np.concatenate([first, last]))


def divergence_degree(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> int:
    """Unique cache lines touched -- the per-instruction divergence count."""
    return int(len(coalesce(addrs, mask, access_bytes, line_size)))
