"""The memory-coalescing unit.

Sits in the data path before L1 (as on real GPUs): a warp's per-lane
byte addresses for one memory instruction are combined into the minimal
set of cache-line transactions. The number of unique lines touched *is*
the paper's memory-divergence metric for that instruction (1 = fully
coalesced, 32 = fully divergent).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _line_set(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> set:
    """Set of cache lines touched by the active lanes.

    A Python set over ``tolist()`` beats ``np.unique`` by several x at
    warp width (32 elements) -- this sits on the per-instruction hot
    path of the interpreter.
    """
    lines = set()
    add = lines.add
    span = access_bytes - 1
    for addr, active in zip(addrs.tolist(), mask.tolist()):
        if active:
            first = addr // line_size
            add(first)
            last = (addr + span) // line_size
            if last != first:
                add(last)
    return lines


def coalesce(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> np.ndarray:
    """Unique cache-line addresses touched by the active lanes.

    ``access_bytes`` is the per-lane access width; an element straddling
    a line boundary contributes both lines (cannot happen for naturally
    aligned accesses, but the model stays correct for byte-addressed
    i8 data of any width).
    """
    return np.array(
        sorted(_line_set(addrs, mask, access_bytes, line_size)),
        dtype=np.int64,
    )


def coalesce_lines(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> List[int]:
    """Same unique lines as :func:`coalesce`, as a sorted plain list."""
    return sorted(_line_set(addrs, mask, access_bytes, line_size))


def divergence_degree(
    addrs: np.ndarray, mask: np.ndarray, access_bytes: int, line_size: int
) -> int:
    """Unique cache lines touched -- the per-instruction divergence count."""
    return len(_line_set(addrs, mask, access_bytes, line_size))
