"""Pure vector semantics shared by the decoder and the interpreter.

These functions define what each IR operation *means* on 32-lane numpy
vectors, independent of how execution is driven. The decode layer
(:mod:`repro.gpu.decode`) binds them into micro-op handlers at module
load time; the interpreter re-exports them for compatibility.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ExecutionError
from repro.ir.instructions import AtomicOp, CmpPred, Opcode


def _apply_binop(opcode: Opcode, lhs, rhs, mask) -> np.ndarray:
    lhs = np.asarray(lhs)
    rhs = np.asarray(rhs)
    if opcode == Opcode.ADD:
        return lhs + rhs
    if opcode == Opcode.SUB:
        return lhs - rhs
    if opcode == Opcode.MUL:
        return lhs * rhs
    if opcode == Opcode.FADD:
        return lhs + rhs
    if opcode == Opcode.FSUB:
        return lhs - rhs
    if opcode == Opcode.FMUL:
        return lhs * rhs
    if opcode == Opcode.AND:
        return lhs & rhs
    if opcode == Opcode.OR:
        return lhs | rhs
    if opcode == Opcode.XOR:
        return lhs ^ rhs
    if opcode == Opcode.SHL:
        return lhs << rhs
    if opcode in (Opcode.LSHR, Opcode.ASHR):
        # ASHR on signed dtypes is arithmetic in numpy; LSHR shifts the
        # same-width *unsigned* reinterpretation (sign-extending through
        # a wider type would smear the sign bits back in).
        if opcode == Opcode.LSHR:
            unsigned_dtype = np.dtype(f"u{lhs.dtype.itemsize}")
            unsigned = lhs.view(unsigned_dtype) if lhs.ndim else np.asarray(
                lhs
            ).astype(lhs.dtype).view(unsigned_dtype)
            shifted = unsigned >> rhs.astype(unsigned_dtype)
            return shifted.view(lhs.dtype) if shifted.ndim else np.asarray(
                shifted
            ).astype(lhs.dtype)
        return lhs >> rhs
    if opcode == Opcode.SMIN or opcode == Opcode.FMIN:
        return np.minimum(lhs, rhs)
    if opcode == Opcode.SMAX or opcode == Opcode.FMAX:
        return np.maximum(lhs, rhs)
    if opcode == Opcode.FDIV:
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        with np.errstate(divide="ignore", invalid="ignore"):
            return lhs / safe_rhs
    if opcode == Opcode.FREM:
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        return np.fmod(lhs, safe_rhs)
    if opcode in (Opcode.SDIV, Opcode.SREM, Opcode.UDIV, Opcode.UREM):
        safe_rhs = np.where(_active_and_nonzero(rhs, mask), rhs, np.ones_like(rhs))
        if opcode in (Opcode.UDIV, Opcode.UREM):
            q = (lhs.astype(np.uint64) // safe_rhs.astype(np.uint64)).astype(lhs.dtype)
            if opcode == Opcode.UDIV:
                return q
            return lhs - q * safe_rhs
        # C-style truncating signed division.
        q = np.floor_divide(lhs, safe_rhs)
        r = lhs - q * safe_rhs
        adjust = (r != 0) & ((lhs < 0) ^ (safe_rhs < 0))
        q = q + adjust.astype(q.dtype)
        if opcode == Opcode.SDIV:
            return q
        return lhs - q * safe_rhs
    raise ExecutionError(f"unhandled opcode {opcode}")


def _active_and_nonzero(rhs, mask) -> np.ndarray:
    nonzero = np.asarray(rhs) != 0
    if np.ndim(nonzero) == 0:
        return np.logical_and(nonzero, True)
    if np.ndim(mask) and np.ndim(nonzero):
        return nonzero & mask
    return nonzero


def _apply_cmp(pred: CmpPred, lhs, rhs) -> np.ndarray:
    lhs = np.asarray(lhs)
    rhs = np.asarray(rhs)
    if pred == CmpPred.EQ:
        return lhs == rhs
    if pred == CmpPred.NE:
        return lhs != rhs
    if pred == CmpPred.LT:
        return lhs < rhs
    if pred == CmpPred.LE:
        return lhs <= rhs
    if pred == CmpPred.GT:
        return lhs > rhs
    return lhs >= rhs


def _apply_atomic(op: AtomicOp, current, value):
    if op == AtomicOp.ADD:
        return current + value
    if op == AtomicOp.SUB:
        return current - value
    if op == AtomicOp.MIN:
        return min(current, value)
    if op == AtomicOp.MAX:
        return max(current, value)
    if op == AtomicOp.EXCH:
        return value
    if op == AtomicOp.AND:
        return current & value
    if op == AtomicOp.OR:
        return current | value
    if op == AtomicOp.XOR:
        return current ^ value
    raise ExecutionError(f"unhandled atomic {op}")


def _apply_math(name: str, args: List[np.ndarray], mask) -> np.ndarray:
    a = args[0]
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        if name in ("nv.sqrt.f32", "nv.sqrt.f64"):
            return np.sqrt(np.where(mask & (a >= 0), a, 0)).astype(a.dtype)
        if name in ("nv.exp.f32", "nv.exp.f64"):
            return np.exp(a).astype(a.dtype)
        if name in ("nv.log.f32", "nv.log.f64"):
            return np.log(np.where(mask & (a > 0), a, 1)).astype(a.dtype)
        if name in ("nv.fabs.f32", "nv.fabs.f64"):
            return np.abs(a)
        if name == "nv.floor.f32":
            return np.floor(a).astype(a.dtype)
        if name == "nv.pow.f32":
            return np.power(a, args[1]).astype(a.dtype)
        if name == "nv.fmin.f32":
            return np.minimum(a, args[1])
        if name == "nv.fmax.f32":
            return np.maximum(a, args[1])
    raise ExecutionError(f"unknown math intrinsic {name}")


def _bank_conflict_degrees(addrs: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Per-warp bank-conflict degrees for batched shared accesses.

    ``addrs``/``masks`` are ``(num_warps, warp_size)``; returns one
    :func:`_bank_conflict_degree` per row, so the batched backend charges
    the same shared-access cycles the serial interpreter would.

    Vectorized: one combined ``unique`` over ``(row, word)`` pairs
    dedupes same-word broadcasts, one ``bincount`` over ``(row, bank)``
    counts the serialized distinct words per bank, and the per-row max
    is the degree -- identical to the per-row scalar computation.
    """
    W = addrs.shape[0]
    if not masks.any():
        return np.ones(W, dtype=np.int64)
    rows, lanes = np.nonzero(masks)
    words = addrs[rows, lanes] // 4
    span = int(words.max()) + 1
    pairs = np.unique(rows * span + words)
    urows = pairs // span
    ubanks = (pairs % span) % 32
    counts = np.bincount(
        urows * 32 + ubanks, minlength=W * 32
    ).reshape(W, 32)
    return np.maximum(counts.max(axis=1), 1)


def _bank_conflict_degree(addrs: np.ndarray, mask: np.ndarray) -> int:
    """Shared memory is banked (32 banks, 4-byte words): lanes hitting
    different words of the same bank serialize. Returns the worst-case
    bank multiplicity (1 = conflict-free; broadcasts of the *same* word
    are free, as on hardware)."""
    if not mask.any():
        return 1
    words = addrs[mask] // 4
    unique_words = np.unique(words)
    if len(unique_words) <= 1:
        return 1  # single word: broadcast
    banks = unique_words % 32
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())
