"""Kernel pre-decoding: lower IR once, execute micro-ops many times.

``Device.load_module`` lowers every function body into flat per-block
micro-op arrays (:class:`DecodedBlock.ops`). Decoding resolves, once
per module load, everything the seed interpreter re-derived on every
dynamic instruction:

* type-dict dispatch -> a handler function stored on each micro-op;
* ``id()``-keyed register dicts -> dense integer register slots (one
  slot per SSA value/argument per function), so frames preallocate a
  plain list register file;
* constants and global addresses -> immediate numpy scalars (vector
  positions are pre-broadcast to full lane vectors);
* GEP strides, load/store dtypes and cache-operator bypass modes,
  branch targets, reconvergence blocks (ipostdoms) and per-edge phi
  move lists -> plain fields on the micro-op.

Operand references are encoded compactly: a Python ``int`` is a register
slot, anything else is an immediate (numpy scalar or pre-broadcast lane
vector) -- discriminated with ``type(ref) is int``, which no numpy scalar
satisfies.

Handlers share one signature ``run(op, it, warp, frame, entry, mask)``
where ``it`` is the :class:`~repro.gpu.interpreter.WarpInterpreter`.
They are module-level functions (fork-safe for the parallel launch
path) and must mirror the seed interpreter's semantics exactly --
equivalence is pinned by tests/test_fastpath_equivalence.py and the
committed benchmark outputs.

The micro-op array is the contract between execution backends (see
docs/architecture.md): the per-warp interpreter calls ``op.run``
directly, while the batched backend (:mod:`repro.gpu.backend_batched`)
dispatches on the *identity* of ``op.run`` to a vectorized equivalent
and falls back to the interpreter for any handler it has no entry for.
Adding a handler here therefore never breaks the batched backend -- at
worst the new micro-op de-batches the CTA that executes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.coalescing import coalesce_lines
from repro.gpu.simt import StackEntry
from repro.gpu.vecops import (
    _apply_binop,
    _apply_math,
    _bank_conflict_degree,
)
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import AddressSpace
from repro.ir.values import Argument, Constant, GlobalString, GlobalVariable

_I64 = np.int64

#: Raised (as an exception type re-exported by the interpreter) when a
#: warp reaches a CTA barrier; defined here to avoid an import cycle.
class BarrierReached(Exception):
    """Internal signal: the warp must wait at a CTA barrier."""


class MicroOp:
    """One pre-decoded instruction: a handler plus resolved operands."""

    __slots__ = ("run", "dst", "a", "b", "c", "d", "loc")

    def __init__(self, run, dst=None, a=None, b=None, c=None, d=None,
                 loc: Optional[DebugLoc] = None):
        self.run = run
        self.dst = dst
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.loc = loc

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MicroOp {self.run.__name__}>"


class DecodedBlock:
    """One basic block lowered to a flat micro-op array (phis removed)."""

    __slots__ = ("name", "block", "ops")

    def __init__(self, name: str, block):
        self.name = name
        self.block = block  # the source BasicBlock (debugging / hooks)
        self.ops: List[MicroOp] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DecodedBlock {self.name} ({len(self.ops)} ops)>"


class DecodedFunction:
    """A function lowered for execution: blocks + register-file layout."""

    __slots__ = ("function", "name", "n_slots", "slot_names", "arg_slots",
                 "entry", "blocks", "ret_dtype")

    def __init__(self, function):
        self.function = function
        self.name = function.name
        self.n_slots = 0
        self.slot_names: List[str] = []
        self.arg_slots: List[int] = []
        self.entry: Optional[DecodedBlock] = None
        self.blocks: List[DecodedBlock] = []
        self.ret_dtype = (
            None
            if function.return_type.is_void
            else function.return_type.numpy_dtype()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DecodedFunction {self.name} slots={self.n_slots}>"


# -- operand helpers ----------------------------------------------------------------
def _undef(frame, slot: int):
    name = frame.decoded.slot_names[slot]
    raise ExecutionError(
        f"read of undefined value %{name} in @{frame.function.name}"
    )


def _apply_phi_moves(frame, moves, mask, warp_size: int) -> None:
    """Parallel-copy semantics for one CFG edge's phi prefix.

    All incoming values are read before any phi register is written,
    and only ``mask`` lanes are updated (predicated writes, which is
    how hardware realises SSA merges under divergence).
    """
    regs = frame.regs
    vals = []
    for dst, src, dtype in moves:
        if type(src) is int:
            v = regs[src]
            if v is None:
                _undef(frame, src)
            if v.ndim == 0:
                v = np.full(warp_size, v, dtype)
        else:
            v = src
        vals.append(v)
    for (dst, _, _), v in zip(moves, vals):
        prev = regs[dst]
        regs[dst] = v.copy() if prev is None else np.where(mask, v, prev)


def _model_global(it, warp, addrs, mask, width: int, mode: int,
                  is_write: bool) -> None:
    """Coalesce and send transactions through L1 + MSHRs + timing."""
    lines = coalesce_lines(addrs, mask, width, it.line_size)
    _model_global_lines(it, warp, lines, mode, is_write)


def _model_global_lines(it, warp, lines, mode: int, is_write: bool) -> None:
    """Send pre-coalesced cache lines through L1 + MSHRs + timing.

    Split out so the batched backend can coalesce a whole batch's
    address matrix once at record time and replay each warp with its
    precomputed line list.
    """
    if mode == 1:
        bypass = True
    elif mode == 0:
        bypass = False
    else:  # dynamic: horizontal bypass past the launch threshold
        threshold = it.ctx.l1_warps_per_cta
        bypass = threshold is not None and warp.warp_in_cta >= threshold
    ctx = it.ctx
    l1 = ctx.l1
    timing = ctx.timing
    hits = misses = bypassed = 0
    for line in lines:
        if is_write:
            hit = l1.write(line, bypass)
        else:
            hit = l1.read(line, bypass)
        if bypass:
            bypassed += 1
        elif hit:
            hits += 1
        else:
            misses += 1
            if not ctx.mshr.request(line, timing.cycles, it.l2_latency):
                timing.mshr_failure()
    timing.global_transactions(hits, misses, bypassed)
    ctx.transactions += len(lines)


def _do_branch(frame, entry, target, moves, mask, warp_size) -> None:
    if moves:
        _apply_phi_moves(frame, moves, mask, warp_size)
    if entry.reconv is target:
        # This path reached its reconvergence point; its lanes are
        # already represented in the waiting entry's union mask.
        frame.stack.pop()
        return
    entry.block = target
    entry.index = 0


# -- micro-op handlers ---------------------------------------------------------------
def _mo_alloca(op, it, warp, frame, entry, mask):
    size = op.a
    addr = (frame.sp + size - 1) // size * size
    frame.sp = addr + size * op.b
    if frame.sp > warp.local_mem.arena_size:
        raise ExecutionError("kernel thread stack overflow (too many allocas)")
    frame.regs[op.dst] = _I64(addr)
    entry.index += 1


def _mo_gep(op, it, warp, frame, entry, mask):
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    index = frame.regs[op.b]
    if index is None:
        _undef(frame, op.b)
    frame.regs[op.dst] = base + index.astype(_I64) * op.c
    entry.index += 1


def _mo_gep_const(op, it, warp, frame, entry, mask):
    # Index was a constant: byte offset folded at decode time.
    base = op.a
    if type(base) is int:
        base = frame.regs[base]
        if base is None:
            _undef(frame, op.a)
    frame.regs[op.dst] = base + op.b
    entry.index += 1


def _mo_binop(op, it, warp, frame, entry, mask):
    a = op.a
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.a)
    b = op.b
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.b)
    frame.regs[op.dst] = op.c(a, b, mask)
    entry.index += 1


def _mo_const(op, it, warp, frame, entry, mask):
    frame.regs[op.dst] = op.a
    entry.index += 1


def _mo_cast_repr(op, it, warp, frame, entry, mask):
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    # bitcast: pointers and i64 share representation; reinterpret vectors.
    if op.b is not None and v.ndim and v.dtype != op.b:
        v = v.view(op.b)
    frame.regs[op.dst] = v
    entry.index += 1


def _mo_cast_bool(op, it, warp, frame, entry, mask):
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    frame.regs[op.dst] = (np.asarray(v) & 1).astype(np.bool_)
    entry.index += 1


def _mo_cast(op, it, warp, frame, entry, mask):
    v = frame.regs[op.a]
    if v is None:
        _undef(frame, op.a)
    frame.regs[op.dst] = np.asarray(v).astype(op.b)
    entry.index += 1


def _mo_select(op, it, warp, frame, entry, mask):
    c = op.a
    if type(c) is int:
        c = frame.regs[c]
        if c is None:
            _undef(frame, op.a)
    if c.ndim == 0:
        c = np.full(it.warp_size, c, np.bool_)
    a = op.b
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.b)
    b = op.c
    if type(b) is int:
        b = frame.regs[b]
        if b is None:
            _undef(frame, op.c)
    frame.regs[op.dst] = np.where(c, a, b)
    entry.index += 1


def _read_addrs(op, it, frame):
    a = op.a
    if type(a) is int:
        a = frame.regs[a]
        if a is None:
            _undef(frame, op.a)
    if a.ndim == 0:
        a = np.full(it.warp_size, a, _I64)
    return a


def _mo_ld_global(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    _model_global(it, warp, addrs, mask, op.c, op.d, False)
    frame.regs[op.dst] = it.ctx.global_mem.gather(addrs, mask, op.b)
    entry.index += 1
    return "mem"


def _mo_ld_shared(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    it.ctx.timing.shared_access(_bank_conflict_degree(addrs, mask))
    frame.regs[op.dst] = it.ctx.shared_mem.gather(addrs, mask, op.b)
    entry.index += 1


def _mo_ld_local(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    frame.regs[op.dst] = warp.local_mem.gather(addrs, mask, op.b)
    entry.index += 1


def _mo_ld_const(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    frame.regs[op.dst] = it.image.constant_gather(addrs, mask, op.b)
    entry.index += 1


def _read_store_value(op, it, frame):
    v = op.b
    dtype = op.c
    if type(v) is int:
        v = frame.regs[v]
        if v is None:
            _undef(frame, op.b)
    if v.ndim == 0:
        v = np.full(it.warp_size, v, dtype)
    elif v.dtype != dtype:
        v = v.astype(dtype)
    return v


def _mo_st_global(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    values = _read_store_value(op, it, frame)
    _model_global(it, warp, addrs, mask, op.c.itemsize, op.d, True)
    it.ctx.global_mem.scatter(addrs, mask, values)
    entry.index += 1
    return "mem"


def _mo_st_shared(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    values = _read_store_value(op, it, frame)
    it.ctx.timing.shared_access(_bank_conflict_degree(addrs, mask))
    it.ctx.shared_mem.scatter(addrs, mask, values)
    entry.index += 1


def _mo_st_local(op, it, warp, frame, entry, mask):
    addrs = _read_addrs(op, it, frame)
    values = _read_store_value(op, it, frame)
    warp.local_mem.scatter(addrs, mask, values)
    entry.index += 1


_ONE_LANE = np.ones(1, dtype=bool)


def _run_atomic(op, it, warp, frame, entry, mask, arena):
    addrs = _read_addrs(op, it, frame)
    values = _read_store_value(op, it, frame)
    dtype = op.c
    lanes = np.flatnonzero(mask)
    it.ctx.timing.atomic(len(lanes))
    old = np.zeros(it.warp_size, dtype=dtype)
    apply_op = op.d
    for lane in lanes:
        addr = addrs[lane: lane + 1]
        current = arena.gather(addr, _ONE_LANE, dtype)[0]
        old[lane] = current
        new = apply_op(current, values[lane])
        arena.scatter(addr, _ONE_LANE, np.array([new], dtype=dtype))
    frame.regs[op.dst] = old
    entry.index += 1
    return addrs


def _mo_atomic_global(op, it, warp, frame, entry, mask):
    # Atomics always go to L2 on GPUs (bypass mode 1).
    addrs = _read_addrs(op, it, frame)
    _model_global(it, warp, addrs, mask, op.c.itemsize, 1, True)
    _run_atomic(op, it, warp, frame, entry, mask, it.ctx.global_mem)
    return "mem"


def _mo_atomic_shared(op, it, warp, frame, entry, mask):
    it.ctx.timing.shared_access(
        _bank_conflict_degree(_read_addrs(op, it, frame), mask)
    )
    _run_atomic(op, it, warp, frame, entry, mask, it.ctx.shared_mem)


def _mo_barrier(op, it, warp, frame, entry, mask):
    live = warp.resident_mask & ~frame.returned_mask
    if not np.array_equal(mask, live):
        raise ExecutionError(
            "__syncthreads() reached under divergent control "
            f"flow in @{frame.function.name} (undefined in CUDA)"
        )
    entry.index += 1  # resume after the barrier
    raise BarrierReached()


def _mo_intrin(op, it, warp, frame, entry, mask):
    frame.regs[op.dst] = op.a(warp)
    entry.index += 1


def _mo_math(op, it, warp, frame, entry, mask):
    args = []
    ws = it.warp_size
    regs = frame.regs
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            if v.ndim == 0:
                v = np.full(ws, v, v.dtype)
        else:
            v = r
        args.append(v)
    regs[op.dst] = _apply_math(op.b, args, mask)
    entry.index += 1


def _mo_hook(op, it, warp, frame, entry, mask):
    regs = frame.regs
    args = []
    for r in op.a:
        if type(r) is int:
            v = regs[r]
            if v is None:
                _undef(frame, r)
            args.append(v)
        else:
            args.append(r)
    ctx = it.ctx
    ctx.timing.hook_call(entry.nactive)
    ctx.hooks.dispatch(op.b, args, mask, warp, ctx, entry.nactive)
    entry.index += 1


def _mo_call(op, it, warp, frame, entry, mask):
    entry.index += 1  # resume after the call on return
    callee = op.b
    new_frame = warp.push_frame(callee, mask, ret_slot=op.dst)
    regs = frame.regs
    new_regs = new_frame.regs
    for slot, ref in zip(callee.arg_slots, op.a):
        if type(ref) is int:
            v = regs[ref]
            if v is None:
                _undef(frame, ref)
        else:
            v = ref
        new_regs[slot] = v


def _mo_br(op, it, warp, frame, entry, mask):
    _do_branch(frame, entry, op.a, op.b, mask, it.warp_size)


def _mo_condbr(op, it, warp, frame, entry, mask):
    warp.branch_count += 1
    cond = op.a
    if type(cond) is int:
        cond = frame.regs[cond]
        if cond is None:
            _undef(frame, op.a)
    if cond.ndim == 0:
        cond = np.full(it.warp_size, cond, np.bool_)
    taken = cond & mask
    not_taken = ~cond & mask
    if not not_taken.any():
        _do_branch(frame, entry, op.b[0], op.b[1], mask, it.warp_size)
        return
    if not taken.any():
        _do_branch(frame, entry, op.c[0], op.c[1], mask, it.warp_size)
        return

    # Divergence: retarget this entry to the reconvergence point and
    # push one entry per path (paths that start at the reconvergence
    # point just wait there -- their lanes stay in this entry's mask).
    warp.divergent_branch_count += 1
    reconv = op.d  # may be None: wait for returns
    entry.block = reconv
    entry.index = 0
    ws = it.warp_size
    for (target, moves), path_mask in ((op.c, not_taken), (op.b, taken)):
        if moves:
            _apply_phi_moves(frame, moves, path_mask, ws)
        if target is not reconv:
            frame.stack.append(StackEntry(target, 0, reconv, path_mask))


def _mo_ret(op, it, warp, frame, entry, mask):
    ref = op.a
    if ref is not None:
        if type(ref) is int:
            value = frame.regs[ref]
            if value is None:
                _undef(frame, ref)
            if value.ndim == 0:
                value = np.full(it.warp_size, value, frame.decoded.ret_dtype)
        else:
            value = ref
        if frame.ret_values is None:
            frame.ret_values = value.copy()
        else:
            frame.ret_values = np.where(mask, value, frame.ret_values)
    warp.retire_lanes(mask)
    if not frame.stack:
        it._pop_frame(warp)


def _mo_fell_off(op, it, warp, frame, entry, mask):
    raise ExecutionError(
        f"fell off the end of block {op.a} in @{frame.function.name}"
    )


def _mo_unexpected_phi(op, it, warp, frame, entry, mask):
    # Phis never execute: their registers are written by the parallel
    # phi-moves performed on each traversed CFG edge. Reaching one means
    # it was not part of the block's leading phi prefix.
    raise ExecutionError(
        f"phi reached by sequential execution in {op.a}"
    )


def _mo_raise(op, it, warp, frame, entry, mask):
    raise ExecutionError(op.a)


# -- intrinsic accessors ------------------------------------------------------------
def _acc_tid_x(w):
    return w.tid_x


def _acc_tid_y(w):
    return w.tid_y


def _acc_tid_z(w):
    return w.tid_z


def _acc_ctaid_x(w):
    return w.ctaid_x


def _acc_ctaid_y(w):
    return w.ctaid_y


def _acc_ctaid_z(w):
    return w.ctaid_z


def _acc_ntid_x(w):
    return w.ntid_x


def _acc_ntid_y(w):
    return w.ntid_y


def _acc_ntid_z(w):
    return w.ntid_z


def _acc_nctaid_x(w):
    return w.nctaid_x


def _acc_nctaid_y(w):
    return w.nctaid_y


def _acc_nctaid_z(w):
    return w.nctaid_z


def _acc_laneid(w):
    return w.lane_ids


def _acc_warpid(w):
    return w.warpid_np


_INTRINSIC_ACCESSORS = {
    "nvvm.tid.x": _acc_tid_x,
    "nvvm.tid.y": _acc_tid_y,
    "nvvm.tid.z": _acc_tid_z,
    "nvvm.ctaid.x": _acc_ctaid_x,
    "nvvm.ctaid.y": _acc_ctaid_y,
    "nvvm.ctaid.z": _acc_ctaid_z,
    "nvvm.ntid.x": _acc_ntid_x,
    "nvvm.ntid.y": _acc_ntid_y,
    "nvvm.ntid.z": _acc_ntid_z,
    "nvvm.nctaid.x": _acc_nctaid_x,
    "nvvm.nctaid.y": _acc_nctaid_y,
    "nvvm.nctaid.z": _acc_nctaid_z,
    "nvvm.laneid": _acc_laneid,
    "nvvm.warpid": _acc_warpid,
}


# -- opcode tables -------------------------------------------------------------------
def _b_add(l, r, m):
    return l + r


def _b_sub(l, r, m):
    return l - r


def _b_mul(l, r, m):
    return l * r


def _b_and(l, r, m):
    return l & r


def _b_or(l, r, m):
    return l | r


def _b_xor(l, r, m):
    return l ^ r


def _b_shl(l, r, m):
    return l << r


def _b_ashr(l, r, m):
    return l >> r


def _b_min(l, r, m):
    return np.minimum(l, r)


def _b_max(l, r, m):
    return np.maximum(l, r)


def _delegated(opcode):
    def run(l, r, m, _op=opcode):
        return _apply_binop(_op, np.asarray(l), np.asarray(r), m)
    run.__name__ = f"_b_{opcode.value}"
    return run


_BINOP_FUNCS = {
    Opcode.ADD: _b_add,
    Opcode.FADD: _b_add,
    Opcode.SUB: _b_sub,
    Opcode.FSUB: _b_sub,
    Opcode.MUL: _b_mul,
    Opcode.FMUL: _b_mul,
    Opcode.AND: _b_and,
    Opcode.OR: _b_or,
    Opcode.XOR: _b_xor,
    Opcode.SHL: _b_shl,
    Opcode.ASHR: _b_ashr,
    Opcode.SMIN: _b_min,
    Opcode.FMIN: _b_min,
    Opcode.SMAX: _b_max,
    Opcode.FMAX: _b_max,
}
for _op in (Opcode.LSHR, Opcode.FDIV, Opcode.FREM, Opcode.SDIV,
            Opcode.SREM, Opcode.UDIV, Opcode.UREM):
    _BINOP_FUNCS[_op] = _delegated(_op)


def _c_eq(l, r, m):
    return l == r


def _c_ne(l, r, m):
    return l != r


def _c_lt(l, r, m):
    return l < r


def _c_le(l, r, m):
    return l <= r


def _c_gt(l, r, m):
    return l > r


def _c_ge(l, r, m):
    return l >= r


_CMP_FUNCS = {
    CmpPred.EQ: _c_eq,
    CmpPred.NE: _c_ne,
    CmpPred.LT: _c_lt,
    CmpPred.LE: _c_le,
    CmpPred.GT: _c_gt,
    CmpPred.GE: _c_ge,
}


def _a_add(c, v):
    return c + v


def _a_sub(c, v):
    return c - v


def _a_min(c, v):
    return min(c, v)


def _a_max(c, v):
    return max(c, v)


def _a_exch(c, v):
    return v


def _a_and(c, v):
    return c & v


def _a_or(c, v):
    return c | v


def _a_xor(c, v):
    return c ^ v


_ATOMIC_FUNCS = {
    AtomicOp.ADD: _a_add,
    AtomicOp.SUB: _a_sub,
    AtomicOp.MIN: _a_min,
    AtomicOp.MAX: _a_max,
    AtomicOp.EXCH: _a_exch,
    AtomicOp.AND: _a_and,
    AtomicOp.OR: _a_or,
    AtomicOp.XOR: _a_xor,
}

_BYPASS_MODE = {
    CacheOp.CACHE_ALL: 0,
    CacheOp.CACHE_GLOBAL: 1,
    CacheOp.DYNAMIC: 2,
}


# -- the decoder --------------------------------------------------------------------
class _FunctionDecoder:
    def __init__(self, image, decoded_map, out, debug_locs):
        self.image = image
        self.decoded_map = decoded_map
        self.fn = out.function
        self.warp_size = image.device.arch.warp_size
        self.debug_locs = debug_locs
        self.out = out
        self.slot_of: Dict[int, int] = {}

    def _new_slot(self, value) -> int:
        slot = self.out.n_slots
        self.out.n_slots += 1
        self.out.slot_names.append(value.name or f"v{slot}")
        self.slot_of[id(value)] = slot
        return slot

    def _imm(self, v):
        """Resolve a non-slot value to its immediate numpy scalar."""
        if isinstance(v, Constant):
            return v.type.numpy_dtype().type(v.value)
        return _I64(self.image.address_of(v))

    def _ref(self, v):
        """slot int (register) or numpy scalar (immediate)."""
        if isinstance(v, (Constant, GlobalVariable, GlobalString)):
            return self._imm(v)
        slot = self.slot_of.get(id(v))
        if slot is None:
            # A value with no defining slot in this function: reading it
            # is the "read of undefined value" error of the interpreter.
            slot = self._new_slot(v)
        return slot

    def _vref(self, v, dtype=None):
        """Like _ref but pre-broadcasts immediates to full lane vectors
        (the positions the interpreter passed through ``_vector``)."""
        r = self._ref(v)
        if type(r) is int:
            return r
        if dtype is None:
            dtype = np.asarray(r).dtype
        return np.full(self.warp_size, r, dtype)

    def _loc(self, inst) -> Optional[DebugLoc]:
        loc = inst.debug_loc
        if loc is None:
            return None
        return self.debug_locs.setdefault(loc, loc)

    def decode(self) -> DecodedFunction:
        fn = self.fn
        for arg in fn.args:
            self.out.arg_slots.append(self._new_slot(arg))
        # Pre-assign a slot for every value-producing instruction so
        # operand references never depend on block order.
        for block in fn.blocks:
            for inst in block.instructions:
                if not inst.type.is_void:
                    self._new_slot(inst)

        shells = {id(b): DecodedBlock(b.name, b) for b in fn.blocks}
        self.shells = shells
        for block in fn.blocks:
            self._decode_block(block, shells[id(block)])
        self.out.blocks = [shells[id(b)] for b in fn.blocks]
        self.out.entry = shells[id(fn.entry)]
        return self.out

    # -- per-block ------------------------------------------------------------
    def _decode_block(self, block, out: DecodedBlock) -> None:
        ops = out.ops
        in_phi_prefix = True
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if in_phi_prefix:
                    continue  # executed as edge moves, never sequentially
                ops.append(MicroOp(_mo_unexpected_phi, a=block.name,
                                   loc=self._loc(inst)))
                continue
            in_phi_prefix = False
            ops.append(self._decode_inst(block, inst))
        # Sentinel: lets the step loop skip per-instruction bounds checks.
        ops.append(MicroOp(_mo_fell_off, a=block.name))

    def _phi_moves_for_edge(self, pred_block, succ_block):
        """The (dst_slot, src_ref, dtype) parallel-copy list for an edge."""
        moves = []
        for inst in succ_block.instructions:
            if not isinstance(inst, Phi):
                break
            chosen = None
            for value, blk in inst.incoming:
                if blk is pred_block:
                    chosen = value
                    break
            if chosen is None:
                raise ExecutionError(
                    f"phi in {succ_block.name} lacks an arm for "
                    f"{pred_block.name}"
                )
            moves.append((
                self.slot_of[id(inst)],
                self._vref(chosen, inst.type.numpy_dtype()),
                inst.type.numpy_dtype(),
            ))
        return tuple(moves)

    def _edge(self, pred_block, succ_block):
        """(target DecodedBlock, phi moves) for one CFG edge."""
        return (
            self.shells[id(succ_block)],
            self._phi_moves_for_edge(pred_block, succ_block),
        )

    # -- per-instruction -----------------------------------------------------
    def _decode_inst(self, block, inst) -> MicroOp:
        loc = self._loc(inst)
        if isinstance(inst, Alloca):
            return MicroOp(
                _mo_alloca, dst=self.slot_of[id(inst)],
                a=inst.element_type.size_bytes(), b=inst.count, loc=loc,
            )
        if isinstance(inst, GetElementPtr):
            stride = inst.type.pointee.size_bytes()
            base = self._ref(inst.base)
            index = self._ref(inst.index)
            if type(index) is int:
                return MicroOp(
                    _mo_gep, dst=self.slot_of[id(inst)],
                    a=base, b=index, c=stride, loc=loc,
                )
            return MicroOp(
                _mo_gep_const, dst=self.slot_of[id(inst)],
                a=base, b=_I64(index.astype(_I64) * stride), loc=loc,
            )
        if isinstance(inst, Load):
            dtype = inst.type.numpy_dtype()
            space = inst.pointer.type.addrspace
            handlers = {
                AddressSpace.GLOBAL: _mo_ld_global,
                AddressSpace.SHARED: _mo_ld_shared,
                AddressSpace.LOCAL: _mo_ld_local,
                AddressSpace.CONSTANT: _mo_ld_const,
            }
            handler = handlers.get(space)
            if handler is None:
                return MicroOp(
                    _mo_raise,
                    a=f"load from unsupported address space {space}", loc=loc,
                )
            return MicroOp(
                handler, dst=self.slot_of[id(inst)],
                a=self._vref(inst.pointer, _I64), b=dtype,
                c=dtype.itemsize, d=_BYPASS_MODE[inst.cache_op], loc=loc,
            )
        if isinstance(inst, Store):
            dtype = inst.value.type.numpy_dtype()
            space = inst.pointer.type.addrspace
            handlers = {
                AddressSpace.GLOBAL: _mo_st_global,
                AddressSpace.SHARED: _mo_st_shared,
                AddressSpace.LOCAL: _mo_st_local,
            }
            handler = handlers.get(space)
            if handler is None:
                return MicroOp(
                    _mo_raise,
                    a=f"store to unsupported address space {space}", loc=loc,
                )
            return MicroOp(
                handler,
                a=self._vref(inst.pointer, _I64),
                b=self._vref(inst.value, dtype), c=dtype,
                d=_BYPASS_MODE[inst.cache_op], loc=loc,
            )
        if isinstance(inst, BinOp):
            return MicroOp(
                _mo_binop, dst=self.slot_of[id(inst)],
                a=self._ref(inst.lhs), b=self._ref(inst.rhs),
                c=_BINOP_FUNCS[inst.opcode], loc=loc,
            )
        if isinstance(inst, (ICmp, FCmp)):
            return MicroOp(
                _mo_binop, dst=self.slot_of[id(inst)],
                a=self._ref(inst.lhs), b=self._ref(inst.rhs),
                c=_CMP_FUNCS[inst.pred], loc=loc,
            )
        if isinstance(inst, Cast):
            return self._decode_cast(inst, loc)
        if isinstance(inst, Select):
            return MicroOp(
                _mo_select, dst=self.slot_of[id(inst)],
                a=self._vref(inst.cond, np.bool_),
                b=self._ref(inst.iftrue), c=self._ref(inst.iffalse), loc=loc,
            )
        if isinstance(inst, AtomicRMW):
            return self._decode_atomic(inst, loc)
        if isinstance(inst, Call):
            return self._decode_call(inst, loc)
        if isinstance(inst, Br):
            target, moves = self._edge(block, inst.target)
            return MicroOp(_mo_br, a=target, b=moves, loc=loc)
        if isinstance(inst, CondBr):
            reconv = self.image.ipostdom(self.fn, block)
            return MicroOp(
                _mo_condbr,
                a=self._vref(inst.cond, np.bool_),
                b=self._edge(block, inst.iftrue),
                c=self._edge(block, inst.iffalse),
                d=self.shells[id(reconv)] if reconv is not None else None,
                loc=loc,
            )
        if isinstance(inst, Ret):
            ref = None
            if inst.value is not None:
                ref = self._vref(inst.value, self.out.ret_dtype)
            return MicroOp(_mo_ret, a=ref, loc=loc)
        return MicroOp(_mo_raise, a=f"cannot execute instruction {inst!r}",
                       loc=loc)

    def _decode_cast(self, inst: Cast, loc) -> MicroOp:
        dst = self.slot_of[id(inst)]
        dtype = inst.type.numpy_dtype()
        kind = inst.kind
        src = self._ref(inst.value)
        if type(src) is not int:
            # Constant-fold at decode time with the interpreter's rules.
            if kind in (CastKind.BITCAST, CastKind.PTRTOINT,
                        CastKind.INTTOPTR):
                folded = src
            elif kind == CastKind.TRUNC and inst.type.is_bool:
                folded = (np.asarray(src) & 1).astype(np.bool_)
            else:
                folded = np.asarray(src).astype(dtype)
            return MicroOp(_mo_const, dst=dst, a=folded, loc=loc)
        if kind in (CastKind.BITCAST, CastKind.PTRTOINT, CastKind.INTTOPTR):
            view = dtype if kind == CastKind.BITCAST else None
            return MicroOp(_mo_cast_repr, dst=dst, a=src, b=view, loc=loc)
        if kind == CastKind.TRUNC and inst.type.is_bool:
            return MicroOp(_mo_cast_bool, dst=dst, a=src, loc=loc)
        return MicroOp(_mo_cast, dst=dst, a=src, b=dtype, loc=loc)

    def _decode_atomic(self, inst: AtomicRMW, loc) -> MicroOp:
        space = inst.pointer.type.addrspace
        dtype = inst.value.type.numpy_dtype()
        apply_op = _ATOMIC_FUNCS.get(inst.op)
        if apply_op is None:
            def apply_op(c, v, _op=inst.op):
                raise ExecutionError(f"unhandled atomic {_op}")
        if space == AddressSpace.GLOBAL:
            handler = _mo_atomic_global
        elif space == AddressSpace.SHARED:
            handler = _mo_atomic_shared
        else:
            return MicroOp(
                _mo_raise,
                a=f"atomic on unsupported address space {space}", loc=loc,
            )
        return MicroOp(
            handler, dst=self.slot_of[id(inst)],
            a=self._vref(inst.pointer, _I64),
            b=self._vref(inst.value, dtype), c=dtype, d=apply_op, loc=loc,
        )

    def _decode_call(self, inst: Call, loc) -> MicroOp:
        callee = inst.callee
        if callee.kind == "intrinsic":
            name = callee.name
            if name == "nvvm.barrier0":
                return MicroOp(_mo_barrier, loc=loc)
            if name == "nvvm.warpsize":
                return MicroOp(
                    _mo_const, dst=self.slot_of[id(inst)],
                    a=np.int32(self.warp_size), loc=loc,
                )
            accessor = _INTRINSIC_ACCESSORS.get(name)
            if accessor is not None:
                return MicroOp(
                    _mo_intrin, dst=self.slot_of[id(inst)], a=accessor,
                    loc=loc,
                )
            if name.startswith("nv."):
                return MicroOp(
                    _mo_math, dst=self.slot_of[id(inst)],
                    a=tuple(self._vref(a) for a in inst.args), b=name,
                    loc=loc,
                )
            return MicroOp(_mo_raise, a=f"unknown intrinsic @{name}", loc=loc)
        if callee.kind == "hook":
            return MicroOp(
                _mo_hook, a=tuple(self._ref(a) for a in inst.args),
                b=callee.name, loc=loc,
            )
        if callee.is_declaration:
            return MicroOp(
                _mo_raise, a=f"call to undefined function @{callee.name}",
                loc=loc,
            )
        ret_slot = None if inst.type.is_void else self.slot_of[id(inst)]
        return MicroOp(
            _mo_call, dst=ret_slot,
            a=tuple(self._ref(a) for a in inst.args),
            b=self.decoded_map[callee.name], loc=loc,
        )


def decode_module(image) -> Dict[str, DecodedFunction]:
    """Lower every defined kernel/device function of a loaded module."""
    module = image.module
    decoded: Dict[str, DecodedFunction] = {}
    bodies = [
        fn for fn in module.functions.values()
        if fn.kind in ("kernel", "device") and not fn.is_declaration
    ]
    # Shells first so calls can reference callees in any order.
    for fn in bodies:
        decoded[fn.name] = DecodedFunction(fn)
    debug_locs: Dict[DebugLoc, DebugLoc] = {}
    for fn in bodies:
        _FunctionDecoder(image, decoded, decoded[fn.name], debug_locs).decode()
    return decoded
