"""Backend: IR -> PTX-like assembly -> fat binary.

Completes the Figure 2 compilation workflow: the instrumented device
bitcode is lowered to PTX text (:mod:`repro.backend.ptx`), assembled
into a fat-binary container (:mod:`repro.backend.fatbin`) and embedded
into the host program, which registers it with the runtime at startup.
The simulator executes the IR that produced the PTX; the PTX is the
inspectable artifact (and carries the Listing-5 style cache-operator
annotations produced by the bypass pass).
"""

from repro.backend.ptx import lower_module_to_ptx
from repro.backend.fatbin import FatBinary, embed_fatbin

__all__ = ["FatBinary", "embed_fatbin", "lower_module_to_ptx"]
