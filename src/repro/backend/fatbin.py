"""Fat binaries: PTX images bundled per compute capability.

On the real toolchain, ``ptxas`` output is packed into a ``.fatbin``
section that the host binary registers with the CUDA runtime at load
time. :class:`FatBinary` is that container; :func:`embed_fatbin`
attaches it to a host module as a string literal, which is what the
paper's Figure 2 shows ("the fat binary ... is then inserted to the
host-side CPU bitcode as a string literal").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import BackendError
from repro.backend.ptx import lower_module_to_ptx
from repro.ir.module import Module

MAGIC = "CUFATBIN-REPRO-1"


@dataclass
class FatBinary:
    """A bundle of PTX images keyed by compute capability."""

    module_name: str
    images: Dict[str, str] = field(default_factory=dict)

    def add_image(self, compute_capability: str, ptx: str) -> None:
        self.images[compute_capability] = ptx

    def best_image(self, compute_capability: str) -> str:
        """Highest image not exceeding the device's capability (JIT rule)."""
        usable = [
            cc for cc in self.images if float(cc) <= float(compute_capability)
        ]
        if not usable:
            raise BackendError(
                f"fat binary has no image for sm_{compute_capability}"
            )
        return self.images[max(usable, key=float)]

    def serialize(self) -> str:
        payload = {
            "magic": MAGIC,
            "module": self.module_name,
            "images": self.images,
        }
        blob = json.dumps(payload, sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
        return f"{digest}:{blob}"

    @classmethod
    def deserialize(cls, text: str) -> "FatBinary":
        digest, _, blob = text.partition(":")
        if hashlib.sha256(blob.encode()).hexdigest()[:16] != digest:
            raise BackendError("corrupt fat binary")
        payload = json.loads(blob)
        if payload.get("magic") != MAGIC:
            raise BackendError("not a fat binary")
        fat = cls(payload["module"])
        fat.images = payload["images"]
        return fat


def build_fatbin(
    device_module: Module, compute_capabilities: List[str]
) -> FatBinary:
    fat = FatBinary(device_module.name)
    for cc in compute_capabilities:
        fat.add_image(cc, lower_module_to_ptx(device_module, cc))
    return fat


def embed_fatbin(host_module: Module, fat: FatBinary) -> None:
    """Insert the serialized fat binary into the host module as a string."""
    host_module.add_string(fat.serialize())
