"""Lowering from the mini-IR to PTX-flavoured assembly text.

A readable, syntactically PTX-like lowering: typed virtual registers
(``%r`` i32, ``%rd`` i64/pointers, ``%f`` f32, ``%fd`` f64, ``%p``
predicates), ``ld``/``st`` with state spaces and cache operators,
``setp`` + predicated ``bra`` for control flow. It exists to complete
the toolchain (Figure 2) and to carry the horizontal-bypass rewrite
visibly (``ld.global.ca`` vs ``ld.global.cg``, Listing 5); the
simulator executes the originating IR.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import BackendError
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    Type,
)
from repro.ir.values import Argument, Constant, GlobalString, GlobalVariable

_SPACE_NAMES = {
    AddressSpace.GLOBAL: "global",
    AddressSpace.SHARED: "shared",
    AddressSpace.LOCAL: "local",
    AddressSpace.CONSTANT: "const",
    AddressSpace.GENERIC: "",
}

_PRED_NAMES = {
    CmpPred.EQ: "eq",
    CmpPred.NE: "ne",
    CmpPred.LT: "lt",
    CmpPred.LE: "le",
    CmpPred.GT: "gt",
    CmpPred.GE: "ge",
}


def _ptx_type(t: Type) -> str:
    if isinstance(t, PointerType):
        return "u64"
    if isinstance(t, IntType):
        if t.bits == 1:
            return "pred"
        return f"s{t.bits}"
    if isinstance(t, FloatType):
        return f"f{t.bits}"
    raise BackendError(f"no PTX type for {t}")


def _reg_class(t: Type) -> str:
    if isinstance(t, PointerType):
        return "rd"
    if isinstance(t, IntType):
        if t.bits == 1:
            return "p"
        return "rd" if t.bits == 64 else "r"
    if isinstance(t, FloatType):
        return "fd" if t.bits == 64 else "f"
    raise BackendError(f"no register class for {t}")


class _FunctionLowering:
    def __init__(self, fn: Function):
        self.fn = fn
        self.reg_names: Dict[int, str] = {}
        self.counters: Dict[str, int] = {}
        self.lines: List[str] = []

    def reg(self, value) -> str:
        if isinstance(value, Constant):
            if value.type.is_float:
                import struct

                bits = struct.unpack(
                    "<I", struct.pack("<f", float(value.value))
                )[0] if value.type.size_bits() == 32 else struct.unpack(
                    "<Q", struct.pack("<d", float(value.value))
                )[0]
                return f"0{'f' if value.type.size_bits() == 32 else 'd'}{bits:0{8 if value.type.size_bits() == 32 else 16}X}"
            return str(int(value.value))
        if isinstance(value, (GlobalVariable, GlobalString)):
            return value.name.replace(".", "_")
        name = self.reg_names.get(id(value))
        if name is None:
            cls = _reg_class(value.type)
            n = self.counters.get(cls, 0)
            self.counters[cls] = n + 1
            name = f"%{cls}{n}"
            self.reg_names[id(value)] = name
        return name

    def emit(self, text: str) -> None:
        self.lines.append(f"\t{text}")

    def lower(self) -> str:
        fn = self.fn
        params = ", ".join(
            f".param .{_ptx_type(a.type)} {fn.name}_param_{i}"
            for i, a in enumerate(fn.args)
        )
        head = ".visible .entry" if fn.kind == "kernel" else ".func"
        self.lines.append(f"{head} {fn.name}({params})")
        self.lines.append("{")

        body_start = len(self.lines)
        for i, arg in enumerate(fn.args):
            self.emit(
                f"ld.param.{_ptx_type(arg.type)} {self.reg(arg)}, "
                f"[{fn.name}_param_{i}];"
            )
        for block in fn.blocks:
            self.lines.append(f"{_label(fn, block)}:")
            for inst in block.instructions:
                self.lower_inst(inst)
        # Declare registers used (PTX requires .reg directives up front).
        decls = []
        for cls, count in sorted(self.counters.items()):
            ptype = {"r": "s32", "rd": "u64", "f": "f32", "fd": "f64", "p": "pred"}[cls]
            decls.append(f"\t.reg .{ptype} %{cls}<{count}>;")
        self.lines[body_start:body_start] = decls
        self.lines.append("}")
        return "\n".join(self.lines)

    def lower_inst(self, inst: Instruction) -> None:
        fn = self.fn
        if isinstance(inst, Alloca):
            self.emit(
                f"// .local alloca {inst.count} x {inst.element_type} -> "
                f"{self.reg(inst)}"
            )
            self.emit(f"mov.u64 {self.reg(inst)}, __local_depot;")
        elif isinstance(inst, Load):
            space = _SPACE_NAMES[inst.pointer.type.addrspace]
            cop = _cache_suffix(inst.cache_op)
            self.emit(
                f"ld.{space}{cop}.{_ptx_type(inst.type)} {self.reg(inst)}, "
                f"[{self.reg(inst.pointer)}];"
            )
        elif isinstance(inst, Store):
            space = _SPACE_NAMES[inst.pointer.type.addrspace]
            cop = _cache_suffix(inst.cache_op, is_store=True)
            self.emit(
                f"st.{space}{cop}.{_ptx_type(inst.value.type)} "
                f"[{self.reg(inst.pointer)}], {self.reg(inst.value)};"
            )
        elif isinstance(inst, GetElementPtr):
            size = inst.type.pointee.size_bytes()
            tmp = self.reg(inst)
            self.emit(
                f"mad.wide.s32 {tmp}, {self.reg(inst.index)}, {size}, "
                f"{self.reg(inst.base)};"
            )
        elif isinstance(inst, BinOp):
            op = _binop_name(inst.opcode, inst.type)
            self.emit(
                f"{op}.{_ptx_type(inst.type)} {self.reg(inst)}, "
                f"{self.reg(inst.lhs)}, {self.reg(inst.rhs)};"
            )
        elif isinstance(inst, (ICmp, FCmp)):
            self.emit(
                f"setp.{_PRED_NAMES[inst.pred]}.{_ptx_type(inst.lhs.type)} "
                f"{self.reg(inst)}, {self.reg(inst.lhs)}, {self.reg(inst.rhs)};"
            )
        elif isinstance(inst, Cast):
            self.emit(
                f"cvt.{_ptx_type(inst.type)}.{_ptx_type(inst.value.type)} "
                f"{self.reg(inst)}, {self.reg(inst.value)};"
            )
        elif isinstance(inst, Select):
            self.emit(
                f"selp.{_ptx_type(inst.type)} {self.reg(inst)}, "
                f"{self.reg(inst.iftrue)}, {self.reg(inst.iffalse)}, "
                f"{self.reg(inst.cond)};"
            )
        elif isinstance(inst, AtomicRMW):
            space = _SPACE_NAMES[inst.pointer.type.addrspace]
            self.emit(
                f"atom.{space}.{inst.op.value}.{_ptx_type(inst.value.type)} "
                f"{self.reg(inst)}, [{self.reg(inst.pointer)}], "
                f"{self.reg(inst.value)};"
            )
        elif isinstance(inst, Call):
            args = ", ".join(self.reg(a) for a in inst.args)
            if inst.type.is_void:
                self.emit(f"call.uni {inst.callee.name}, ({args});")
            else:
                self.emit(
                    f"call.uni ({self.reg(inst)}), {inst.callee.name}, ({args});"
                )
        elif isinstance(inst, Br):
            self.emit(f"bra.uni {_label(fn, inst.target)};")
        elif isinstance(inst, CondBr):
            self.emit(f"@{self.reg(inst.cond)} bra {_label(fn, inst.iftrue)};")
            self.emit(f"bra.uni {_label(fn, inst.iffalse)};")
        elif isinstance(inst, Ret):
            if inst.value is not None:
                self.emit(f"st.param.{_ptx_type(inst.value.type)} [func_retval0], {self.reg(inst.value)};")
            self.emit("ret;")
        elif isinstance(inst, Phi):
            arms = ", ".join(
                f"[{self.reg(v)}: {_label(fn, b)}]" for v, b in inst.incoming
            )
            self.emit(f"// phi {self.reg(inst)} = {arms}")
        else:
            raise BackendError(f"cannot lower {inst!r}")


def _cache_suffix(cache_op: CacheOp, is_store: bool = False) -> str:
    if cache_op == CacheOp.CACHE_ALL:
        return ""  # default; ptxas uses .ca implicitly
    if cache_op == CacheOp.CACHE_GLOBAL:
        return ".cg"
    # The dynamic operator is realised as a predicated .ca/.cg pair
    # (Listing 5); in this single-instruction form we mark it .dyn.
    return ".dyn"


def _binop_name(opcode: Opcode, t: Type) -> str:
    base = {
        Opcode.ADD: "add",
        Opcode.SUB: "sub",
        Opcode.MUL: "mul.lo",
        Opcode.SDIV: "div",
        Opcode.SREM: "rem",
        Opcode.UDIV: "div",
        Opcode.UREM: "rem",
        Opcode.AND: "and",
        Opcode.OR: "or",
        Opcode.XOR: "xor",
        Opcode.SHL: "shl",
        Opcode.LSHR: "shr",
        Opcode.ASHR: "shr",
        Opcode.SMIN: "min",
        Opcode.SMAX: "max",
        Opcode.FADD: "add",
        Opcode.FSUB: "sub",
        Opcode.FMUL: "mul",
        Opcode.FDIV: "div.rn",
        Opcode.FREM: "rem",
        Opcode.FMIN: "min",
        Opcode.FMAX: "max",
    }[opcode]
    return base


def _label(fn: Function, block) -> str:
    return f"$L_{fn.name}_{block.name.replace('.', '_')}"


def lower_module_to_ptx(
    module: Module, compute_capability: str = "3.5"
) -> str:
    """Lower a device module to PTX text."""
    if module.target != "nvptx":
        raise BackendError(f"module {module.name} is not a device module")
    sm = compute_capability.replace(".", "")
    parts = [
        "//",
        "// Generated by the CUDAAdvisor-repro NVPTX backend",
        "//",
        ".version 5.0",
        f".target sm_{sm}",
        ".address_size 64",
        "",
    ]
    for s in module.strings.values():
        data = ", ".join(str(b) for b in (s.text.encode() + b"\x00"))
        parts.append(
            f".global .align 1 .b8 {s.name.replace('.', '_')}"
            f"[{len(s.text) + 1}] = {{{data}}};"
        )
    for var in module.globals.values():
        space = _SPACE_NAMES[var.addrspace]
        size = var.element_type.size_bytes()
        parts.append(
            f".{space or 'global'} .align {size} "
            f".b8 {var.name.replace('.', '_')}[{size * var.count}];"
        )
    for fn in module.functions.values():
        if fn.kind == "hook":
            params = ", ".join(
                f".param .{_ptx_type(t)} p{i}" for i, t in enumerate(fn.type.params)
            )
            parts.append(f".extern .func {fn.name} ({params});")
    parts.append("")
    for fn in module.functions.values():
        if fn.is_declaration or fn.kind not in ("kernel", "device"):
            continue
        parts.append(_FunctionLowering(fn).lower())
        parts.append("")
    return "\n".join(parts)
