"""IR values: the things instructions consume and produce.

A :class:`Value` has a type and (when named) an SSA-style name. Unlike
full LLVM we do not maintain use lists; passes walk blocks explicitly,
which keeps the data structures simple while still supporting every
rewrite the paper's engine performs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import IRError
from repro.ir.types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    Type,
    I8,
    ptr,
)


class Value:
    """Base class for all IR values."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """The printed reference form, e.g. ``%x`` or ``42``."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref()}>"


class Constant(Value):
    """A typed literal (int, float, bool, or null pointer)."""

    def __init__(self, type_: Type, value: Union[int, float, bool]):
        super().__init__(type_, "")
        if isinstance(type_, IntType):
            if type_.bits == 1:
                value = bool(value)
            else:
                value = int(value)
                # Wrap into the representable range, like LLVM truncation.
                mask = (1 << type_.bits) - 1
                value &= mask
                if value >= 1 << (type_.bits - 1):
                    value -= 1 << type_.bits
        elif isinstance(type_, FloatType):
            value = float(value)
        elif isinstance(type_, PointerType):
            value = int(value)
        else:
            raise IRError(f"cannot build a constant of type {type_}")
        self.value = value

    def ref(self) -> str:
        if isinstance(self.type, IntType) and self.type.bits == 1:
            return "true" if self.value else "false"
        if isinstance(self.type, FloatType):
            return repr(float(self.value))
        if isinstance(self.type, PointerType):
            return "null" if self.value == 0 else str(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level variable; its value is a pointer to its storage.

    ``initializer`` is a list of python numbers (flattened) or ``None``.
    """

    def __init__(
        self,
        name: str,
        element_type: Type,
        count: int = 1,
        addrspace: AddressSpace = AddressSpace.GLOBAL,
        initializer=None,
    ):
        super().__init__(ptr(element_type, addrspace), name)
        self.element_type = element_type
        self.count = count
        self.addrspace = addrspace
        self.initializer = initializer

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalString(Value):
    """A constant string in global memory (basic-block names, file names).

    Mirrors LLVM's ``private unnamed_addr constant [N x i8] c"..."`` that
    the paper's Listing 4 creates for basic-block name arguments.
    """

    def __init__(self, name: str, text: str):
        super().__init__(ptr(I8, AddressSpace.CONSTANT), name)
        self.text = text

    def ref(self) -> str:
        return f"@{self.name}"
