"""The instruction set of the mini-IR.

The opcodes are a pragmatic subset of LLVM's, chosen to cover everything
the ten evaluation kernels and the instrumentation passes need:

* memory: ``alloca``, ``load``, ``store``, ``getelementptr``, ``atomicrmw``
* arithmetic: ``BinOp`` (integer + float families), ``icmp``, ``fcmp``,
  ``select``, ``Cast`` (trunc/zext/sext/sitofp/fptosi/bitcast/...)
* control flow: ``br`` (cond + uncond), ``ret``, ``phi``
* calls: ``call`` (device functions, intrinsics, instrumentation hooks)

Loads and stores carry a *cache operator* like PTX (``.ca`` cached in L1,
``.cg`` bypass L1, plus ``dynamic`` used by the horizontal-bypass
transform, where the access caches only for warps below the launch-time
threshold -- the Listing 5 rewrite of the paper).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.debuginfo import DebugLoc
from repro.ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    BOOL,
    I64,
    VOID,
)
from repro.ir.values import Constant, Value


class Opcode(str, enum.Enum):
    """Binary-operator opcodes."""

    # integer
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    SREM = "srem"
    UDIV = "udiv"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    SMIN = "smin"
    SMAX = "smax"
    # float
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FREM = "frem"
    FMIN = "fmin"
    FMAX = "fmax"

    @property
    def is_float_op(self) -> bool:
        return self.value.startswith("f")

    @property
    def is_division(self) -> bool:
        return self in (Opcode.SDIV, Opcode.SREM, Opcode.UDIV, Opcode.UREM)


INT_OPCODES = frozenset(op for op in Opcode if not op.is_float_op)
FLOAT_OPCODES = frozenset(op for op in Opcode if op.is_float_op)


class CmpPred(str, enum.Enum):
    """Comparison predicates shared by icmp (signed) and fcmp (ordered)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class CastKind(str, enum.Enum):
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    FPTRUNC = "fptrunc"
    FPEXT = "fpext"
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    BITCAST = "bitcast"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"


class CacheOp(str, enum.Enum):
    """PTX-style cache operator on loads/stores."""

    CACHE_ALL = "ca"      # default: cache in L1 and L2
    CACHE_GLOBAL = "cg"   # bypass L1, cache in L2
    DYNAMIC = "dyn"       # horizontal bypass: .ca iff warp-in-CTA < threshold


class AtomicOp(str, enum.Enum):
    ADD = "add"
    SUB = "sub"
    MIN = "min"
    MAX = "max"
    EXCH = "exch"
    CAS = "cas"
    AND = "and"
    OR = "or"
    XOR = "xor"


class Instruction(Value):
    """Base class: a Value (its result) plus operands and a debug loc.

    Instructions producing no value have type ``void`` and empty name.
    """

    def __init__(self, type_: Type, name: str, operands: Sequence[Value]):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.debug_loc: Optional[DebugLoc] = None
        self.parent = None  # BasicBlock, set on insertion

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    def successors(self) -> Tuple:
        """Successor basic blocks (terminators only)."""
        return ()

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in the operand list."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def with_loc(self, loc: Optional[DebugLoc]) -> "Instruction":
        self.debug_loc = loc
        return self


class Alloca(Instruction):
    """Stack (thread-local) allocation of ``count`` elements."""

    def __init__(self, element_type: Type, count: int, name: str):
        from repro.ir.types import AddressSpace, ptr

        super().__init__(ptr(element_type, AddressSpace.LOCAL), name, [])
        self.element_type = element_type
        self.count = count


class Load(Instruction):
    def __init__(self, pointer: Value, name: str, cache_op: CacheOp = CacheOp.CACHE_ALL):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__(pointer.type.pointee, name, [pointer])
        self.cache_op = cache_op

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    def __init__(self, value: Value, pointer: Value, cache_op: CacheOp = CacheOp.CACHE_ALL):
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store requires a pointer operand, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise IRError(
                f"store type mismatch: storing {value.type} through {pointer.type}"
            )
        super().__init__(VOID, "", [value, pointer])
        self.cache_op = cache_op

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``base + index * sizeof(pointee)`` (array GEP)."""

    def __init__(self, base: Value, index: Value, name: str):
        if not isinstance(base.type, PointerType):
            raise IRError(f"gep requires a pointer base, got {base.type}")
        if not isinstance(index.type, IntType):
            raise IRError(f"gep index must be an integer, got {index.type}")
        super().__init__(base.type, name, [base, index])

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class BinOp(Instruction):
    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str):
        if lhs.type != rhs.type:
            raise IRError(f"{opcode.value}: operand types differ ({lhs.type} vs {rhs.type})")
        if opcode.is_float_op and not lhs.type.is_float:
            raise IRError(f"{opcode.value} requires float operands, got {lhs.type}")
        if not opcode.is_float_op and not lhs.type.is_int:
            raise IRError(f"{opcode.value} requires integer operands, got {lhs.type}")
        super().__init__(lhs.type, name, [lhs, rhs])
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str):
        if lhs.type != rhs.type:
            raise IRError(f"icmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not (lhs.type.is_int or lhs.type.is_pointer):
            raise IRError(f"icmp requires integer/pointer operands, got {lhs.type}")
        super().__init__(BOOL, name, [lhs, rhs])
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str):
        if lhs.type != rhs.type:
            raise IRError(f"fcmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not lhs.type.is_float:
            raise IRError(f"fcmp requires float operands, got {lhs.type}")
        super().__init__(BOOL, name, [lhs, rhs])
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    def __init__(self, kind: CastKind, value: Value, to_type: Type, name: str):
        super().__init__(to_type, name, [value])
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    def __init__(self, cond: Value, iftrue: Value, iffalse: Value, name: str):
        if cond.type != BOOL:
            raise IRError(f"select condition must be i1, got {cond.type}")
        if iftrue.type != iffalse.type:
            raise IRError("select arms must have the same type")
        super().__init__(iftrue.type, name, [cond, iftrue, iffalse])

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def iftrue(self) -> Value:
        return self.operands[1]

    @property
    def iffalse(self) -> Value:
        return self.operands[2]


class AtomicRMW(Instruction):
    """Atomic read-modify-write; returns the old value."""

    def __init__(self, op: AtomicOp, pointer: Value, value: Value, name: str):
        if not isinstance(pointer.type, PointerType):
            raise IRError("atomicrmw requires a pointer operand")
        if pointer.type.pointee != value.type:
            raise IRError("atomicrmw value type must match pointee")
        super().__init__(value.type, name, [pointer, value])
        self.op = op

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]


class Call(Instruction):
    """A direct call. ``callee`` is a Function (possibly a declaration)."""

    def __init__(self, callee, args: Sequence[Value], name: str):
        ret = callee.return_type
        super().__init__(ret, name if not ret.is_void else "", list(args))
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands


class Br(Instruction):
    """Unconditional branch."""

    def __init__(self, target):
        super().__init__(VOID, "", [])
        self.target = target

    def successors(self):
        return (self.target,)


class CondBr(Instruction):
    """Conditional branch."""

    def __init__(self, cond: Value, iftrue, iffalse):
        if cond.type != BOOL:
            raise IRError(f"conditional branch requires an i1, got {cond.type}")
        super().__init__(VOID, "", [cond])
        self.iftrue = iftrue
        self.iffalse = iffalse

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self):
        return (self.iftrue, self.iffalse)


class Ret(Instruction):
    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, "", [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Phi(Instruction):
    """SSA phi node: ``incoming`` is a list of (value, predecessor-block)."""

    def __init__(self, type_: Type, name: str):
        super().__init__(type_, name, [])
        self.incoming: List[Tuple[Value, object]] = []

    def add_incoming(self, value: Value, block) -> None:
        if value.type != self.type:
            raise IRError(
                f"phi incoming type {value.type} does not match {self.type}"
            )
        self.incoming.append((value, block))
        self.operands.append(value)
