"""Textual IR emission, in an LLVM-flavoured syntax.

Designed to round-trip through :mod:`repro.ir.parser`. A printed module
looks like:

    ; module device of example
    target = "nvptx"

    @str.0 = constant c"entry"

    define kernel void @axpy(float* %x, float* %y, float %a) {
    entry:
      %tid = call i32 @nvvm.tid.x() !dbg "axpy.py":3:10
      ...
      ret void
    }
"""

from __future__ import annotations

from typing import List

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value


def _loc_suffix(inst: Instruction) -> str:
    loc = inst.debug_loc
    if loc is None or not loc.is_known:
        return ""
    return f' !dbg "{loc.filename}":{loc.line}:{loc.col}'


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def print_instruction(inst: Instruction) -> str:
    """Print a single instruction (without indentation or dbg suffix)."""
    if isinstance(inst, Alloca):
        return f"{inst.ref()} = alloca {inst.element_type}, count {inst.count}"
    if isinstance(inst, Load):
        op = "" if inst.cache_op == CacheOp.CACHE_ALL else f".{inst.cache_op.value}"
        return f"{inst.ref()} = load{op} {inst.type}, {inst.pointer.type} {inst.pointer.ref()}"
    if isinstance(inst, Store):
        op = "" if inst.cache_op == CacheOp.CACHE_ALL else f".{inst.cache_op.value}"
        return (
            f"store{op} {inst.value.type} {inst.value.ref()}, "
            f"{inst.pointer.type} {inst.pointer.ref()}"
        )
    if isinstance(inst, GetElementPtr):
        return (
            f"{inst.ref()} = getelementptr {inst.base.type} {inst.base.ref()}, "
            f"{inst.index.type} {inst.index.ref()}"
        )
    if isinstance(inst, BinOp):
        return (
            f"{inst.ref()} = {inst.opcode.value} {inst.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, ICmp):
        return (
            f"{inst.ref()} = icmp {inst.pred.value} {inst.lhs.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, FCmp):
        return (
            f"{inst.ref()} = fcmp {inst.pred.value} {inst.lhs.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, Cast):
        return (
            f"{inst.ref()} = {inst.kind.value} {inst.value.type} "
            f"{inst.value.ref()} to {inst.type}"
        )
    if isinstance(inst, Select):
        return (
            f"{inst.ref()} = select i1 {inst.cond.ref()}, {inst.iftrue.type} "
            f"{inst.iftrue.ref()}, {inst.iffalse.type} {inst.iffalse.ref()}"
        )
    if isinstance(inst, AtomicRMW):
        return (
            f"{inst.ref()} = atomicrmw {inst.op.value} {inst.pointer.type} "
            f"{inst.pointer.ref()}, {inst.value.type} {inst.value.ref()}"
        )
    if isinstance(inst, Call):
        args = ", ".join(f"{a.type} {a.ref()}" for a in inst.args)
        if inst.type.is_void:
            return f"call void {inst.callee.ref()}({args})"
        return f"{inst.ref()} = call {inst.type} {inst.callee.ref()}({args})"
    if isinstance(inst, Br):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBr):
        return (
            f"br i1 {inst.cond.ref()}, label %{inst.iftrue.name}, "
            f"label %{inst.iffalse.name}"
        )
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {inst.value.type} {inst.value.ref()}"
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[ {v.ref()}, %{b.name} ]" for v, b in inst.incoming
        )
        return f"{inst.ref()} = phi {inst.type} {pairs}"
    raise IRError(f"cannot print instruction {inst!r}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}{_loc_suffix(inst)}")
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"{fn.kind} {fn.return_type} @{fn.name}({params})"
    if fn.is_declaration:
        return f"declare {header}"
    body = "\n\n".join(print_block(b) for b in fn.blocks)
    return f"define {header} {{\n{body}\n}}"


def print_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}", f'target = "{module.target}"']
    for s in module.strings.values():
        parts.append(f'@{s.name} = constant c"{_escape(s.text)}"')
    for g in module.globals.values():
        init = ""
        if g.initializer is not None:
            init = " init [" + ", ".join(repr(v) for v in g.initializer) + "]"
        parts.append(
            f"@{g.name} = global {g.element_type}, count {g.count}, "
            f"addrspace {int(g.addrspace)}{init}"
        )
    for fn in module.functions.values():
        parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"
