"""Containers: Module -> Function -> BasicBlock -> Instruction.

A :class:`Module` is the unit the instrumentation engine operates on, the
analogue of one LLVM bitcode file. CUDA programs produce *two* modules
(host and device); the device module is lowered to PTX and embedded into
the host module as a fat binary (see :mod:`repro.backend.fatbin`),
mirroring Figure 2 of the paper.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, Type, VOID
from repro.ir.values import Argument, GlobalString, GlobalVariable, Value


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structural edits ---------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"block {self.name} already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``anchor`` (which must be here)."""
        idx = self._index_of(anchor)
        inst.parent = self
        self.instructions.insert(idx, inst)
        return inst

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        idx = self._index_of(anchor)
        inst.parent = self
        self.instructions.insert(idx + 1, inst)
        return inst

    def insert_at_start(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(0, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def _index_of(self, inst: Instruction) -> int:
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                return i
        raise IRError(f"instruction not in block {self.name}")

    # -- queries --------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> Tuple["BasicBlock", ...]:
        term = self.terminator
        return term.successors() if term is not None else ()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function: declaration (no blocks) or definition (>= 1 block).

    ``kind`` distinguishes how the toolchain treats it:

    * ``"kernel"``  -- a ``__global__`` GPU entry point
    * ``"device"``  -- a ``__device__`` function callable from kernels
    * ``"host"``    -- CPU-side code
    * ``"intrinsic"`` -- built-in (``nvvm.read.ptx.sreg.tid.x``, barriers)
    * ``"hook"``    -- a CUDAAdvisor analysis function (``Record`` etc.)
    """

    KINDS = ("kernel", "device", "host", "intrinsic", "hook")

    def __init__(
        self,
        name: str,
        return_type: Type,
        params: Sequence[Tuple[Type, str]],
        kind: str = "device",
    ):
        if kind not in self.KINDS:
            raise IRError(f"unknown function kind {kind!r}")
        ftype = FunctionType(return_type, tuple(t for t, _ in params))
        super().__init__(ftype, name)
        self.return_type = return_type
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(params)
        ]
        self.kind = kind
        self.blocks: List[BasicBlock] = []
        self.parent: Optional[Module] = None
        self._name_counter = itertools.count()
        self._taken_names: set = {a.name for a in self.args}

    # -- construction ---------------------------------------------------------
    def add_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(self._unique_name(name or "bb"), self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, anchor: BasicBlock, name: str = "") -> BasicBlock:
        block = BasicBlock(self._unique_name(name or "bb"), self)
        idx = self.blocks.index(anchor)
        self.blocks.insert(idx + 1, block)
        return block

    def _unique_name(self, base: str) -> str:
        if base not in self._taken_names:
            self._taken_names.add(base)
            return base
        while True:
            cand = f"{base}.{next(self._name_counter)}"
            if cand not in self._taken_names:
                self._taken_names.add(cand)
                return cand

    def unique_value_name(self, base: str) -> str:
        return self._unique_name(base or "v")

    # -- queries --------------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no body")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"no block named {name} in {self.name}")

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Function {self.name} kind={self.kind}>"


class Module:
    """A translation unit: functions plus global variables/strings."""

    def __init__(self, name: str, target: str = "generic"):
        self.name = name
        self.target = target  # "nvptx" for device modules, "host" for CPU
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.strings: Dict[str, GlobalString] = {}
        self._string_counter = itertools.count()

    # -- functions -------------------------------------------------------------
    def add_function(
        self,
        name: str,
        return_type: Type,
        params: Sequence[Tuple[Type, str]],
        kind: str = "device",
    ) -> Function:
        if name in self.functions:
            raise IRError(f"function {name} already exists in module {self.name}")
        fn = Function(name, return_type, params, kind)
        fn.parent = self
        self.functions[name] = fn
        return fn

    def declare_function(
        self,
        name: str,
        return_type: Type,
        params: Sequence[Tuple[Type, str]],
        kind: str = "device",
    ) -> Function:
        """Add a declaration; idempotent if an identical one exists."""
        if name in self.functions:
            fn = self.functions[name]
            want = FunctionType(return_type, tuple(t for t, _ in params))
            if fn.type != want:
                raise IRError(f"conflicting declaration for {name}")
            return fn
        return self.add_function(name, return_type, params, kind)

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name} in module {self.name}") from None

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.kind == "kernel"]

    # -- globals ----------------------------------------------------------------
    def add_global(self, var: GlobalVariable) -> GlobalVariable:
        if var.name in self.globals:
            raise IRError(f"global {var.name} already exists")
        self.globals[var.name] = var
        return var

    def add_string(self, text: str) -> GlobalString:
        """Intern a constant string (one copy per distinct text)."""
        for s in self.strings.values():
            if s.text == text:
                return s
        name = f"str.{next(self._string_counter)}"
        s = GlobalString(name, text)
        self.strings[name] = s
        return s

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Module {self.name} target={self.target} fns={len(self.functions)}>"


def link_modules(dest: Module, src: Module) -> Module:
    """Merge ``src`` into ``dest`` (the stand-in for ``llvm-link``).

    The paper compiles the analysis functions (``Record`` etc.) in a
    separate CUDA file and merges its bitcode into the kernel bitcode with
    ``llvm-link``; hook libraries here take the same route.
    """
    for name, fn in src.functions.items():
        if name in dest.functions:
            have = dest.functions[name]
            if have.is_declaration and not fn.is_declaration:
                # Definition replaces declaration.
                fn.parent = dest
                dest.functions[name] = fn
            elif not have.is_declaration and not fn.is_declaration:
                raise IRError(f"duplicate definition of {name} while linking")
        else:
            fn.parent = dest
            dest.functions[name] = fn
    for name, var in src.globals.items():
        if name not in dest.globals:
            dest.globals[name] = var
    for name, s in src.strings.items():
        if name not in dest.strings:
            dest.strings[name] = s
    return dest
