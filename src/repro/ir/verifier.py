"""Structural well-formedness checks for IR modules.

Run after the frontend and after every instrumentation pass (the engine
verifies its output before handing it to the backend, the way one runs
``opt -verify``). Checks:

* every block ends in exactly one terminator, and only at the end
* branch targets belong to the same function
* every used value dominates its use (approximated: defined in the same
  block earlier, in a dominating block, or is an argument/constant/global)
* phis agree with the predecessor set
* call signatures match; kernels return void; allocas are positive
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import VerifierError
from repro.ir.cfg import immediate_dominators, predecessor_map, reachable_blocks
from repro.ir.instructions import (
    Alloca,
    Br,
    Call,
    CondBr,
    Instruction,
    Phi,
    Ret,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, GlobalString, GlobalVariable


def verify_module(module: Module) -> None:
    """Raise :class:`VerifierError` on the first violation found."""
    for fn in module.functions.values():
        if not fn.is_declaration:
            _verify_function(module, fn)


def _verify_function(module: Module, fn: Function) -> None:
    where = f"function @{fn.name}"
    if fn.kind == "kernel" and not fn.return_type.is_void:
        raise VerifierError(f"{where}: kernels must return void")
    if not fn.blocks:
        raise VerifierError(f"{where}: definition with no blocks")

    block_set = set(id(b) for b in fn.blocks)
    for block in fn.blocks:
        _verify_block(module, fn, block, block_set)

    _verify_dominance(fn)


def _verify_block(
    module: Module, fn: Function, block: BasicBlock, block_set: Set[int]
) -> None:
    where = f"@{fn.name}:{block.name}"
    if not block.instructions:
        raise VerifierError(f"{where}: empty block")
    term = block.instructions[-1]
    if not term.is_terminator:
        raise VerifierError(f"{where}: block does not end in a terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            raise VerifierError(f"{where}: terminator in the middle of a block")

    for succ in block.successors():
        if id(succ) not in block_set:
            raise VerifierError(
                f"{where}: branch to block {succ.name} of another function"
            )

    for inst in block.instructions:
        if isinstance(inst, Call):
            callee = inst.callee
            if callee.name not in module.functions:
                raise VerifierError(
                    f"{where}: call to @{callee.name} not in module"
                )
            if len(callee.type.params) != len(inst.args):
                raise VerifierError(
                    f"{where}: call to @{callee.name} arity mismatch"
                )
            for i, (want, got) in enumerate(zip(callee.type.params, inst.args)):
                if want != got.type:
                    raise VerifierError(
                        f"{where}: call to @{callee.name} arg {i}: "
                        f"{got.type} != {want}"
                    )
        if isinstance(inst, Alloca) and inst.count <= 0:
            raise VerifierError(f"{where}: alloca with non-positive count")
        if isinstance(inst, Ret):
            if inst.value is None:
                if not fn.return_type.is_void:
                    raise VerifierError(f"{where}: ret void in non-void function")
            elif inst.value.type != fn.return_type:
                raise VerifierError(
                    f"{where}: ret type {inst.value.type} != {fn.return_type}"
                )

    # Phis must be at the top of the block and match predecessors.
    preds = None
    seen_non_phi = False
    for inst in block.instructions:
        if isinstance(inst, Phi):
            if seen_non_phi:
                raise VerifierError(f"{where}: phi after non-phi instruction")
            if preds is None:
                preds = predecessor_map(fn)
            incoming_blocks = {id(b) for _, b in inst.incoming}
            pred_blocks = {id(b) for b in preds[block]}
            if incoming_blocks != pred_blocks:
                raise VerifierError(
                    f"{where}: phi incoming blocks do not match predecessors"
                )
        else:
            seen_non_phi = True


def _verify_dominance(fn: Function) -> None:
    """Every instruction operand must be defined before (dominating) use."""
    reachable = reachable_blocks(fn)
    idom = immediate_dominators(fn)
    args = set(id(a) for a in fn.args)

    # Map each defining instruction to (block, index)
    position: Dict[int, tuple] = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            if not inst.type.is_void:
                position[id(inst)] = (block, i)

    def dominates_block(a: BasicBlock, b: BasicBlock) -> bool:
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = idom.get(node)
        return False

    for block in fn.blocks:
        if block not in reachable:
            continue
        for i, inst in enumerate(block.instructions):
            operand_groups = (
                [(v, pb) for v, pb in inst.incoming]
                if isinstance(inst, Phi)
                else [(op, None) for op in inst.operands]
            )
            for op, phi_block in operand_groups:
                if isinstance(op, (Constant, GlobalVariable, GlobalString)):
                    continue
                if isinstance(op, Function):
                    continue
                if id(op) in args:
                    continue
                pos = position.get(id(op))
                if pos is None:
                    raise VerifierError(
                        f"@{fn.name}:{block.name}: use of value %{op.name} "
                        f"that is never defined"
                    )
                def_block, def_idx = pos
                # A phi's use point is the end of the incoming block.
                use_block = phi_block if phi_block is not None else block
                if use_block not in reachable or def_block not in reachable:
                    continue
                if def_block is use_block and phi_block is None:
                    if def_idx >= i:
                        raise VerifierError(
                            f"@{fn.name}:{block.name}: %{op.name} used before "
                            f"definition"
                        )
                elif not dominates_block(def_block, use_block):
                    raise VerifierError(
                        f"@{fn.name}:{block.name}: definition of %{op.name} in "
                        f"{def_block.name} does not dominate use"
                    )
