"""A miniature LLVM-like intermediate representation.

This package is the reproduction's stand-in for LLVM bitcode: the
CUDAAdvisor instrumentation engine (``repro.passes``) rewrites programs
expressed in this IR exactly the way the paper's LLVM pass rewrites
bitcode (Listings 1-4 of the paper).

Structure mirrors LLVM:

* :mod:`repro.ir.types`       -- the type system (int/float/pointer/void)
* :mod:`repro.ir.values`      -- values: constants, arguments, globals
* :mod:`repro.ir.instructions`-- the instruction set
* :mod:`repro.ir.module`      -- Module / Function / BasicBlock containers
* :mod:`repro.ir.builder`     -- an ``IRBuilder`` insertion helper
* :mod:`repro.ir.debuginfo`   -- source locations (``!dbg`` metadata)
* :mod:`repro.ir.printer`     -- textual IR emission
* :mod:`repro.ir.parser`      -- textual IR parsing (round-trips printer)
* :mod:`repro.ir.verifier`    -- structural well-formedness checks
* :mod:`repro.ir.cfg`         -- CFG utilities (dominators, ipostdom)
"""

from repro.ir.types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    Type,
    VoidType,
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ptr,
)
from repro.ir.values import Argument, Constant, GlobalString, GlobalVariable, Value
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

__all__ = [
    "AddressSpace",
    "Alloca",
    "Argument",
    "AtomicRMW",
    "BOOL",
    "BasicBlock",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "CondBr",
    "Constant",
    "DebugLoc",
    "F32",
    "F64",
    "FCmp",
    "FloatType",
    "Function",
    "GetElementPtr",
    "GlobalString",
    "GlobalVariable",
    "I8",
    "I16",
    "I32",
    "I64",
    "ICmp",
    "IRBuilder",
    "Instruction",
    "IntType",
    "Load",
    "Module",
    "Phi",
    "PointerType",
    "Ret",
    "Select",
    "Store",
    "Type",
    "VOID",
    "Value",
    "VoidType",
    "parse_module",
    "print_module",
    "ptr",
    "verify_module",
]
