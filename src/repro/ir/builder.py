"""IRBuilder: positioned instruction construction, like llvm::IRBuilder.

The instrumentation passes in the paper (Listings 1 and 3) create their
hook calls through an ``IRBuilder<>`` positioned at the instruction being
instrumented; :class:`IRBuilder` offers the same workflow:

    builder = IRBuilder.before(load_inst)
    raw = builder.bitcast(load_inst.pointer, ptr(I8))
    builder.call(record_hook, [raw, builder.i32(bits), ...])
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    BOOL,
    F32,
    F64,
    I32,
    I64,
)
from repro.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions at a given position inside a function."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._anchor: Optional[Instruction] = None  # insert before this
        self.current_loc: Optional[DebugLoc] = None

    # -- positioning --------------------------------------------------------
    @classmethod
    def at_end(cls, block: BasicBlock) -> "IRBuilder":
        b = cls(block)
        return b

    @classmethod
    def before(cls, inst: Instruction) -> "IRBuilder":
        if inst.parent is None:
            raise IRError("instruction is not inside a block")
        b = cls(inst.parent)
        b._anchor = inst
        b.current_loc = inst.debug_loc
        return b

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._anchor = None

    def position_before(self, inst: Instruction) -> None:
        self._block = inst.parent
        self._anchor = inst

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no insertion block")
        return self._block

    @property
    def function(self) -> Function:
        return self.block.parent

    def set_loc(self, loc: Optional[DebugLoc]) -> None:
        self.current_loc = loc

    # -- insertion core ------------------------------------------------------
    def _insert(self, inst: Instruction) -> Instruction:
        if inst.debug_loc is None:
            inst.debug_loc = self.current_loc
        if self._anchor is not None:
            self.block.insert_before(self._anchor, inst)
        else:
            self.block.append(inst)
        return inst

    def _name(self, base: str) -> str:
        return self.function.unique_value_name(base)

    # -- constants -------------------------------------------------------------
    def i32(self, v: int) -> Constant:
        return Constant(I32, v)

    def i64(self, v: int) -> Constant:
        return Constant(I64, v)

    def f32(self, v: float) -> Constant:
        return Constant(F32, v)

    def f64(self, v: float) -> Constant:
        return Constant(F64, v)

    def true(self) -> Constant:
        return Constant(BOOL, True)

    def false(self) -> Constant:
        return Constant(BOOL, False)

    # -- memory ------------------------------------------------------------------
    def alloca(self, element_type: Type, count: int = 1, name: str = "stack") -> Alloca:
        return self._insert(Alloca(element_type, count, self._name(name)))

    def load(
        self, pointer: Value, name: str = "ld", cache_op: CacheOp = CacheOp.CACHE_ALL
    ) -> Load:
        return self._insert(Load(pointer, self._name(name), cache_op))

    def store(
        self, value: Value, pointer: Value, cache_op: CacheOp = CacheOp.CACHE_ALL
    ) -> Store:
        return self._insert(Store(value, pointer, cache_op))

    def gep(self, base: Value, index: Value, name: str = "gep") -> GetElementPtr:
        return self._insert(GetElementPtr(base, index, self._name(name)))

    def atomic_rmw(
        self, op: AtomicOp, pointer: Value, value: Value, name: str = "old"
    ) -> AtomicRMW:
        return self._insert(AtomicRMW(op, pointer, value, self._name(name)))

    # -- arithmetic -----------------------------------------------------------------
    def binop(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self._insert(BinOp(opcode, lhs, rhs, self._name(name or opcode.value)))

    def add(self, a: Value, b: Value, name: str = "add") -> BinOp:
        return self.binop(Opcode.ADD, a, b, name)

    def sub(self, a: Value, b: Value, name: str = "sub") -> BinOp:
        return self.binop(Opcode.SUB, a, b, name)

    def mul(self, a: Value, b: Value, name: str = "mul") -> BinOp:
        return self.binop(Opcode.MUL, a, b, name)

    def sdiv(self, a: Value, b: Value, name: str = "div") -> BinOp:
        return self.binop(Opcode.SDIV, a, b, name)

    def srem(self, a: Value, b: Value, name: str = "rem") -> BinOp:
        return self.binop(Opcode.SREM, a, b, name)

    def fadd(self, a: Value, b: Value, name: str = "fadd") -> BinOp:
        return self.binop(Opcode.FADD, a, b, name)

    def fsub(self, a: Value, b: Value, name: str = "fsub") -> BinOp:
        return self.binop(Opcode.FSUB, a, b, name)

    def fmul(self, a: Value, b: Value, name: str = "fmul") -> BinOp:
        return self.binop(Opcode.FMUL, a, b, name)

    def fdiv(self, a: Value, b: Value, name: str = "fdiv") -> BinOp:
        return self.binop(Opcode.FDIV, a, b, name)

    def icmp(self, pred: CmpPred, a: Value, b: Value, name: str = "cmp") -> ICmp:
        return self._insert(ICmp(pred, a, b, self._name(name)))

    def fcmp(self, pred: CmpPred, a: Value, b: Value, name: str = "fcmp") -> FCmp:
        return self._insert(FCmp(pred, a, b, self._name(name)))

    def select(self, cond: Value, a: Value, b: Value, name: str = "sel") -> Select:
        return self._insert(Select(cond, a, b, self._name(name)))

    def cast(self, kind: CastKind, value: Value, to_type: Type, name: str = "cast") -> Cast:
        return self._insert(Cast(kind, value, to_type, self._name(name)))

    def bitcast(self, value: Value, to_type: Type, name: str = "bc") -> Cast:
        return self.cast(CastKind.BITCAST, value, to_type, name)

    def sitofp(self, value: Value, to_type: Type, name: str = "conv") -> Cast:
        return self.cast(CastKind.SITOFP, value, to_type, name)

    def fptosi(self, value: Value, to_type: Type, name: str = "conv") -> Cast:
        return self.cast(CastKind.FPTOSI, value, to_type, name)

    def zext(self, value: Value, to_type: Type, name: str = "ext") -> Cast:
        return self.cast(CastKind.ZEXT, value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "ext") -> Cast:
        return self.cast(CastKind.SEXT, value, to_type, name)

    def trunc(self, value: Value, to_type: Type, name: str = "trunc") -> Cast:
        return self.cast(CastKind.TRUNC, value, to_type, name)

    # -- control flow ---------------------------------------------------------------
    def br(self, target: BasicBlock) -> Br:
        return self._insert(Br(target))

    def cond_br(self, cond: Value, iftrue: BasicBlock, iffalse: BasicBlock) -> CondBr:
        return self._insert(CondBr(cond, iftrue, iffalse))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))

    def phi(self, type_: Type, name: str = "phi") -> Phi:
        return self._insert(Phi(type_, self._name(name)))

    # -- calls ---------------------------------------------------------------------
    def call(self, callee: Function, args: Sequence[Value], name: str = "call") -> Call:
        expected = callee.type.params
        if len(expected) != len(args):
            raise IRError(
                f"call to {callee.name}: expected {len(expected)} args, got {len(args)}"
            )
        for i, (want, got) in enumerate(zip(expected, args)):
            if want != got.type:
                raise IRError(
                    f"call to {callee.name}: arg {i} has type {got.type}, expected {want}"
                )
        return self._insert(Call(callee, args, self._name(name)))
