"""Source-location debug metadata (the stand-in for LLVM ``!dbg``).

Every instruction can carry a :class:`DebugLoc`; the instrumentation
engine forwards it into the profiling hooks so the analyzer can attribute
events to source file / line / column exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class DebugLoc:
    """A (file, line, column) source location."""

    filename: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"

    @staticmethod
    def unknown() -> "DebugLoc":
        return DebugLoc("<unknown>", 0, 0)

    @property
    def is_known(self) -> bool:
        return self.line > 0
