"""The IR type system.

Types are interned value objects: two structurally identical types
compare equal and hash equal, so they can key dictionaries (the
interpreter keys numpy dtypes off them).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import IRError


class AddressSpace(enum.IntEnum):
    """NVPTX-style address spaces for pointers."""

    GENERIC = 0
    GLOBAL = 1
    SHARED = 3
    CONSTANT = 4
    LOCAL = 5


class Type:
    """Base class for IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    # -- classification helpers -------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1

    def size_bytes(self) -> int:
        """Storage size in bytes; raises for void."""
        raise IRError(f"type {self} has no storage size")

    def size_bits(self) -> int:
        return self.size_bytes() * 8

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype the SIMT interpreter uses for lanes of this type."""
        raise IRError(f"type {self} has no numpy dtype")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class VoidType(Type):
    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """An integer type of a given bit width. ``i1`` doubles as bool."""

    _DTYPES = {1: np.bool_, 8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}

    def __init__(self, bits: int):
        if bits not in self._DTYPES:
            raise IRError(f"unsupported integer width i{bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def size_bytes(self) -> int:
        return 1 if self.bits == 1 else self.bits // 8

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self._DTYPES[self.bits])

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE float type (f32 or f64)."""

    _DTYPES = {32: np.float32, 64: np.float64}

    def __init__(self, bits: int):
        if bits not in self._DTYPES:
            raise IRError(f"unsupported float width f{bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def size_bytes(self) -> int:
        return self.bits // 8

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self._DTYPES[self.bits])

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A typed pointer into a given address space.

    Pointers are 64-bit integers at runtime (byte addresses into the
    simulated address space), like device pointers on a real GPU.
    """

    def __init__(self, pointee: Type, addrspace: AddressSpace = AddressSpace.GLOBAL):
        if pointee.is_void:
            # i8* is our void*; keep LLVM's convention.
            raise IRError("pointer to void is not allowed; use i8*")
        self.pointee = pointee
        self.addrspace = AddressSpace(addrspace)

    def _key(self):
        return (self.pointee, self.addrspace)

    def size_bytes(self) -> int:
        return 8

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    def __str__(self) -> str:
        if self.addrspace == AddressSpace.GLOBAL:
            return f"{self.pointee}*"
        return f"{self.pointee} addrspace({int(self.addrspace)})*"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, ret: Type, params: tuple):
        self.ret = ret
        self.params = tuple(params)

    def _key(self):
        return (self.ret, self.params)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"


# Canonical singletons -----------------------------------------------------
VOID = VoidType()
BOOL = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Type, addrspace: AddressSpace = AddressSpace.GLOBAL) -> PointerType:
    """Shorthand constructor for pointer types."""
    return PointerType(pointee, addrspace)


def parse_type(text: str) -> Type:
    """Parse a type from its printed form (used by the IR parser)."""
    text = text.strip()
    if text.endswith("*"):
        inner = text[:-1].strip()
        space = AddressSpace.GLOBAL
        if inner.endswith(")"):
            idx = inner.rfind("addrspace(")
            if idx >= 0:
                space = AddressSpace(int(inner[idx + len("addrspace("):-1]))
                inner = inner[:idx].strip()
        return PointerType(parse_type(inner), space)
    if text == "void":
        return VOID
    if text == "float":
        return F32
    if text == "double":
        return F64
    if text.startswith("i") and text[1:].isdigit():
        return IntType(int(text[1:]))
    raise IRError(f"cannot parse type {text!r}")
